//! Quickstart: dynamic feedback over real threads.
//!
//! A workload exposes three functionally equivalent versions of the same
//! computation — here, three synchronization strategies for accumulating
//! into a shared histogram. The adaptive executor alternates sampling and
//! production phases (the paper's technique) and converges on the version
//! with the least measured lock overhead on *this* machine.
//!
//! Run with `cargo run --release --example quickstart`.

use dynfb::core::controller::ControllerConfig;
use dynfb::core::realtime::{
    AdaptiveExecutor, AdaptiveWorkload, ExecutorConfig, Instruments, ProfiledMutex,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Three ways to maintain a shared histogram:
/// 0. one global mutex, acquired per item (fine-grained, many acquires);
/// 1. one global mutex, acquired once per batch of 32 items;
/// 2. striped mutexes, one per bucket.
struct Histogram {
    global: ProfiledMutex<Vec<u64>>,
    striped: Vec<ProfiledMutex<u64>>,
    items_done: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            global: ProfiledMutex::new(vec![0; BUCKETS]),
            striped: (0..BUCKETS).map(|_| ProfiledMutex::new(0)).collect(),
            items_done: AtomicU64::new(0),
        }
    }

    fn bucket(item: usize) -> usize {
        item.wrapping_mul(2654435761) % BUCKETS
    }
}

impl AdaptiveWorkload for Histogram {
    fn num_versions(&self) -> usize {
        3
    }

    fn run_item(&self, version: usize, item: usize, ins: &Instruments) {
        let base = item * 32;
        match version {
            0 => {
                for k in 0..32 {
                    let b = Self::bucket(base + k);
                    self.global.lock(ins)[b] += 1;
                }
            }
            1 => {
                let mut guard = self.global.lock(ins);
                for k in 0..32 {
                    guard[Self::bucket(base + k)] += 1;
                }
            }
            _ => {
                for k in 0..32 {
                    let b = Self::bucket(base + k);
                    *self.striped[b].lock(ins) += 1;
                }
            }
        }
        self.items_done.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let executor = AdaptiveExecutor::new(ExecutorConfig {
        workers: 4,
        controller: ControllerConfig {
            num_policies: 3,
            target_sampling: Duration::from_millis(2),
            target_production: Duration::from_millis(40),
            ..ControllerConfig::default()
        },
        ..ExecutorConfig::default()
    });

    let workload = Histogram::new();
    let report = executor.run(&workload, 400_000).expect("no version panics");

    println!("processed {} items in {:?}", report.items_processed, report.elapsed);
    println!("phase trace:");
    for r in &report.trace {
        println!(
            "  t={:>8.3?}  {:<10} version {}  overhead {:.3}  (interval {:?})",
            r.at,
            if r.phase.is_sampling() { "sampling" } else { "production" },
            r.policy,
            r.overhead,
            r.actual,
        );
    }
    match report.last_production_policy() {
        Some(p) => println!("\nconverged on version {p}"),
        None => println!("\nrun too short to reach a production phase"),
    }
}
