//! Adapting to a changing execution environment.
//!
//! The paper's motivation for *periodic resampling*: the best policy can
//! change during execution. This example builds a hand-written simulated
//! workload whose sharing pattern drifts — early iterations update
//! processor-private objects (coarse locking wins), later iterations all
//! update one shared object (fine-grained locking wins) — and shows
//! dynamic feedback switching policies at the drift point, while either
//! static policy loses on one half.
//!
//! Run with `cargo run --release --example drifting_env`.

use dynfb::core::controller::ControllerConfig;
use dynfb::sim::{run_app, LockId, Machine, MachineConfig, OpSink, PlanEntry, RunConfig, SimApp};
use std::time::Duration;

const ITEMS: usize = 6_000;
const SLOTS: usize = 64;

/// Versions: 0 = "batched" (hold a lock across 16 updates),
/// 1 = "fine" (lock per update).
struct Drifting {
    locks: Vec<LockId>,
    total: u64,
}

impl Drifting {
    /// In the first half every iteration touches its own slot; in the
    /// second half all iterations touch slot 0 (heavy sharing).
    fn slot(&self, iter: usize) -> usize {
        if iter < ITEMS / 2 {
            iter % SLOTS
        } else {
            0
        }
    }
}

impl SimApp for Drifting {
    fn name(&self) -> &str {
        "drifting"
    }
    fn setup(&mut self, machine: &mut Machine) {
        let first = machine.add_locks(SLOTS);
        self.locks = (0..SLOTS).map(|i| first.offset(i)).collect();
    }
    fn plan(&self) -> Vec<PlanEntry> {
        vec![PlanEntry::parallel("work")]
    }
    fn versions(&self, _section: &str) -> Vec<String> {
        vec!["batched".to_string(), "fine".to_string()]
    }
    fn emit_serial(&mut self, _section: &str, _ops: &mut OpSink) {}
    fn begin_parallel(&mut self, _section: &str) -> usize {
        ITEMS
    }
    fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
        let lock = self.locks[self.slot(iter)];
        self.total += 16;
        match version {
            0 => {
                // Batched: one acquire, but the lock is held across the
                // whole (expensive) update batch — great while slots are
                // private, disastrous once everyone shares slot 0.
                ops.acquire(lock);
                for _ in 0..16 {
                    ops.compute(Duration::from_micros(6));
                }
                ops.release(lock);
            }
            _ => {
                // Fine: 16 acquires, but the lock is held only for the
                // final store; the expensive part runs outside the region.
                for _ in 0..16 {
                    ops.compute(Duration::from_micros(6));
                    ops.acquire(lock);
                    ops.compute(Duration::from_nanos(200));
                    ops.release(lock);
                }
            }
        }
    }
}

fn new_app() -> Drifting {
    Drifting { locks: Vec::new(), total: 0 }
}

fn machine() -> MachineConfig {
    MachineConfig {
        lock_acquire_cost: Duration::from_nanos(200),
        lock_release_cost: Duration::from_nanos(200),
        lock_attempt_cost: Duration::from_nanos(100),
        ..MachineConfig::default()
    }
}

fn main() {
    let procs = 8;
    println!("drifting workload, {ITEMS} iterations, {procs} processors\n");

    for (label, policy) in [("static batched", "batched"), ("static fine", "fine")] {
        let mut cfg = RunConfig::fixed(procs, policy);
        cfg.machine = machine();
        let report = run_app(new_app(), &cfg).expect("runs");
        println!(
            "{label:<16} {:>9.3?}   waiting {:>9.3?}",
            report.elapsed(),
            report.stats.totals().wait_time
        );
    }

    let ctl = ControllerConfig {
        num_policies: 2,
        target_sampling: Duration::from_micros(500),
        // Short production intervals: resample often enough to catch the
        // drift (§4.4's trade-off, and the λ of the §5 analysis).
        target_production: Duration::from_millis(20),
        ..ControllerConfig::default()
    };
    let mut cfg = RunConfig::dynamic(procs, ctl);
    cfg.machine = machine();
    let report = run_app(new_app(), &cfg).expect("runs");
    println!("dynamic feedback {:>9.3?}\n", report.elapsed());

    println!("dynamic feedback phase trace (note the switch after the drift):");
    let work = report.section("work").next().expect("ran");
    for r in &work.records {
        if r.phase.is_production() {
            println!(
                "  production @ t={:<12} version {}  overhead {:.3}",
                r.at.to_string(),
                r.version,
                r.overhead
            );
        }
    }
}
