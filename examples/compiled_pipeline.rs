//! The full compiler pipeline on the paper's Figure 1 program.
//!
//! Parses the example computation from Figure 1 of the paper, runs
//! commutativity analysis, generates the three synchronization policy
//! versions (reproducing the Figure 1 → Figure 2 transformation), and
//! executes them — plus dynamic feedback — on the simulated multiprocessor.
//!
//! Run with `cargo run --release --example compiled_pipeline`.

use dynfb::compiler::artifact::{compile, CompileOptions};
use dynfb::compiler::interp::{HostRegistry, Value};
use dynfb::core::controller::ControllerConfig;
use dynfb::sim::{run_app, PlanEntry, RunConfig};
use std::time::Duration;

const SOURCE: &str = r#"
    // The paper's Figure 1, extended with an input section.
    extern double interact(double, double);
    extern double urand();

    class body {
        double pos;
        double sum;

        void one_interaction(body b) {
            double val = interact(this.pos, b.pos);
            this.sum += val;
        }

        void interactions(body[] b, int n) {
            for (int i = 0; i < n; i++) {
                this.one_interaction(b[i]);
            }
        }
    }

    body[] bodies;
    int n;

    void init() {
        n = 64;
        bodies = new body[n];
        for (int i = 0; i < n; i++) {
            body b = new body();
            b.pos = urand();
            bodies[i] = b;
        }
    }

    void compute() {
        for (int i = 0; i < n; i++) {
            bodies[i].interactions(bodies, n);
        }
    }
"#;

fn build() -> dynfb::compiler::CompiledApp {
    let hir = dynfb::lang::compile_source(SOURCE).expect("front end");
    let mut host = HostRegistry::new();
    host.register("interact", Duration::from_nanos(300), |args| {
        let (a, b) = (args[0].as_double().unwrap(), args[1].as_double().unwrap());
        Value::Double(1.0 / (1.0 + (a - b).abs()))
    });
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    host.register("urand", Duration::from_nanos(50), move |_| {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        Value::Double((rng_state >> 11) as f64 / (1u64 << 53) as f64)
    });
    let plan = vec![PlanEntry::serial("init"), PlanEntry::parallel("compute")];
    let mut options = CompileOptions::new("figure1", plan);
    options.max_objects = 256;
    compile(hir, options, host).expect("compiles")
}

fn main() {
    let app = build();

    println!("== commutativity analysis ==");
    let section = &app.sections()["compute"];
    println!(
        "parallelizable: {} ({} update operations, {} written fields)",
        section.report.parallelizable,
        section.report.updaters.len(),
        section.report.written.len()
    );

    println!("\n== generated versions ==");
    for v in &section.versions {
        println!(
            "  {:<22} {} functions reachable, {} bytes",
            v.name,
            v.reachable_functions().len(),
            v.size_bytes()
        );
    }

    // Show the Figure 1 -> Figure 2 transformation: `interactions` under
    // the original vs. the aggressive policy.
    let interactions =
        app.hir().method_named(app.hir().class_named("body").unwrap(), "interactions").unwrap();
    for v in &section.versions {
        println!("\n-- `interactions` under the {} version --", v.name);
        print!(
            "{}",
            dynfb::lang::printer::print_function_in(
                app.hir(),
                &v.functions,
                &v.functions[interactions.0]
            )
        );
    }
    let sizes = app.code_sizes();
    println!("  code sizes: {sizes:?}");

    println!("\n== simulated execution, 8 processors ==");
    for policy in ["original", "bounded", "aggressive"] {
        let report = run_app(build(), &RunConfig::fixed(8, policy)).expect("runs");
        println!(
            "  {:<12} {:>10.3?}   {:>9} acquires, waiting {:>8.3?}",
            policy,
            report.elapsed(),
            report.stats.totals().acquires,
            report.stats.totals().wait_time,
        );
    }
    let ctl = ControllerConfig {
        target_sampling: Duration::from_micros(200),
        target_production: Duration::from_millis(50),
        ..ControllerConfig::default()
    };
    let report = run_app(build(), &RunConfig::dynamic(8, ctl)).expect("runs");
    println!(
        "  {:<12} {:>10.3?}   {:>9} acquires",
        "dynamic",
        report.elapsed(),
        report.stats.totals().acquires
    );
    let compute = report.section("compute").next().expect("section ran");
    println!("\n== dynamic feedback trace for the parallel section ==");
    for r in &compute.records {
        println!(
            "  t={:<10} version {} ({})  overhead {:.3}{}",
            r.at.to_string(),
            r.version,
            if r.phase.is_sampling() { "sampling" } else { "production" },
            r.overhead,
            if r.partial { "  [section ended]" } else { "" }
        );
    }
}
