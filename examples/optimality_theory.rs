//! Exploring the §5 worst-case optimality theory.
//!
//! For a given bound `ε` on how much worse dynamic feedback may be than
//! the (unrealizable) optimal algorithm, the analysis yields a *feasible
//! region* of production intervals — long enough to amortize sampling,
//! short enough to react to drifting overheads — and an optimal production
//! interval `P_opt`. This example sweeps the decay rate λ and the
//! effective sampling interval S to show how the region moves, reproducing
//! the relationships the paper discusses around Figure 3.
//!
//! Run with `cargo run --release --example optimality_theory`.

use dynfb::core::theory::Analysis;

fn main() {
    println!("paper example: S = 1 s, N = 2 policies, lambda = 0.065, eps = 0.5");
    let a = Analysis::new(1.0, 2, 0.065).expect("valid parameters");
    let region = a.feasible_region(0.5).expect("eps ok").expect("region exists");
    println!(
        "  feasible region [{:.2}, {:.2}] s, P_opt = {:.2} s (paper: ~7.25)\n",
        region.0,
        region.1,
        a.optimal_production_interval()
    );

    println!("as the decay rate lambda grows, the environment changes faster and the");
    println!("feasible region shrinks until no production interval works:");
    println!("  {:>8} {:>12} {:>12} {:>8}", "lambda", "P_lo (s)", "P_hi (s)", "P_opt");
    for lambda in [0.01, 0.03, 0.065, 0.1, 0.2, 0.4, 0.8] {
        let a = Analysis::new(1.0, 2, lambda).expect("valid");
        match a.feasible_region(0.5).expect("eps ok") {
            Some((lo, hi)) => println!(
                "  {lambda:>8.3} {lo:>12.2} {hi:>12.2} {:>8.2}",
                a.optimal_production_interval()
            ),
            None => println!("  {lambda:>8.3} {:>12} {:>12}", "-- infeasible --", ""),
        }
    }

    println!("\nas the effective sampling interval S grows (slower switch points, more");
    println!("policies to try), sampling costs more and the region narrows:");
    println!("  {:>8} {:>12} {:>12} {:>8}", "S (s)", "P_lo (s)", "P_hi (s)", "P_opt");
    for s in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let a = Analysis::new(s, 2, 0.065).expect("valid");
        match a.feasible_region(0.5).expect("eps ok") {
            Some((lo, hi)) => println!(
                "  {s:>8.2} {lo:>12.2} {hi:>12.2} {:>8.2}",
                a.optimal_production_interval()
            ),
            None => println!("  {s:>8.2} {:>12} {:>12}", "-- infeasible --", ""),
        }
    }

    println!("\nthe guarantee also weakens gracefully: larger eps (weaker bound) widens");
    println!("the region:");
    let a = Analysis::new(1.0, 2, 0.065).expect("valid");
    println!("  {:>8} {:>12} {:>12}", "eps", "P_lo (s)", "P_hi (s)");
    for eps in [0.3, 0.4, 0.5, 0.7, 0.9] {
        match a.feasible_region(eps).expect("eps ok") {
            Some((lo, hi)) => println!("  {eps:>8.2} {lo:>12.2} {hi:>12.2}"),
            None => println!("  {eps:>8.2} {:>12} {:>12}", "-- infeasible --", ""),
        }
    }
}
