//! # dynfb — Dynamic Feedback: an effective technique for adaptive computing
//!
//! A full, from-scratch Rust reproduction of Diniz & Rinard's PLDI 1997
//! paper. This facade crate re-exports the workspace:
//!
//! * [`core`] (`dynfb-core`) — the dynamic feedback controller, the
//!   overhead model, the §5 optimality theory, and a real-thread adaptive
//!   executor for Rust workloads.
//! * [`sim`] (`dynfb-sim`) — a deterministic discrete-event shared-memory
//!   multiprocessor (spin locks, barriers, timers) standing in for the
//!   paper's 16-processor Stanford DASH machine, plus the generated-code
//!   runtime (serial/parallel sections, multi-version loops, synchronous
//!   policy switching).
//! * [`lang`] (`dynfb-lang`) — the object-based mini language the
//!   parallelizing compiler consumes.
//! * [`compiler`] (`dynfb-compiler`) — commutativity analysis, automatic
//!   lock insertion, the Original/Bounded/Aggressive synchronization
//!   optimization policies, and multi-version code generation.
//! * [`apps`] (`dynfb-apps`) — Barnes-Hut, Water, and String, written in
//!   the mini language and compiled end-to-end.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! ## Example: dynamic feedback on the simulated machine
//!
//! ```
//! use dynfb::apps::{barnes_hut, BarnesHutConfig};
//! use dynfb::core::controller::ControllerConfig;
//! use std::time::Duration;
//!
//! let app = barnes_hut(&BarnesHutConfig { bodies: 64, steps: 1, ..Default::default() });
//! let ctl = ControllerConfig {
//!     target_sampling: Duration::from_micros(200),
//!     target_production: Duration::from_millis(50),
//!     ..ControllerConfig::default()
//! };
//! let report = dynfb::sim::run_app(app, &dynfb::apps::run_dynamic(8, ctl))?;
//! assert!(report.elapsed() > Duration::ZERO);
//! # Ok::<(), dynfb::sim::SimError>(())
//! ```

#![warn(missing_docs)]

pub use dynfb_apps as apps;
pub use dynfb_compiler as compiler;
pub use dynfb_core as core;
pub use dynfb_lang as lang;
pub use dynfb_sim as sim;
