/root/repo/target/release/examples/compiled_pipeline-68e454ee3c968ec0.d: examples/compiled_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libcompiled_pipeline-68e454ee3c968ec0.rmeta: examples/compiled_pipeline.rs Cargo.toml

examples/compiled_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
