/root/repo/target/release/examples/drifting_env-10a652886592770a.d: examples/drifting_env.rs

/root/repo/target/release/examples/drifting_env-10a652886592770a: examples/drifting_env.rs

examples/drifting_env.rs:
