/root/repo/target/release/examples/quickstart-24b22061f39ff6d8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-24b22061f39ff6d8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
