/root/repo/target/release/examples/compiled_pipeline-2cfd90605909429f.d: examples/compiled_pipeline.rs

/root/repo/target/release/examples/compiled_pipeline-2cfd90605909429f: examples/compiled_pipeline.rs

examples/compiled_pipeline.rs:
