/root/repo/target/release/examples/drifting_env-2165c06ee02e4327.d: examples/drifting_env.rs Cargo.toml

/root/repo/target/release/examples/libdrifting_env-2165c06ee02e4327.rmeta: examples/drifting_env.rs Cargo.toml

examples/drifting_env.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
