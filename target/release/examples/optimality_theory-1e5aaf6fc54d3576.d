/root/repo/target/release/examples/optimality_theory-1e5aaf6fc54d3576.d: examples/optimality_theory.rs

/root/repo/target/release/examples/optimality_theory-1e5aaf6fc54d3576: examples/optimality_theory.rs

examples/optimality_theory.rs:
