/root/repo/target/release/examples/optimality_theory-235b9ff1b7af09a8.d: examples/optimality_theory.rs Cargo.toml

/root/repo/target/release/examples/liboptimality_theory-235b9ff1b7af09a8.rmeta: examples/optimality_theory.rs Cargo.toml

examples/optimality_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
