/root/repo/target/release/examples/quickstart-9df3c645ad51e904.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9df3c645ad51e904: examples/quickstart.rs

examples/quickstart.rs:
