/root/repo/target/release/deps/table02_barnes_hut-13c057b4576afb52.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/release/deps/table02_barnes_hut-13c057b4576afb52: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
