/root/repo/target/release/deps/micro-e047638c8187fde0.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-e047638c8187fde0: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
