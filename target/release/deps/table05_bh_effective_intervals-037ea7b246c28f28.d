/root/repo/target/release/deps/table05_bh_effective_intervals-037ea7b246c28f28.d: crates/bench/src/bin/table05_bh_effective_intervals.rs Cargo.toml

/root/repo/target/release/deps/libtable05_bh_effective_intervals-037ea7b246c28f28.rmeta: crates/bench/src/bin/table05_bh_effective_intervals.rs Cargo.toml

crates/bench/src/bin/table05_bh_effective_intervals.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
