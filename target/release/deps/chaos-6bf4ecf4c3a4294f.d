/root/repo/target/release/deps/chaos-6bf4ecf4c3a4294f.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-6bf4ecf4c3a4294f.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
