/root/repo/target/release/deps/fig07_water_waiting-960606c3a582ecfb.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/release/deps/fig07_water_waiting-960606c3a582ecfb: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
