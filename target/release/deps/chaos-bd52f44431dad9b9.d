/root/repo/target/release/deps/chaos-bd52f44431dad9b9.d: crates/bench/tests/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-bd52f44431dad9b9.rmeta: crates/bench/tests/chaos.rs Cargo.toml

crates/bench/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
