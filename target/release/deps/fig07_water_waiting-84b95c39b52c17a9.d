/root/repo/target/release/deps/fig07_water_waiting-84b95c39b52c17a9.d: crates/bench/src/bin/fig07_water_waiting.rs Cargo.toml

/root/repo/target/release/deps/libfig07_water_waiting-84b95c39b52c17a9.rmeta: crates/bench/src/bin/fig07_water_waiting.rs Cargo.toml

crates/bench/src/bin/fig07_water_waiting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
