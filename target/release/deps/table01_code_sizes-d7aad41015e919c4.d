/root/repo/target/release/deps/table01_code_sizes-d7aad41015e919c4.d: crates/bench/src/bin/table01_code_sizes.rs Cargo.toml

/root/repo/target/release/deps/libtable01_code_sizes-d7aad41015e919c4.rmeta: crates/bench/src/bin/table01_code_sizes.rs Cargo.toml

crates/bench/src/bin/table01_code_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
