/root/repo/target/release/deps/table15_string-b5666b425669fa32.d: crates/bench/src/bin/table15_string.rs Cargo.toml

/root/repo/target/release/deps/libtable15_string-b5666b425669fa32.rmeta: crates/bench/src/bin/table15_string.rs Cargo.toml

crates/bench/src/bin/table15_string.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
