/root/repo/target/release/deps/table04_bh_forces_stats-81ca056fc108a2f9.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/release/deps/table04_bh_forces_stats-81ca056fc108a2f9: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
