/root/repo/target/release/deps/instrumentation-f30b368cd087331d.d: crates/bench/src/bin/instrumentation.rs Cargo.toml

/root/repo/target/release/deps/libinstrumentation-f30b368cd087331d.rmeta: crates/bench/src/bin/instrumentation.rs Cargo.toml

crates/bench/src/bin/instrumentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
