/root/repo/target/release/deps/table09_12_water_stats-45a3ee765925ae2a.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/release/deps/table09_12_water_stats-45a3ee765925ae2a: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
