/root/repo/target/release/deps/dynfb_apps-01ee8a43b7e8aad3.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol Cargo.toml

/root/repo/target/release/deps/libdynfb_apps-01ee8a43b7e8aad3.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/host.rs:
crates/apps/src/string_app.rs:
crates/apps/src/water.rs:
crates/apps/src/../programs/barnes_hut.ol:
crates/apps/src/../programs/string_app.ol:
crates/apps/src/../programs/water.ol:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
