/root/repo/target/release/deps/instrumentation-357041d0aa060580.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/release/deps/instrumentation-357041d0aa060580: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
