/root/repo/target/release/deps/micro-70891197448c6116.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-70891197448c6116: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
