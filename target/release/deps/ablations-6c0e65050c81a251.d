/root/repo/target/release/deps/ablations-6c0e65050c81a251.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-6c0e65050c81a251.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
