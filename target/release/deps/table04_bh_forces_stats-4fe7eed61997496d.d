/root/repo/target/release/deps/table04_bh_forces_stats-4fe7eed61997496d.d: crates/bench/src/bin/table04_bh_forces_stats.rs Cargo.toml

/root/repo/target/release/deps/libtable04_bh_forces_stats-4fe7eed61997496d.rmeta: crates/bench/src/bin/table04_bh_forces_stats.rs Cargo.toml

crates/bench/src/bin/table04_bh_forces_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
