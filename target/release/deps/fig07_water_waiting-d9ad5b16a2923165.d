/root/repo/target/release/deps/fig07_water_waiting-d9ad5b16a2923165.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/release/deps/fig07_water_waiting-d9ad5b16a2923165: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
