/root/repo/target/release/deps/table01_code_sizes-9cc59e9ab3cfb7f9.d: crates/bench/src/bin/table01_code_sizes.rs Cargo.toml

/root/repo/target/release/deps/libtable01_code_sizes-9cc59e9ab3cfb7f9.rmeta: crates/bench/src/bin/table01_code_sizes.rs Cargo.toml

crates/bench/src/bin/table01_code_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
