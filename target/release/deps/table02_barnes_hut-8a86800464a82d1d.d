/root/repo/target/release/deps/table02_barnes_hut-8a86800464a82d1d.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/release/deps/table02_barnes_hut-8a86800464a82d1d: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
