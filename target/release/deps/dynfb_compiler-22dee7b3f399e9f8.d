/root/repo/target/release/deps/dynfb_compiler-22dee7b3f399e9f8.d: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs Cargo.toml

/root/repo/target/release/deps/libdynfb_compiler-22dee7b3f399e9f8.rmeta: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs Cargo.toml

crates/compiler/src/lib.rs:
crates/compiler/src/artifact.rs:
crates/compiler/src/callgraph.rs:
crates/compiler/src/commutativity.rs:
crates/compiler/src/effects.rs:
crates/compiler/src/interp.rs:
crates/compiler/src/lockplace.rs:
crates/compiler/src/symbolic.rs:
crates/compiler/src/syncopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
