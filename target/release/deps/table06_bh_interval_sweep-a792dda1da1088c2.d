/root/repo/target/release/deps/table06_bh_interval_sweep-a792dda1da1088c2.d: crates/bench/src/bin/table06_bh_interval_sweep.rs Cargo.toml

/root/repo/target/release/deps/libtable06_bh_interval_sweep-a792dda1da1088c2.rmeta: crates/bench/src/bin/table06_bh_interval_sweep.rs Cargo.toml

crates/bench/src/bin/table06_bh_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
