/root/repo/target/release/deps/experiments-abb53e4523f12138.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-abb53e4523f12138.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
