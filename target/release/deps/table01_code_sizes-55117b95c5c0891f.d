/root/repo/target/release/deps/table01_code_sizes-55117b95c5c0891f.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/release/deps/table01_code_sizes-55117b95c5c0891f: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
