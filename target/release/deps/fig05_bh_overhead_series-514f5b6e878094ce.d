/root/repo/target/release/deps/fig05_bh_overhead_series-514f5b6e878094ce.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/release/deps/fig05_bh_overhead_series-514f5b6e878094ce: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
