/root/repo/target/release/deps/table03_bh_locking-eefea225e84e20de.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/release/deps/table03_bh_locking-eefea225e84e20de: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
