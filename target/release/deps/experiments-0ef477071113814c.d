/root/repo/target/release/deps/experiments-0ef477071113814c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-0ef477071113814c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
