/root/repo/target/release/deps/chaos-9faa36c06341d50c.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-9faa36c06341d50c: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
