/root/repo/target/release/deps/dynfb_lang-8678119836315d13.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs Cargo.toml

/root/repo/target/release/deps/libdynfb_lang-8678119836315d13.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/hir.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/sema.rs:
crates/lang/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
