/root/repo/target/release/deps/properties-4a109f7d9c91cd59.d: crates/lang/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-4a109f7d9c91cd59.rmeta: crates/lang/tests/properties.rs Cargo.toml

crates/lang/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
