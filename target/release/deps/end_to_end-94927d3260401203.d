/root/repo/target/release/deps/end_to_end-94927d3260401203.d: crates/compiler/tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-94927d3260401203: crates/compiler/tests/end_to_end.rs

crates/compiler/tests/end_to_end.rs:
