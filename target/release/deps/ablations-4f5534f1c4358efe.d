/root/repo/target/release/deps/ablations-4f5534f1c4358efe.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-4f5534f1c4358efe: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
