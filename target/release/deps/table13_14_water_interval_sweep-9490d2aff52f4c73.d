/root/repo/target/release/deps/table13_14_water_interval_sweep-9490d2aff52f4c73.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs Cargo.toml

/root/repo/target/release/deps/libtable13_14_water_interval_sweep-9490d2aff52f4c73.rmeta: crates/bench/src/bin/table13_14_water_interval_sweep.rs Cargo.toml

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
