/root/repo/target/release/deps/table05_bh_effective_intervals-8f4d70e53de8ca9c.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/release/deps/table05_bh_effective_intervals-8f4d70e53de8ca9c: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
