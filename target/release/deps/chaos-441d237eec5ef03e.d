/root/repo/target/release/deps/chaos-441d237eec5ef03e.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-441d237eec5ef03e.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
