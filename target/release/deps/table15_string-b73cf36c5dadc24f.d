/root/repo/target/release/deps/table15_string-b73cf36c5dadc24f.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/release/deps/table15_string-b73cf36c5dadc24f: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
