/root/repo/target/release/deps/table05_bh_effective_intervals-9f351edbde161c9c.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/release/deps/table05_bh_effective_intervals-9f351edbde161c9c: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
