/root/repo/target/release/deps/spanning-189f73108e839a6b.d: crates/apps/tests/spanning.rs

/root/repo/target/release/deps/spanning-189f73108e839a6b: crates/apps/tests/spanning.rs

crates/apps/tests/spanning.rs:
