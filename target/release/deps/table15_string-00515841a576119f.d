/root/repo/target/release/deps/table15_string-00515841a576119f.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/release/deps/table15_string-00515841a576119f: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
