/root/repo/target/release/deps/fig08_09_water_series-0a7cd607e5c9357d.d: crates/bench/src/bin/fig08_09_water_series.rs Cargo.toml

/root/repo/target/release/deps/libfig08_09_water_series-0a7cd607e5c9357d.rmeta: crates/bench/src/bin/fig08_09_water_series.rs Cargo.toml

crates/bench/src/bin/fig08_09_water_series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
