/root/repo/target/release/deps/dynfb-e811850ea4eb6dbe.d: src/lib.rs

/root/repo/target/release/deps/libdynfb-e811850ea4eb6dbe.rlib: src/lib.rs

/root/repo/target/release/deps/libdynfb-e811850ea4eb6dbe.rmeta: src/lib.rs

src/lib.rs:
