/root/repo/target/release/deps/fig07_water_waiting-1e957a0bd837b18a.d: crates/bench/src/bin/fig07_water_waiting.rs Cargo.toml

/root/repo/target/release/deps/libfig07_water_waiting-1e957a0bd837b18a.rmeta: crates/bench/src/bin/fig07_water_waiting.rs Cargo.toml

crates/bench/src/bin/fig07_water_waiting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
