/root/repo/target/release/deps/properties-55d118119bf56aa2.d: crates/sim/tests/properties.rs

/root/repo/target/release/deps/properties-55d118119bf56aa2: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
