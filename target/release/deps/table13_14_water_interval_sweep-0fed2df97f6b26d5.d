/root/repo/target/release/deps/table13_14_water_interval_sweep-0fed2df97f6b26d5.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs Cargo.toml

/root/repo/target/release/deps/libtable13_14_water_interval_sweep-0fed2df97f6b26d5.rmeta: crates/bench/src/bin/table13_14_water_interval_sweep.rs Cargo.toml

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
