/root/repo/target/release/deps/table03_bh_locking-34a5d0deeffbb446.d: crates/bench/src/bin/table03_bh_locking.rs Cargo.toml

/root/repo/target/release/deps/libtable03_bh_locking-34a5d0deeffbb446.rmeta: crates/bench/src/bin/table03_bh_locking.rs Cargo.toml

crates/bench/src/bin/table03_bh_locking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
