/root/repo/target/release/deps/table09_12_water_stats-3ead1479e5dfbfdc.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/release/deps/table09_12_water_stats-3ead1479e5dfbfdc: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
