/root/repo/target/release/deps/determinism-922a78ba89c27fa1.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-922a78ba89c27fa1: tests/determinism.rs

tests/determinism.rs:
