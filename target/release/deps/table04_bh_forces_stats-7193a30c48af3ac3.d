/root/repo/target/release/deps/table04_bh_forces_stats-7193a30c48af3ac3.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/release/deps/table04_bh_forces_stats-7193a30c48af3ac3: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
