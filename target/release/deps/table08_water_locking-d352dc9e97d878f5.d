/root/repo/target/release/deps/table08_water_locking-d352dc9e97d878f5.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/release/deps/table08_water_locking-d352dc9e97d878f5: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
