/root/repo/target/release/deps/dynfb_lang-954b5cb78d2dd367.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

/root/repo/target/release/deps/dynfb_lang-954b5cb78d2dd367: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/hir.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/sema.rs:
crates/lang/src/token.rs:
