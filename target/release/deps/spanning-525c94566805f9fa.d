/root/repo/target/release/deps/spanning-525c94566805f9fa.d: crates/apps/tests/spanning.rs Cargo.toml

/root/repo/target/release/deps/libspanning-525c94566805f9fa.rmeta: crates/apps/tests/spanning.rs Cargo.toml

crates/apps/tests/spanning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
