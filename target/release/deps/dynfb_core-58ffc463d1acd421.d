/root/repo/target/release/deps/dynfb_core-58ffc463d1acd421.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs Cargo.toml

/root/repo/target/release/deps/libdynfb_core-58ffc463d1acd421.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
