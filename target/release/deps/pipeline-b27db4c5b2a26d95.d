/root/repo/target/release/deps/pipeline-b27db4c5b2a26d95.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-b27db4c5b2a26d95: tests/pipeline.rs

tests/pipeline.rs:
