/root/repo/target/release/deps/end_to_end-d63780de09f0b2db.d: crates/compiler/tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-d63780de09f0b2db.rmeta: crates/compiler/tests/end_to_end.rs Cargo.toml

crates/compiler/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
