/root/repo/target/release/deps/table07_water-dfea708c834418c9.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/release/deps/table07_water-dfea708c834418c9: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
