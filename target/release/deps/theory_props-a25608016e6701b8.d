/root/repo/target/release/deps/theory_props-a25608016e6701b8.d: tests/theory_props.rs Cargo.toml

/root/repo/target/release/deps/libtheory_props-a25608016e6701b8.rmeta: tests/theory_props.rs Cargo.toml

tests/theory_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
