/root/repo/target/release/deps/table08_water_locking-c56cab605facd63e.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/release/deps/table08_water_locking-c56cab605facd63e: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
