/root/repo/target/release/deps/pipeline-4feeae60e885e6bc.d: tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-4feeae60e885e6bc.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
