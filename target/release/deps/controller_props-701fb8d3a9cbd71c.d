/root/repo/target/release/deps/controller_props-701fb8d3a9cbd71c.d: crates/core/tests/controller_props.rs

/root/repo/target/release/deps/controller_props-701fb8d3a9cbd71c: crates/core/tests/controller_props.rs

crates/core/tests/controller_props.rs:
