/root/repo/target/release/deps/instrumentation-132832c1e5ef4625.d: crates/bench/src/bin/instrumentation.rs Cargo.toml

/root/repo/target/release/deps/libinstrumentation-132832c1e5ef4625.rmeta: crates/bench/src/bin/instrumentation.rs Cargo.toml

crates/bench/src/bin/instrumentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
