/root/repo/target/release/deps/experiments-98ece6c9d4375447.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-98ece6c9d4375447.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
