/root/repo/target/release/deps/table03_bh_locking-61ccd6203d4798da.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/release/deps/table03_bh_locking-61ccd6203d4798da: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
