/root/repo/target/release/deps/dynfb_bench-c0ef6c778bfc818b.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdynfb_bench-c0ef6c778bfc818b.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdynfb_bench-c0ef6c778bfc818b.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
