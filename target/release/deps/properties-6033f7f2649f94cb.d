/root/repo/target/release/deps/properties-6033f7f2649f94cb.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-6033f7f2649f94cb.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
