/root/repo/target/release/deps/fig08_09_water_series-13124c7abcd2d234.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/release/deps/fig08_09_water_series-13124c7abcd2d234: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
