/root/repo/target/release/deps/table01_code_sizes-137315196ddedbc3.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/release/deps/table01_code_sizes-137315196ddedbc3: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
