/root/repo/target/release/deps/ablations-548067d9bf2b714f.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-548067d9bf2b714f.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
