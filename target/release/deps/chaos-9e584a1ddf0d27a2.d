/root/repo/target/release/deps/chaos-9e584a1ddf0d27a2.d: crates/bench/tests/chaos.rs

/root/repo/target/release/deps/chaos-9e584a1ddf0d27a2: crates/bench/tests/chaos.rs

crates/bench/tests/chaos.rs:
