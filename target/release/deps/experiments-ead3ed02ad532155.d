/root/repo/target/release/deps/experiments-ead3ed02ad532155.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-ead3ed02ad532155: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
