/root/repo/target/release/deps/table08_water_locking-6a916311cd3c3e25.d: crates/bench/src/bin/table08_water_locking.rs Cargo.toml

/root/repo/target/release/deps/libtable08_water_locking-6a916311cd3c3e25.rmeta: crates/bench/src/bin/table08_water_locking.rs Cargo.toml

crates/bench/src/bin/table08_water_locking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
