/root/repo/target/release/deps/properties-59b75e2d7ec6ccf0.d: crates/compiler/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-59b75e2d7ec6ccf0.rmeta: crates/compiler/tests/properties.rs Cargo.toml

crates/compiler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
