/root/repo/target/release/deps/fig05_bh_overhead_series-1fa3e93874487b66.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/release/deps/fig05_bh_overhead_series-1fa3e93874487b66: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
