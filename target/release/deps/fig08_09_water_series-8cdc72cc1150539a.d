/root/repo/target/release/deps/fig08_09_water_series-8cdc72cc1150539a.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/release/deps/fig08_09_water_series-8cdc72cc1150539a: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
