/root/repo/target/release/deps/chaos-db04351e360b469d.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-db04351e360b469d: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
