/root/repo/target/release/deps/micro-2057867e5bfe9dd1.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/release/deps/libmicro-2057867e5bfe9dd1.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
