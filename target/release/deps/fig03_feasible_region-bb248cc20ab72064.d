/root/repo/target/release/deps/fig03_feasible_region-bb248cc20ab72064.d: crates/bench/src/bin/fig03_feasible_region.rs Cargo.toml

/root/repo/target/release/deps/libfig03_feasible_region-bb248cc20ab72064.rmeta: crates/bench/src/bin/fig03_feasible_region.rs Cargo.toml

crates/bench/src/bin/fig03_feasible_region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
