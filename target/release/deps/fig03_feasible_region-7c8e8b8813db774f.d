/root/repo/target/release/deps/fig03_feasible_region-7c8e8b8813db774f.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/release/deps/fig03_feasible_region-7c8e8b8813db774f: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
