/root/repo/target/release/deps/table06_bh_interval_sweep-df221a114198a79e.d: crates/bench/src/bin/table06_bh_interval_sweep.rs Cargo.toml

/root/repo/target/release/deps/libtable06_bh_interval_sweep-df221a114198a79e.rmeta: crates/bench/src/bin/table06_bh_interval_sweep.rs Cargo.toml

crates/bench/src/bin/table06_bh_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
