/root/repo/target/release/deps/table07_water-e8e3f121c32509b0.d: crates/bench/src/bin/table07_water.rs Cargo.toml

/root/repo/target/release/deps/libtable07_water-e8e3f121c32509b0.rmeta: crates/bench/src/bin/table07_water.rs Cargo.toml

crates/bench/src/bin/table07_water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
