/root/repo/target/release/deps/determinism-e91c1cc0cd9f1939.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-e91c1cc0cd9f1939.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
