/root/repo/target/release/deps/fig03_feasible_region-f5777d147c2f2d2c.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/release/deps/fig03_feasible_region-f5777d147c2f2d2c: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
