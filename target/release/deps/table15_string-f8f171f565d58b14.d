/root/repo/target/release/deps/table15_string-f8f171f565d58b14.d: crates/bench/src/bin/table15_string.rs Cargo.toml

/root/repo/target/release/deps/libtable15_string-f8f171f565d58b14.rmeta: crates/bench/src/bin/table15_string.rs Cargo.toml

crates/bench/src/bin/table15_string.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
