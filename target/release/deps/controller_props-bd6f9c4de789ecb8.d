/root/repo/target/release/deps/controller_props-bd6f9c4de789ecb8.d: crates/core/tests/controller_props.rs Cargo.toml

/root/repo/target/release/deps/libcontroller_props-bd6f9c4de789ecb8.rmeta: crates/core/tests/controller_props.rs Cargo.toml

crates/core/tests/controller_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
