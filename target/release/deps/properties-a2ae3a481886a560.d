/root/repo/target/release/deps/properties-a2ae3a481886a560.d: crates/lang/tests/properties.rs

/root/repo/target/release/deps/properties-a2ae3a481886a560: crates/lang/tests/properties.rs

crates/lang/tests/properties.rs:
