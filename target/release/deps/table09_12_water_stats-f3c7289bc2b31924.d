/root/repo/target/release/deps/table09_12_water_stats-f3c7289bc2b31924.d: crates/bench/src/bin/table09_12_water_stats.rs Cargo.toml

/root/repo/target/release/deps/libtable09_12_water_stats-f3c7289bc2b31924.rmeta: crates/bench/src/bin/table09_12_water_stats.rs Cargo.toml

crates/bench/src/bin/table09_12_water_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
