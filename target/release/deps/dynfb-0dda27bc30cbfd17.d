/root/repo/target/release/deps/dynfb-0dda27bc30cbfd17.d: src/lib.rs

/root/repo/target/release/deps/dynfb-0dda27bc30cbfd17: src/lib.rs

src/lib.rs:
