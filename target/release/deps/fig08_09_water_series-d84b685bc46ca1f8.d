/root/repo/target/release/deps/fig08_09_water_series-d84b685bc46ca1f8.d: crates/bench/src/bin/fig08_09_water_series.rs Cargo.toml

/root/repo/target/release/deps/libfig08_09_water_series-d84b685bc46ca1f8.rmeta: crates/bench/src/bin/fig08_09_water_series.rs Cargo.toml

crates/bench/src/bin/fig08_09_water_series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
