/root/repo/target/release/deps/interp_more-b123812c3bddca25.d: crates/compiler/tests/interp_more.rs

/root/repo/target/release/deps/interp_more-b123812c3bddca25: crates/compiler/tests/interp_more.rs

crates/compiler/tests/interp_more.rs:
