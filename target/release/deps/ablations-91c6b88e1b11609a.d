/root/repo/target/release/deps/ablations-91c6b88e1b11609a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-91c6b88e1b11609a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
