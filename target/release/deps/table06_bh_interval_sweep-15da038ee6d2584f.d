/root/repo/target/release/deps/table06_bh_interval_sweep-15da038ee6d2584f.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/release/deps/table06_bh_interval_sweep-15da038ee6d2584f: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
