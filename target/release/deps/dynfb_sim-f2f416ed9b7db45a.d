/root/repo/target/release/deps/dynfb_sim-f2f416ed9b7db45a.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/release/deps/libdynfb_sim-f2f416ed9b7db45a.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/faults.rs:
crates/sim/src/machine.rs:
crates/sim/src/process.rs:
crates/sim/src/runtime.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
