/root/repo/target/release/deps/table13_14_water_interval_sweep-22add90aeded3487.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/release/deps/table13_14_water_interval_sweep-22add90aeded3487: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
