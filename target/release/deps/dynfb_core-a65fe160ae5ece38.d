/root/repo/target/release/deps/dynfb_core-a65fe160ae5ece38.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/release/deps/dynfb_core-a65fe160ae5ece38: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
