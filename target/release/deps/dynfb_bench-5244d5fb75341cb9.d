/root/repo/target/release/deps/dynfb_bench-5244d5fb75341cb9.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/dynfb_bench-5244d5fb75341cb9: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
