/root/repo/target/release/deps/dynfb_core-415d60eed7f51ce6.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libdynfb_core-415d60eed7f51ce6.rlib: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libdynfb_core-415d60eed7f51ce6.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
