/root/repo/target/release/deps/dynfb-ac21413987b6bce8.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libdynfb-ac21413987b6bce8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
