/root/repo/target/release/deps/theory_props-ddb4d64e0de2109a.d: tests/theory_props.rs

/root/repo/target/release/deps/theory_props-ddb4d64e0de2109a: tests/theory_props.rs

tests/theory_props.rs:
