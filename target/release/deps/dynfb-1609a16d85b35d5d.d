/root/repo/target/release/deps/dynfb-1609a16d85b35d5d.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libdynfb-1609a16d85b35d5d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
