/root/repo/target/release/deps/instrumentation-da438e1d56afd312.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/release/deps/instrumentation-da438e1d56afd312: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
