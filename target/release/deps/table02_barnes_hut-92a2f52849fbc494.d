/root/repo/target/release/deps/table02_barnes_hut-92a2f52849fbc494.d: crates/bench/src/bin/table02_barnes_hut.rs Cargo.toml

/root/repo/target/release/deps/libtable02_barnes_hut-92a2f52849fbc494.rmeta: crates/bench/src/bin/table02_barnes_hut.rs Cargo.toml

crates/bench/src/bin/table02_barnes_hut.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
