/root/repo/target/release/deps/interp_more-3ab12595d41823b9.d: crates/compiler/tests/interp_more.rs Cargo.toml

/root/repo/target/release/deps/libinterp_more-3ab12595d41823b9.rmeta: crates/compiler/tests/interp_more.rs Cargo.toml

crates/compiler/tests/interp_more.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
