/root/repo/target/release/deps/dynfb_bench-7fccf90da8444cac.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/release/deps/libdynfb_bench-7fccf90da8444cac.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
