/root/repo/target/release/deps/table07_water-3b2708aa7fa9538a.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/release/deps/table07_water-3b2708aa7fa9538a: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
