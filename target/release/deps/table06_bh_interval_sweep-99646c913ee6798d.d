/root/repo/target/release/deps/table06_bh_interval_sweep-99646c913ee6798d.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/release/deps/table06_bh_interval_sweep-99646c913ee6798d: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
