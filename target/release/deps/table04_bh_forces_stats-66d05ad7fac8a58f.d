/root/repo/target/release/deps/table04_bh_forces_stats-66d05ad7fac8a58f.d: crates/bench/src/bin/table04_bh_forces_stats.rs Cargo.toml

/root/repo/target/release/deps/libtable04_bh_forces_stats-66d05ad7fac8a58f.rmeta: crates/bench/src/bin/table04_bh_forces_stats.rs Cargo.toml

crates/bench/src/bin/table04_bh_forces_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
