/root/repo/target/release/deps/table13_14_water_interval_sweep-cc16019bd77e31c8.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/release/deps/table13_14_water_interval_sweep-cc16019bd77e31c8: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
