/root/repo/target/release/deps/dynfb_compiler-1235d035f639578e.d: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

/root/repo/target/release/deps/libdynfb_compiler-1235d035f639578e.rlib: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

/root/repo/target/release/deps/libdynfb_compiler-1235d035f639578e.rmeta: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

crates/compiler/src/lib.rs:
crates/compiler/src/artifact.rs:
crates/compiler/src/callgraph.rs:
crates/compiler/src/commutativity.rs:
crates/compiler/src/effects.rs:
crates/compiler/src/interp.rs:
crates/compiler/src/lockplace.rs:
crates/compiler/src/symbolic.rs:
crates/compiler/src/syncopt.rs:
