/root/repo/target/release/deps/fig05_bh_overhead_series-1a10f607217c0e67.d: crates/bench/src/bin/fig05_bh_overhead_series.rs Cargo.toml

/root/repo/target/release/deps/libfig05_bh_overhead_series-1a10f607217c0e67.rmeta: crates/bench/src/bin/fig05_bh_overhead_series.rs Cargo.toml

crates/bench/src/bin/fig05_bh_overhead_series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
