/root/repo/target/release/deps/table07_water-14661489a77ea07c.d: crates/bench/src/bin/table07_water.rs Cargo.toml

/root/repo/target/release/deps/libtable07_water-14661489a77ea07c.rmeta: crates/bench/src/bin/table07_water.rs Cargo.toml

crates/bench/src/bin/table07_water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
