/root/repo/target/release/deps/properties-1f19a8ff50f8c207.d: crates/compiler/tests/properties.rs

/root/repo/target/release/deps/properties-1f19a8ff50f8c207: crates/compiler/tests/properties.rs

crates/compiler/tests/properties.rs:
