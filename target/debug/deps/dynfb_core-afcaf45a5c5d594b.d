/root/repo/target/debug/deps/dynfb_core-afcaf45a5c5d594b.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdynfb_core-afcaf45a5c5d594b.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
