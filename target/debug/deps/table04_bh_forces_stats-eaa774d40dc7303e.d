/root/repo/target/debug/deps/table04_bh_forces_stats-eaa774d40dc7303e.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/debug/deps/libtable04_bh_forces_stats-eaa774d40dc7303e.rmeta: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
