/root/repo/target/debug/deps/table01_code_sizes-78cfc54dd7791401.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/debug/deps/libtable01_code_sizes-78cfc54dd7791401.rmeta: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
