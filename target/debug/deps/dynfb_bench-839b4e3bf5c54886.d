/root/repo/target/debug/deps/dynfb_bench-839b4e3bf5c54886.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdynfb_bench-839b4e3bf5c54886.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
