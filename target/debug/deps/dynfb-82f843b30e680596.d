/root/repo/target/debug/deps/dynfb-82f843b30e680596.d: src/lib.rs

/root/repo/target/debug/deps/libdynfb-82f843b30e680596.rmeta: src/lib.rs

src/lib.rs:
