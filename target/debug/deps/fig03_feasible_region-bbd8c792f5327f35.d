/root/repo/target/debug/deps/fig03_feasible_region-bbd8c792f5327f35.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/debug/deps/fig03_feasible_region-bbd8c792f5327f35: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
