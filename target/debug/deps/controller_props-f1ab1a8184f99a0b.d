/root/repo/target/debug/deps/controller_props-f1ab1a8184f99a0b.d: crates/core/tests/controller_props.rs

/root/repo/target/debug/deps/controller_props-f1ab1a8184f99a0b: crates/core/tests/controller_props.rs

crates/core/tests/controller_props.rs:
