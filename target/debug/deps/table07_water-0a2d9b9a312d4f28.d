/root/repo/target/debug/deps/table07_water-0a2d9b9a312d4f28.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/debug/deps/libtable07_water-0a2d9b9a312d4f28.rmeta: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
