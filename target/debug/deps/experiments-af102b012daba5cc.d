/root/repo/target/debug/deps/experiments-af102b012daba5cc.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-af102b012daba5cc: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
