/root/repo/target/debug/deps/table02_barnes_hut-5e12af099c4abdbb.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/debug/deps/table02_barnes_hut-5e12af099c4abdbb: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
