/root/repo/target/debug/deps/dynfb-d56bb57cab075628.d: src/lib.rs

/root/repo/target/debug/deps/dynfb-d56bb57cab075628: src/lib.rs

src/lib.rs:
