/root/repo/target/debug/deps/chaos-3cc7078996422b40.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/libchaos-3cc7078996422b40.rmeta: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
