/root/repo/target/debug/deps/table06_bh_interval_sweep-f857fedd2dd5c6ed.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/debug/deps/libtable06_bh_interval_sweep-f857fedd2dd5c6ed.rmeta: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
