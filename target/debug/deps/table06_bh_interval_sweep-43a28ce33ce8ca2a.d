/root/repo/target/debug/deps/table06_bh_interval_sweep-43a28ce33ce8ca2a.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/debug/deps/libtable06_bh_interval_sweep-43a28ce33ce8ca2a.rmeta: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
