/root/repo/target/debug/deps/fig07_water_waiting-c6dd4c1240d9d6ca.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/debug/deps/fig07_water_waiting-c6dd4c1240d9d6ca: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
