/root/repo/target/debug/deps/instrumentation-ce680a81cbafc52f.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/debug/deps/libinstrumentation-ce680a81cbafc52f.rmeta: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
