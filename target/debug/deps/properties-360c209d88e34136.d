/root/repo/target/debug/deps/properties-360c209d88e34136.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/libproperties-360c209d88e34136.rmeta: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
