/root/repo/target/debug/deps/table01_code_sizes-43cbe6f20b62393d.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/debug/deps/table01_code_sizes-43cbe6f20b62393d: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
