/root/repo/target/debug/deps/theory_props-87a698e0b8869321.d: tests/theory_props.rs

/root/repo/target/debug/deps/libtheory_props-87a698e0b8869321.rmeta: tests/theory_props.rs

tests/theory_props.rs:
