/root/repo/target/debug/deps/table15_string-15ea90c74e3efa44.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/debug/deps/libtable15_string-15ea90c74e3efa44.rmeta: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
