/root/repo/target/debug/deps/instrumentation-49671eaf9daeb75f.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/debug/deps/instrumentation-49671eaf9daeb75f: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
