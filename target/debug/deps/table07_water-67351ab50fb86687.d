/root/repo/target/debug/deps/table07_water-67351ab50fb86687.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/debug/deps/table07_water-67351ab50fb86687: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
