/root/repo/target/debug/deps/chaos-90dea816d07e2e0a.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/libchaos-90dea816d07e2e0a.rmeta: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
