/root/repo/target/debug/deps/dynfb_sim-dafb1ac7c74353aa.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdynfb_sim-dafb1ac7c74353aa.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/faults.rs:
crates/sim/src/machine.rs:
crates/sim/src/process.rs:
crates/sim/src/runtime.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
