/root/repo/target/debug/deps/fig07_water_waiting-5d14823ea80c666f.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/debug/deps/libfig07_water_waiting-5d14823ea80c666f.rmeta: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
