/root/repo/target/debug/deps/fig08_09_water_series-6aea341e8caf5dab.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/debug/deps/fig08_09_water_series-6aea341e8caf5dab: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
