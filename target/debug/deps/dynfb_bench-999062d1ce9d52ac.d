/root/repo/target/debug/deps/dynfb_bench-999062d1ce9d52ac.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/dynfb_bench-999062d1ce9d52ac: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
