/root/repo/target/debug/deps/fig07_water_waiting-d3df30556c8baf12.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/debug/deps/fig07_water_waiting-d3df30556c8baf12: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
