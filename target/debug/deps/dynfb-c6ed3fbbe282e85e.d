/root/repo/target/debug/deps/dynfb-c6ed3fbbe282e85e.d: src/lib.rs

/root/repo/target/debug/deps/libdynfb-c6ed3fbbe282e85e.rmeta: src/lib.rs

src/lib.rs:
