/root/repo/target/debug/deps/fig03_feasible_region-5f1c2419d5dd3015.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/debug/deps/fig03_feasible_region-5f1c2419d5dd3015: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
