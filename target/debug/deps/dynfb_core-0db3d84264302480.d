/root/repo/target/debug/deps/dynfb_core-0db3d84264302480.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/dynfb_core-0db3d84264302480: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
