/root/repo/target/debug/deps/dynfb_core-a2d6f4477eace594.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdynfb_core-a2d6f4477eace594.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/overhead.rs crates/core/src/realtime.rs crates/core/src/rng.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/overhead.rs:
crates/core/src/realtime.rs:
crates/core/src/rng.rs:
crates/core/src/theory.rs:
