/root/repo/target/debug/deps/dynfb_lang-d849e4fdbb1c080d.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdynfb_lang-d849e4fdbb1c080d.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/hir.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/sema.rs:
crates/lang/src/token.rs:
