/root/repo/target/debug/deps/table09_12_water_stats-327814745be2ba20.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/debug/deps/table09_12_water_stats-327814745be2ba20: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
