/root/repo/target/debug/deps/pipeline-75464afad165f728.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-75464afad165f728: tests/pipeline.rs

tests/pipeline.rs:
