/root/repo/target/debug/deps/fig03_feasible_region-a14e4c81ee3d3d30.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/debug/deps/libfig03_feasible_region-a14e4c81ee3d3d30.rmeta: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
