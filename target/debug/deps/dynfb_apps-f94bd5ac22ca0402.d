/root/repo/target/debug/deps/dynfb_apps-f94bd5ac22ca0402.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

/root/repo/target/debug/deps/libdynfb_apps-f94bd5ac22ca0402.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/host.rs:
crates/apps/src/string_app.rs:
crates/apps/src/water.rs:
crates/apps/src/../programs/barnes_hut.ol:
crates/apps/src/../programs/string_app.ol:
crates/apps/src/../programs/water.ol:
