/root/repo/target/debug/deps/table04_bh_forces_stats-d30f95c988772bae.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/debug/deps/table04_bh_forces_stats-d30f95c988772bae: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
