/root/repo/target/debug/deps/fig08_09_water_series-0dcff148afc2bee1.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/debug/deps/libfig08_09_water_series-0dcff148afc2bee1.rmeta: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
