/root/repo/target/debug/deps/chaos-074633060a9c31c8.d: crates/bench/tests/chaos.rs

/root/repo/target/debug/deps/libchaos-074633060a9c31c8.rmeta: crates/bench/tests/chaos.rs

crates/bench/tests/chaos.rs:
