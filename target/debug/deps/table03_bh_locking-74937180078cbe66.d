/root/repo/target/debug/deps/table03_bh_locking-74937180078cbe66.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/debug/deps/libtable03_bh_locking-74937180078cbe66.rmeta: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
