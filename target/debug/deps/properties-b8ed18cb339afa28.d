/root/repo/target/debug/deps/properties-b8ed18cb339afa28.d: crates/lang/tests/properties.rs

/root/repo/target/debug/deps/properties-b8ed18cb339afa28: crates/lang/tests/properties.rs

crates/lang/tests/properties.rs:
