/root/repo/target/debug/deps/table06_bh_interval_sweep-7ee5b3832fb14c6a.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/debug/deps/table06_bh_interval_sweep-7ee5b3832fb14c6a: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
