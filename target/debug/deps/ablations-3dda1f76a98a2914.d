/root/repo/target/debug/deps/ablations-3dda1f76a98a2914.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-3dda1f76a98a2914.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
