/root/repo/target/debug/deps/experiments-0b41e490a68862d5.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-0b41e490a68862d5.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
