/root/repo/target/debug/deps/end_to_end-253a09b5dec76aab.d: crates/compiler/tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-253a09b5dec76aab.rmeta: crates/compiler/tests/end_to_end.rs

crates/compiler/tests/end_to_end.rs:
