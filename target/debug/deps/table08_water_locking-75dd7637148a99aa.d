/root/repo/target/debug/deps/table08_water_locking-75dd7637148a99aa.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/debug/deps/libtable08_water_locking-75dd7637148a99aa.rmeta: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
