/root/repo/target/debug/deps/dynfb_compiler-51325dbdb7b1b797.d: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

/root/repo/target/debug/deps/libdynfb_compiler-51325dbdb7b1b797.rmeta: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

crates/compiler/src/lib.rs:
crates/compiler/src/artifact.rs:
crates/compiler/src/callgraph.rs:
crates/compiler/src/commutativity.rs:
crates/compiler/src/effects.rs:
crates/compiler/src/interp.rs:
crates/compiler/src/lockplace.rs:
crates/compiler/src/symbolic.rs:
crates/compiler/src/syncopt.rs:
