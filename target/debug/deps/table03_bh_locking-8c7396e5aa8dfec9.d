/root/repo/target/debug/deps/table03_bh_locking-8c7396e5aa8dfec9.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/debug/deps/table03_bh_locking-8c7396e5aa8dfec9: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
