/root/repo/target/debug/deps/dynfb_lang-e6ddb0be2be6e549.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdynfb_lang-e6ddb0be2be6e549.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdynfb_lang-e6ddb0be2be6e549.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/hir.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/sema.rs:
crates/lang/src/token.rs:
