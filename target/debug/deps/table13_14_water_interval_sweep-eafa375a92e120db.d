/root/repo/target/debug/deps/table13_14_water_interval_sweep-eafa375a92e120db.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/debug/deps/libtable13_14_water_interval_sweep-eafa375a92e120db.rmeta: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
