/root/repo/target/debug/deps/fig05_bh_overhead_series-e500fba190a55fb5.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/debug/deps/fig05_bh_overhead_series-e500fba190a55fb5: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
