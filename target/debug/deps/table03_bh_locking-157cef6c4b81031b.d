/root/repo/target/debug/deps/table03_bh_locking-157cef6c4b81031b.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/debug/deps/table03_bh_locking-157cef6c4b81031b: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
