/root/repo/target/debug/deps/table07_water-be17cdc7e9620748.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/debug/deps/libtable07_water-be17cdc7e9620748.rmeta: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
