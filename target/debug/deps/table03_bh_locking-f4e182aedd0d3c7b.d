/root/repo/target/debug/deps/table03_bh_locking-f4e182aedd0d3c7b.d: crates/bench/src/bin/table03_bh_locking.rs

/root/repo/target/debug/deps/libtable03_bh_locking-f4e182aedd0d3c7b.rmeta: crates/bench/src/bin/table03_bh_locking.rs

crates/bench/src/bin/table03_bh_locking.rs:
