/root/repo/target/debug/deps/fig08_09_water_series-206f5a77b86fd65c.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/debug/deps/fig08_09_water_series-206f5a77b86fd65c: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
