/root/repo/target/debug/deps/dynfb_lang-dd1706a76f57837f.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/libdynfb_lang-dd1706a76f57837f.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/error.rs crates/lang/src/hir.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/sema.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/error.rs:
crates/lang/src/hir.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/sema.rs:
crates/lang/src/token.rs:
