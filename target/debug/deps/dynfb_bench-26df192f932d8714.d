/root/repo/target/debug/deps/dynfb_bench-26df192f932d8714.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdynfb_bench-26df192f932d8714.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
