/root/repo/target/debug/deps/table05_bh_effective_intervals-caca288de116fa16.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/debug/deps/libtable05_bh_effective_intervals-caca288de116fa16.rmeta: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
