/root/repo/target/debug/deps/dynfb_compiler-acbb7e554d051e76.d: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

/root/repo/target/debug/deps/libdynfb_compiler-acbb7e554d051e76.rmeta: crates/compiler/src/lib.rs crates/compiler/src/artifact.rs crates/compiler/src/callgraph.rs crates/compiler/src/commutativity.rs crates/compiler/src/effects.rs crates/compiler/src/interp.rs crates/compiler/src/lockplace.rs crates/compiler/src/symbolic.rs crates/compiler/src/syncopt.rs

crates/compiler/src/lib.rs:
crates/compiler/src/artifact.rs:
crates/compiler/src/callgraph.rs:
crates/compiler/src/commutativity.rs:
crates/compiler/src/effects.rs:
crates/compiler/src/interp.rs:
crates/compiler/src/lockplace.rs:
crates/compiler/src/symbolic.rs:
crates/compiler/src/syncopt.rs:
