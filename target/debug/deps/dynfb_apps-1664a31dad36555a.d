/root/repo/target/debug/deps/dynfb_apps-1664a31dad36555a.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

/root/repo/target/debug/deps/libdynfb_apps-1664a31dad36555a.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/host.rs:
crates/apps/src/string_app.rs:
crates/apps/src/water.rs:
crates/apps/src/../programs/barnes_hut.ol:
crates/apps/src/../programs/string_app.ol:
crates/apps/src/../programs/water.ol:
