/root/repo/target/debug/deps/spanning-e210ed925987326e.d: crates/apps/tests/spanning.rs

/root/repo/target/debug/deps/libspanning-e210ed925987326e.rmeta: crates/apps/tests/spanning.rs

crates/apps/tests/spanning.rs:
