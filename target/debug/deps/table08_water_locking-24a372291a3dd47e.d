/root/repo/target/debug/deps/table08_water_locking-24a372291a3dd47e.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/debug/deps/libtable08_water_locking-24a372291a3dd47e.rmeta: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
