/root/repo/target/debug/deps/fig03_feasible_region-a3f68316437ab22f.d: crates/bench/src/bin/fig03_feasible_region.rs

/root/repo/target/debug/deps/libfig03_feasible_region-a3f68316437ab22f.rmeta: crates/bench/src/bin/fig03_feasible_region.rs

crates/bench/src/bin/fig03_feasible_region.rs:
