/root/repo/target/debug/deps/determinism-85fb972ae0b68ca1.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-85fb972ae0b68ca1: tests/determinism.rs

tests/determinism.rs:
