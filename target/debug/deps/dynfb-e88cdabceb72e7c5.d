/root/repo/target/debug/deps/dynfb-e88cdabceb72e7c5.d: src/lib.rs

/root/repo/target/debug/deps/libdynfb-e88cdabceb72e7c5.rlib: src/lib.rs

/root/repo/target/debug/deps/libdynfb-e88cdabceb72e7c5.rmeta: src/lib.rs

src/lib.rs:
