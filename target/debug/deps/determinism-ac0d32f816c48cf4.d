/root/repo/target/debug/deps/determinism-ac0d32f816c48cf4.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-ac0d32f816c48cf4.rmeta: tests/determinism.rs

tests/determinism.rs:
