/root/repo/target/debug/deps/table08_water_locking-54324df9cf151370.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/debug/deps/table08_water_locking-54324df9cf151370: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
