/root/repo/target/debug/deps/table07_water-dc01fc8c5566f532.d: crates/bench/src/bin/table07_water.rs

/root/repo/target/debug/deps/table07_water-dc01fc8c5566f532: crates/bench/src/bin/table07_water.rs

crates/bench/src/bin/table07_water.rs:
