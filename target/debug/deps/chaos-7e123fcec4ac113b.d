/root/repo/target/debug/deps/chaos-7e123fcec4ac113b.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-7e123fcec4ac113b: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
