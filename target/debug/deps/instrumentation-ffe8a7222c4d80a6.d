/root/repo/target/debug/deps/instrumentation-ffe8a7222c4d80a6.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/debug/deps/instrumentation-ffe8a7222c4d80a6: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
