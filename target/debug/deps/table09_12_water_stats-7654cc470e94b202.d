/root/repo/target/debug/deps/table09_12_water_stats-7654cc470e94b202.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/debug/deps/libtable09_12_water_stats-7654cc470e94b202.rmeta: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
