/root/repo/target/debug/deps/dynfb_sim-85cfd474290ddbe8.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/dynfb_sim-85cfd474290ddbe8: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/faults.rs:
crates/sim/src/machine.rs:
crates/sim/src/process.rs:
crates/sim/src/runtime.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
