/root/repo/target/debug/deps/table15_string-3a2f14694f6aa8b3.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/debug/deps/table15_string-3a2f14694f6aa8b3: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
