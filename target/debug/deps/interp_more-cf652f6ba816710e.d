/root/repo/target/debug/deps/interp_more-cf652f6ba816710e.d: crates/compiler/tests/interp_more.rs

/root/repo/target/debug/deps/interp_more-cf652f6ba816710e: crates/compiler/tests/interp_more.rs

crates/compiler/tests/interp_more.rs:
