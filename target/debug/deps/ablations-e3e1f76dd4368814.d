/root/repo/target/debug/deps/ablations-e3e1f76dd4368814.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-e3e1f76dd4368814: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
