/root/repo/target/debug/deps/properties-bf5d00513c617e08.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-bf5d00513c617e08: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
