/root/repo/target/debug/deps/end_to_end-51fee7b879495082.d: crates/compiler/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-51fee7b879495082: crates/compiler/tests/end_to_end.rs

crates/compiler/tests/end_to_end.rs:
