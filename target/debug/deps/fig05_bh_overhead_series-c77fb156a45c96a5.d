/root/repo/target/debug/deps/fig05_bh_overhead_series-c77fb156a45c96a5.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/debug/deps/libfig05_bh_overhead_series-c77fb156a45c96a5.rmeta: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
