/root/repo/target/debug/deps/controller_props-15c5382a903d1a2f.d: crates/core/tests/controller_props.rs

/root/repo/target/debug/deps/libcontroller_props-15c5382a903d1a2f.rmeta: crates/core/tests/controller_props.rs

crates/core/tests/controller_props.rs:
