/root/repo/target/debug/deps/table02_barnes_hut-004a40f3a5662fb2.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/debug/deps/libtable02_barnes_hut-004a40f3a5662fb2.rmeta: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
