/root/repo/target/debug/deps/table08_water_locking-914d7650ad248314.d: crates/bench/src/bin/table08_water_locking.rs

/root/repo/target/debug/deps/table08_water_locking-914d7650ad248314: crates/bench/src/bin/table08_water_locking.rs

crates/bench/src/bin/table08_water_locking.rs:
