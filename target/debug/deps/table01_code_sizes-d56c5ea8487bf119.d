/root/repo/target/debug/deps/table01_code_sizes-d56c5ea8487bf119.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/debug/deps/table01_code_sizes-d56c5ea8487bf119: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
