/root/repo/target/debug/deps/properties-c374b1d2798c3705.d: crates/compiler/tests/properties.rs

/root/repo/target/debug/deps/libproperties-c374b1d2798c3705.rmeta: crates/compiler/tests/properties.rs

crates/compiler/tests/properties.rs:
