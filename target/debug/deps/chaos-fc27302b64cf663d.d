/root/repo/target/debug/deps/chaos-fc27302b64cf663d.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-fc27302b64cf663d: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
