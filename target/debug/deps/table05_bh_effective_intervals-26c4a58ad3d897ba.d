/root/repo/target/debug/deps/table05_bh_effective_intervals-26c4a58ad3d897ba.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/debug/deps/table05_bh_effective_intervals-26c4a58ad3d897ba: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
