/root/repo/target/debug/deps/table15_string-9d2079136221696a.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/debug/deps/table15_string-9d2079136221696a: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
