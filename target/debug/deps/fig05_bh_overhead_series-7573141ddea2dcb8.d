/root/repo/target/debug/deps/fig05_bh_overhead_series-7573141ddea2dcb8.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/debug/deps/fig05_bh_overhead_series-7573141ddea2dcb8: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
