/root/repo/target/debug/deps/instrumentation-b11ce092dd561b9e.d: crates/bench/src/bin/instrumentation.rs

/root/repo/target/debug/deps/libinstrumentation-b11ce092dd561b9e.rmeta: crates/bench/src/bin/instrumentation.rs

crates/bench/src/bin/instrumentation.rs:
