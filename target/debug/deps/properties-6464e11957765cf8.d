/root/repo/target/debug/deps/properties-6464e11957765cf8.d: crates/lang/tests/properties.rs

/root/repo/target/debug/deps/libproperties-6464e11957765cf8.rmeta: crates/lang/tests/properties.rs

crates/lang/tests/properties.rs:
