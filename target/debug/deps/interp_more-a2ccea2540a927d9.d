/root/repo/target/debug/deps/interp_more-a2ccea2540a927d9.d: crates/compiler/tests/interp_more.rs

/root/repo/target/debug/deps/libinterp_more-a2ccea2540a927d9.rmeta: crates/compiler/tests/interp_more.rs

crates/compiler/tests/interp_more.rs:
