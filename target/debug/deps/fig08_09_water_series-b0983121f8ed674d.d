/root/repo/target/debug/deps/fig08_09_water_series-b0983121f8ed674d.d: crates/bench/src/bin/fig08_09_water_series.rs

/root/repo/target/debug/deps/libfig08_09_water_series-b0983121f8ed674d.rmeta: crates/bench/src/bin/fig08_09_water_series.rs

crates/bench/src/bin/fig08_09_water_series.rs:
