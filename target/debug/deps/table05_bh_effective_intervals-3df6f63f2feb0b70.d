/root/repo/target/debug/deps/table05_bh_effective_intervals-3df6f63f2feb0b70.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/debug/deps/table05_bh_effective_intervals-3df6f63f2feb0b70: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
