/root/repo/target/debug/deps/spanning-ff3da6ba4045195a.d: crates/apps/tests/spanning.rs

/root/repo/target/debug/deps/spanning-ff3da6ba4045195a: crates/apps/tests/spanning.rs

crates/apps/tests/spanning.rs:
