/root/repo/target/debug/deps/dynfb_sim-d6b4da4fe0b6e14e.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdynfb_sim-d6b4da4fe0b6e14e.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/faults.rs:
crates/sim/src/machine.rs:
crates/sim/src/process.rs:
crates/sim/src/runtime.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
