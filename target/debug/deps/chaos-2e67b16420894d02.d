/root/repo/target/debug/deps/chaos-2e67b16420894d02.d: crates/bench/tests/chaos.rs

/root/repo/target/debug/deps/chaos-2e67b16420894d02: crates/bench/tests/chaos.rs

crates/bench/tests/chaos.rs:
