/root/repo/target/debug/deps/experiments-d525556944099f12.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-d525556944099f12: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
