/root/repo/target/debug/deps/table15_string-1024bd695f843fd7.d: crates/bench/src/bin/table15_string.rs

/root/repo/target/debug/deps/libtable15_string-1024bd695f843fd7.rmeta: crates/bench/src/bin/table15_string.rs

crates/bench/src/bin/table15_string.rs:
