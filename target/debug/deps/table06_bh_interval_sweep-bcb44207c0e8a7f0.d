/root/repo/target/debug/deps/table06_bh_interval_sweep-bcb44207c0e8a7f0.d: crates/bench/src/bin/table06_bh_interval_sweep.rs

/root/repo/target/debug/deps/table06_bh_interval_sweep-bcb44207c0e8a7f0: crates/bench/src/bin/table06_bh_interval_sweep.rs

crates/bench/src/bin/table06_bh_interval_sweep.rs:
