/root/repo/target/debug/deps/table01_code_sizes-6d724df7eafe4843.d: crates/bench/src/bin/table01_code_sizes.rs

/root/repo/target/debug/deps/libtable01_code_sizes-6d724df7eafe4843.rmeta: crates/bench/src/bin/table01_code_sizes.rs

crates/bench/src/bin/table01_code_sizes.rs:
