/root/repo/target/debug/deps/fig05_bh_overhead_series-c61f9c7b304e8805.d: crates/bench/src/bin/fig05_bh_overhead_series.rs

/root/repo/target/debug/deps/libfig05_bh_overhead_series-c61f9c7b304e8805.rmeta: crates/bench/src/bin/fig05_bh_overhead_series.rs

crates/bench/src/bin/fig05_bh_overhead_series.rs:
