/root/repo/target/debug/deps/table09_12_water_stats-b8e299493755d243.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/debug/deps/table09_12_water_stats-b8e299493755d243: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
