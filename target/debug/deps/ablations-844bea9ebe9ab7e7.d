/root/repo/target/debug/deps/ablations-844bea9ebe9ab7e7.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-844bea9ebe9ab7e7.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
