/root/repo/target/debug/deps/table04_bh_forces_stats-36e3e584c1564b1a.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/debug/deps/table04_bh_forces_stats-36e3e584c1564b1a: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
