/root/repo/target/debug/deps/table02_barnes_hut-f65c08db839df659.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/debug/deps/libtable02_barnes_hut-f65c08db839df659.rmeta: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
