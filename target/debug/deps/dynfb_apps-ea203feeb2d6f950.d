/root/repo/target/debug/deps/dynfb_apps-ea203feeb2d6f950.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

/root/repo/target/debug/deps/libdynfb_apps-ea203feeb2d6f950.rlib: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

/root/repo/target/debug/deps/libdynfb_apps-ea203feeb2d6f950.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/host.rs crates/apps/src/string_app.rs crates/apps/src/water.rs crates/apps/src/../programs/barnes_hut.ol crates/apps/src/../programs/string_app.ol crates/apps/src/../programs/water.ol

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/host.rs:
crates/apps/src/string_app.rs:
crates/apps/src/water.rs:
crates/apps/src/../programs/barnes_hut.ol:
crates/apps/src/../programs/string_app.ol:
crates/apps/src/../programs/water.ol:
