/root/repo/target/debug/deps/table09_12_water_stats-64afa69ba3cc40fb.d: crates/bench/src/bin/table09_12_water_stats.rs

/root/repo/target/debug/deps/libtable09_12_water_stats-64afa69ba3cc40fb.rmeta: crates/bench/src/bin/table09_12_water_stats.rs

crates/bench/src/bin/table09_12_water_stats.rs:
