/root/repo/target/debug/deps/pipeline-044ccc54e2b8f904.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-044ccc54e2b8f904.rmeta: tests/pipeline.rs

tests/pipeline.rs:
