/root/repo/target/debug/deps/dynfb_bench-9b0c6b179d6f6b3d.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdynfb_bench-9b0c6b179d6f6b3d.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdynfb_bench-9b0c6b179d6f6b3d.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
