/root/repo/target/debug/deps/experiments-da05464cc3ff30d1.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-da05464cc3ff30d1.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
