/root/repo/target/debug/deps/micro-7d9002188225f0b1.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-7d9002188225f0b1.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
