/root/repo/target/debug/deps/dynfb_sim-2bb932d49950e53d.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdynfb_sim-2bb932d49950e53d.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdynfb_sim-2bb932d49950e53d.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/faults.rs crates/sim/src/machine.rs crates/sim/src/process.rs crates/sim/src/runtime.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/faults.rs:
crates/sim/src/machine.rs:
crates/sim/src/process.rs:
crates/sim/src/runtime.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
