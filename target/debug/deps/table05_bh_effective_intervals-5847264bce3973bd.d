/root/repo/target/debug/deps/table05_bh_effective_intervals-5847264bce3973bd.d: crates/bench/src/bin/table05_bh_effective_intervals.rs

/root/repo/target/debug/deps/libtable05_bh_effective_intervals-5847264bce3973bd.rmeta: crates/bench/src/bin/table05_bh_effective_intervals.rs

crates/bench/src/bin/table05_bh_effective_intervals.rs:
