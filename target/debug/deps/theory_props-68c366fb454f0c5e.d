/root/repo/target/debug/deps/theory_props-68c366fb454f0c5e.d: tests/theory_props.rs

/root/repo/target/debug/deps/theory_props-68c366fb454f0c5e: tests/theory_props.rs

tests/theory_props.rs:
