/root/repo/target/debug/deps/table04_bh_forces_stats-fd52aa8c71944fce.d: crates/bench/src/bin/table04_bh_forces_stats.rs

/root/repo/target/debug/deps/libtable04_bh_forces_stats-fd52aa8c71944fce.rmeta: crates/bench/src/bin/table04_bh_forces_stats.rs

crates/bench/src/bin/table04_bh_forces_stats.rs:
