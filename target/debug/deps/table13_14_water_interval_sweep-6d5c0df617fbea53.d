/root/repo/target/debug/deps/table13_14_water_interval_sweep-6d5c0df617fbea53.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/debug/deps/table13_14_water_interval_sweep-6d5c0df617fbea53: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
