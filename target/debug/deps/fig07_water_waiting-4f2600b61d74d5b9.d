/root/repo/target/debug/deps/fig07_water_waiting-4f2600b61d74d5b9.d: crates/bench/src/bin/fig07_water_waiting.rs

/root/repo/target/debug/deps/libfig07_water_waiting-4f2600b61d74d5b9.rmeta: crates/bench/src/bin/fig07_water_waiting.rs

crates/bench/src/bin/fig07_water_waiting.rs:
