/root/repo/target/debug/deps/ablations-9b7e58cd73889969.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-9b7e58cd73889969: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
