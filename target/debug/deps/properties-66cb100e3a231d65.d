/root/repo/target/debug/deps/properties-66cb100e3a231d65.d: crates/compiler/tests/properties.rs

/root/repo/target/debug/deps/properties-66cb100e3a231d65: crates/compiler/tests/properties.rs

crates/compiler/tests/properties.rs:
