/root/repo/target/debug/deps/table02_barnes_hut-309d83df506e49a2.d: crates/bench/src/bin/table02_barnes_hut.rs

/root/repo/target/debug/deps/table02_barnes_hut-309d83df506e49a2: crates/bench/src/bin/table02_barnes_hut.rs

crates/bench/src/bin/table02_barnes_hut.rs:
