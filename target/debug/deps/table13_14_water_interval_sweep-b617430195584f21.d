/root/repo/target/debug/deps/table13_14_water_interval_sweep-b617430195584f21.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/debug/deps/table13_14_water_interval_sweep-b617430195584f21: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
