/root/repo/target/debug/deps/table13_14_water_interval_sweep-94f17f1234d15527.d: crates/bench/src/bin/table13_14_water_interval_sweep.rs

/root/repo/target/debug/deps/libtable13_14_water_interval_sweep-94f17f1234d15527.rmeta: crates/bench/src/bin/table13_14_water_interval_sweep.rs

crates/bench/src/bin/table13_14_water_interval_sweep.rs:
