/root/repo/target/debug/examples/compiled_pipeline-3d7b9424a05b3c59.d: examples/compiled_pipeline.rs

/root/repo/target/debug/examples/libcompiled_pipeline-3d7b9424a05b3c59.rmeta: examples/compiled_pipeline.rs

examples/compiled_pipeline.rs:
