/root/repo/target/debug/examples/drifting_env-a12fc6244eae3fe1.d: examples/drifting_env.rs

/root/repo/target/debug/examples/libdrifting_env-a12fc6244eae3fe1.rmeta: examples/drifting_env.rs

examples/drifting_env.rs:
