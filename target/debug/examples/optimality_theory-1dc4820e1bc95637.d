/root/repo/target/debug/examples/optimality_theory-1dc4820e1bc95637.d: examples/optimality_theory.rs

/root/repo/target/debug/examples/optimality_theory-1dc4820e1bc95637: examples/optimality_theory.rs

examples/optimality_theory.rs:
