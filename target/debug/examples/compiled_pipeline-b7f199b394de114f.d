/root/repo/target/debug/examples/compiled_pipeline-b7f199b394de114f.d: examples/compiled_pipeline.rs

/root/repo/target/debug/examples/compiled_pipeline-b7f199b394de114f: examples/compiled_pipeline.rs

examples/compiled_pipeline.rs:
