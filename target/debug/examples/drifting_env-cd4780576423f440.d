/root/repo/target/debug/examples/drifting_env-cd4780576423f440.d: examples/drifting_env.rs

/root/repo/target/debug/examples/drifting_env-cd4780576423f440: examples/drifting_env.rs

examples/drifting_env.rs:
