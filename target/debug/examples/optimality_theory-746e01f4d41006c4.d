/root/repo/target/debug/examples/optimality_theory-746e01f4d41006c4.d: examples/optimality_theory.rs

/root/repo/target/debug/examples/liboptimality_theory-746e01f4d41006c4.rmeta: examples/optimality_theory.rs

examples/optimality_theory.rs:
