/root/repo/target/debug/examples/quickstart-693df4ddb7210cc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-693df4ddb7210cc0: examples/quickstart.rs

examples/quickstart.rs:
