/root/repo/target/debug/examples/quickstart-1c60f1e699c61365.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-1c60f1e699c61365.rmeta: examples/quickstart.rs

examples/quickstart.rs:
