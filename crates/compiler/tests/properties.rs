//! Property-based tests for the symbolic engine behind the commutativity
//! analysis, and structural invariants of the synchronization
//! optimization policies.
//!
//! Expressions are generated with the repository's own deterministic PRNG
//! (`dynfb_core::rng::SplitMix64`), so every failure reproduces from the
//! fixed seeds below.

use dynfb_compiler::symbolic::{Bits, Sym};
use dynfb_core::rng::SplitMix64;

const CASES: u64 = 128;

/// A random symbolic leaf over a few parameters and Init slots. With
/// `floats`, float constants are included; without, the algebra stays exact.
fn gen_leaf(g: &mut SplitMix64, floats: bool) -> Sym {
    match g.gen_index(if floats { 4 } else { 3 }) {
        0 => Sym::Int(g.gen_range_i64(-8, 8)),
        1 => Sym::Param { inst: 0, slot: g.gen_index(4) },
        2 => Sym::Init(g.gen_index(3)),
        _ => Sym::Double(Bits::from_f64(g.gen_f64(-2.0, 2.0))),
    }
}

/// A random symbolic expression of bounded depth (mirrors the recursive
/// strategy the analysis is exercised with: Add/Mul/Opaque over leaves).
fn gen_sym(g: &mut SplitMix64, depth: usize, floats: bool) -> Sym {
    if depth == 0 || g.chance(0.3) {
        return gen_leaf(g, floats);
    }
    let arity = g.gen_index(2) + 2;
    let args: Vec<Sym> = (0..arity).map(|_| gen_sym(g, depth - 1, floats)).collect();
    match g.gen_index(3) {
        0 => Sym::Add(args),
        1 => Sym::Mul(args),
        _ => Sym::Opaque { tag: "f".to_string(), args: args.into_iter().take(2).collect() },
    }
}

fn int_sym(g: &mut SplitMix64) -> Sym {
    gen_sym(g, 3, false)
}

fn any_sym(g: &mut SplitMix64) -> Sym {
    gen_sym(g, 3, true)
}

/// Normalization is idempotent.
#[test]
fn normalization_is_idempotent() {
    let mut g = SplitMix64::new(0xC0_3001);
    for _ in 0..CASES {
        let e = any_sym(&mut g);
        let once = e.clone().normalized();
        let twice = once.clone().normalized();
        assert_eq!(once, twice);
    }
}

/// Addition and multiplication are commutative and associative after
/// normalization: any permutation/regrouping of operands yields the same
/// normal form. (Exact integer algebra — float constant folding is
/// grouping-dependent by an ulp, which the analysis treats conservatively.)
#[test]
fn ac_rewriting_is_canonical() {
    let mut g = SplitMix64::new(0xC0_3002);
    for _ in 0..CASES {
        let a = int_sym(&mut g);
        let b = int_sym(&mut g);
        let c = int_sym(&mut g);
        let left = Sym::add(a.clone(), Sym::add(b.clone(), c.clone()));
        let right = Sym::add(Sym::add(c.clone(), a.clone()), b.clone());
        assert_eq!(left, right);
        let left = Sym::mul(a.clone(), Sym::mul(b.clone(), c.clone()));
        let right = Sym::mul(Sym::mul(c, a), b);
        assert_eq!(left, right);
    }
}

/// Substituting a state into `Init`s commutes with normalization.
/// (Stated over exact integer algebra: float constant folding is
/// order-dependent, which is precisely why the commutativity checker
/// compares exact normal forms and stays conservative about floats.)
#[test]
fn substitution_preserves_normal_forms() {
    let mut g = SplitMix64::new(0xC0_3003);
    for _ in 0..CASES {
        let e = int_sym(&mut g);
        let state = [
            int_sym(&mut g).normalized(),
            int_sym(&mut g).normalized(),
            int_sym(&mut g).normalized(),
        ];
        let sub_then_norm = e.clone().substitute_init(&state).normalized();
        let norm_then_sub = e.normalized().substitute_init(&state).normalized();
        assert_eq!(sub_then_norm, norm_then_sub);
    }
}

/// Identity elements vanish; annihilators win.
#[test]
fn identities_and_annihilators() {
    let mut g = SplitMix64::new(0xC0_3004);
    for _ in 0..CASES {
        let e = any_sym(&mut g);
        let en = e.clone().normalized();
        assert_eq!(Sym::add(e.clone(), Sym::Int(0)), en.clone());
        assert_eq!(Sym::mul(e.clone(), Sym::Int(1)), en);
        assert_eq!(Sym::mul(e, Sym::Int(0)), Sym::Int(0));
    }
}

/// `mentions_init` is exact with respect to substitution: substituting an
/// unmentioned slot changes nothing.
#[test]
fn unmentioned_init_substitution_is_noop() {
    let mut g = SplitMix64::new(0xC0_3005);
    for _ in 0..CASES {
        let e = any_sym(&mut g);
        let en = e.clone().normalized();
        if !en.mentions_init(2) {
            // Substitute only slot 2; slots 0/1 map to themselves.
            let state = [Sym::Init(0), Sym::Init(1), Sym::Param { inst: 7, slot: 9 }];
            assert_eq!(en.clone().substitute_init(&state), en);
        }
    }
}

mod policy_structure {
    use dynfb_compiler::lockplace::insert_default_regions;
    use dynfb_compiler::syncopt::{count_regions, optimize, FnSet, Policy};
    use dynfb_core::rng::SplitMix64;

    const CASES: u64 = 24;

    /// Generate a small update method body: a list of field updates and
    /// pure statements, in random order.
    fn source(updates: &[bool]) -> String {
        let mut body = String::new();
        for (i, is_update) in updates.iter().enumerate() {
            if *is_update {
                body.push_str(&format!("this.a += {i}.0;\n"));
            } else {
                body.push_str(&format!("double t{i} = f({i}.0);\n"));
            }
        }
        format!(
            "extern double f(double);
             class c {{ double a; double p;
                 void m(double v) {{ {body} }}
                 void driver(c[] xs, int n) {{
                     for (int i = 0; i < n; i++) {{ xs[i].m(1.0); }}
                 }}
             }}"
        )
    }

    /// A random update pattern with at least one real update.
    fn gen_updates(g: &mut SplitMix64) -> Vec<bool> {
        loop {
            let len = g.gen_index(7) + 1;
            let updates: Vec<bool> = (0..len).map(|_| g.chance(0.5)).collect();
            if updates.iter().any(|u| *u) {
                return updates;
            }
        }
    }

    /// Count regions in `driver` and everything reachable from it (the
    /// lift transformation legitimately leaves uncalled originals behind).
    fn reachable_regions(funcs: &[dynfb_lang::hir::Function], driver: usize) -> usize {
        let mut seen = vec![false; funcs.len()];
        let mut stack = vec![driver];
        let mut total = 0;
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            total += count_regions(&funcs[i].body);
            let mut calls = Vec::new();
            dynfb_compiler::callgraph::collect_calls_stmts(&funcs[i].body, &mut calls);
            stack.extend(calls.iter().map(|f| f.0).filter(|&f| f < funcs.len()));
        }
        total
    }

    fn regions_after(policy: Policy, updates: &[bool]) -> (usize, usize) {
        let hir = dynfb_lang::compile_source(&source(updates)).expect("valid");
        let driver = hir.method_named(hir.class_named("c").unwrap(), "driver").unwrap().0;
        let mut funcs = hir.functions.clone();
        for f in &mut funcs {
            insert_default_regions(f);
        }
        let before = reachable_regions(&funcs, driver);
        let mut set = FnSet::new(funcs);
        optimize(&mut set, policy, &[]);
        let after = reachable_regions(&set.functions, driver);
        (before, after)
    }

    /// The policies never *add* critical regions relative to the default
    /// placement, and more aggressive policies never keep more static
    /// regions than less aggressive ones (in straight-line bodies).
    #[test]
    fn policies_are_monotone_in_region_count() {
        let mut g = SplitMix64::new(0xC0_3006);
        for _ in 0..CASES {
            let updates = gen_updates(&mut g);
            let (before, orig) = regions_after(Policy::Original, &updates);
            let (_, bounded) = regions_after(Policy::Bounded, &updates);
            let (_, aggressive) = regions_after(Policy::Aggressive, &updates);
            assert_eq!(before, orig, "Original never transforms");
            assert!(bounded <= orig);
            assert!(aggressive <= bounded);
            assert!(aggressive >= 1, "sync cannot vanish entirely");
        }
    }

    /// Optimization is idempotent: re-running a policy on its own output
    /// changes nothing.
    #[test]
    fn optimization_is_idempotent() {
        let mut g = SplitMix64::new(0xC0_3007);
        for _ in 0..CASES {
            let updates = gen_updates(&mut g);
            let hir = dynfb_lang::compile_source(&source(&updates)).expect("valid");
            let mut funcs = hir.functions.clone();
            for f in &mut funcs {
                insert_default_regions(f);
            }
            let mut set = FnSet::new(funcs);
            optimize(&mut set, Policy::Aggressive, &[]);
            let once = set.clone();
            optimize(&mut set, Policy::Aggressive, &[]);
            assert_eq!(set, once);
        }
    }
}
