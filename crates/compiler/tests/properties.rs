//! Property-based tests for the symbolic engine behind the commutativity
//! analysis, and structural invariants of the synchronization
//! optimization policies.

use dynfb_compiler::symbolic::{Bits, Sym};
use proptest::prelude::*;

/// A random symbolic expression over a few parameters and Init slots,
/// without float constants (exact integer algebra).
fn int_sym_strategy() -> impl Strategy<Value = Sym> {
    let leaf = prop_oneof![
        (-8i64..8).prop_map(Sym::Int),
        (0usize..4).prop_map(|s| Sym::Param { inst: 0, slot: s }),
        (0usize..3).prop_map(Sym::Init),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Sym::Add),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Sym::Mul),
            proptest::collection::vec(inner, 1..3)
                .prop_map(|args| Sym::Opaque { tag: "f".to_string(), args }),
        ]
    })
}

/// A random symbolic expression over a few parameters and Init slots.
fn sym_strategy() -> impl Strategy<Value = Sym> {
    let leaf = prop_oneof![
        (-8i64..8).prop_map(Sym::Int),
        (0usize..4).prop_map(|s| Sym::Param { inst: 0, slot: s }),
        (0usize..3).prop_map(Sym::Init),
        (-2.0f64..2.0).prop_map(|v| Sym::Double(Bits::from_f64(v))),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Sym::Add),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Sym::Mul),
            proptest::collection::vec(inner, 1..3)
                .prop_map(|args| Sym::Opaque { tag: "f".to_string(), args }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization is idempotent.
    #[test]
    fn normalization_is_idempotent(e in sym_strategy()) {
        let once = e.clone().normalized();
        let twice = once.clone().normalized();
        prop_assert_eq!(once, twice);
    }

    /// Addition and multiplication are commutative and associative after
    /// normalization: any permutation/regrouping of operands yields the
    /// same normal form. (Exact integer algebra — float constant folding
    /// is grouping-dependent by an ulp, which the analysis treats
    /// conservatively.)
    #[test]
    fn ac_rewriting_is_canonical(
        a in int_sym_strategy(),
        b in int_sym_strategy(),
        c in int_sym_strategy(),
    ) {
        let left = Sym::add(a.clone(), Sym::add(b.clone(), c.clone()));
        let right = Sym::add(Sym::add(c.clone(), a.clone()), b.clone());
        prop_assert_eq!(left, right);
        let left = Sym::mul(a.clone(), Sym::mul(b.clone(), c.clone()));
        let right = Sym::mul(Sym::mul(c, a), b);
        prop_assert_eq!(left, right);
    }

    /// Substituting a state into `Init`s commutes with normalization.
    /// (Stated over exact integer algebra: float constant folding is
    /// order-dependent, which is precisely why the commutativity checker
    /// compares exact normal forms and stays conservative about floats.)
    #[test]
    fn substitution_preserves_normal_forms(
        e in int_sym_strategy(),
        s0 in int_sym_strategy(),
        s1 in int_sym_strategy(),
        s2 in int_sym_strategy(),
    ) {
        let state = [s0.normalized(), s1.normalized(), s2.normalized()];
        let sub_then_norm = e.clone().substitute_init(&state).normalized();
        let norm_then_sub = e.normalized().substitute_init(&state).normalized();
        prop_assert_eq!(sub_then_norm, norm_then_sub);
    }

    /// Identity elements vanish; annihilators win.
    #[test]
    fn identities_and_annihilators(e in sym_strategy()) {
        let en = e.clone().normalized();
        prop_assert_eq!(Sym::add(e.clone(), Sym::Int(0)), en.clone());
        prop_assert_eq!(Sym::mul(e.clone(), Sym::Int(1)), en);
        prop_assert_eq!(Sym::mul(e, Sym::Int(0)), Sym::Int(0));
    }

    /// `mentions_init` is exact with respect to substitution: substituting
    /// an unmentioned slot changes nothing.
    #[test]
    fn unmentioned_init_substitution_is_noop(e in sym_strategy()) {
        let en = e.clone().normalized();
        if !en.mentions_init(2) {
            // Substitute only slot 2; slots 0/1 map to themselves.
            let state = [Sym::Init(0), Sym::Init(1), Sym::Param { inst: 7, slot: 9 }];
            prop_assert_eq!(en.clone().substitute_init(&state), en);
        }
    }
}

mod policy_structure {
    use dynfb_compiler::lockplace::insert_default_regions;
    use dynfb_compiler::syncopt::{count_regions, optimize, FnSet, Policy};
    use proptest::prelude::*;

    /// Generate a small update method body: a list of field updates and
    /// pure statements, in random order.
    fn source(updates: &[bool]) -> String {
        let mut body = String::new();
        for (i, is_update) in updates.iter().enumerate() {
            if *is_update {
                body.push_str(&format!("this.a += {i}.0;\n"));
            } else {
                body.push_str(&format!("double t{i} = f({i}.0);\n"));
            }
        }
        format!(
            "extern double f(double);
             class c {{ double a; double p;
                 void m(double v) {{ {body} }}
                 void driver(c[] xs, int n) {{
                     for (int i = 0; i < n; i++) {{ xs[i].m(1.0); }}
                 }}
             }}"
        )
    }

    /// Count regions in `driver` and everything reachable from it (the
    /// lift transformation legitimately leaves uncalled originals behind).
    fn reachable_regions(funcs: &[dynfb_lang::hir::Function], driver: usize) -> usize {
        let mut seen = vec![false; funcs.len()];
        let mut stack = vec![driver];
        let mut total = 0;
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            total += count_regions(&funcs[i].body);
            let mut calls = Vec::new();
            dynfb_compiler::callgraph::collect_calls_stmts(&funcs[i].body, &mut calls);
            stack.extend(calls.iter().map(|f| f.0).filter(|&f| f < funcs.len()));
        }
        total
    }

    fn regions_after(policy: Policy, updates: &[bool]) -> (usize, usize) {
        let hir = dynfb_lang::compile_source(&source(updates)).expect("valid");
        let driver = hir
            .method_named(hir.class_named("c").unwrap(), "driver")
            .unwrap()
            .0;
        let mut funcs = hir.functions.clone();
        for f in &mut funcs {
            insert_default_regions(f);
        }
        let before = reachable_regions(&funcs, driver);
        let mut set = FnSet::new(funcs);
        optimize(&mut set, policy, &[]);
        let after = reachable_regions(&set.functions, driver);
        (before, after)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The policies never *add* critical regions relative to the
        /// default placement, and more aggressive policies never keep more
        /// static regions than less aggressive ones (in straight-line
        /// bodies).
        #[test]
        fn policies_are_monotone_in_region_count(
            updates in proptest::collection::vec(any::<bool>(), 1..8)
        ) {
            prop_assume!(updates.iter().any(|u| *u));
            let (before, orig) = regions_after(Policy::Original, &updates);
            let (_, bounded) = regions_after(Policy::Bounded, &updates);
            let (_, aggressive) = regions_after(Policy::Aggressive, &updates);
            prop_assert_eq!(before, orig, "Original never transforms");
            prop_assert!(bounded <= orig);
            prop_assert!(aggressive <= bounded);
            prop_assert!(aggressive >= 1, "sync cannot vanish entirely");
        }

        /// Optimization is idempotent: re-running a policy on its own
        /// output changes nothing.
        #[test]
        fn optimization_is_idempotent(
            updates in proptest::collection::vec(any::<bool>(), 1..8)
        ) {
            prop_assume!(updates.iter().any(|u| *u));
            let hir = dynfb_lang::compile_source(&source(&updates)).expect("valid");
            let mut funcs = hir.functions.clone();
            for f in &mut funcs {
                insert_default_regions(f);
            }
            let mut set = FnSet::new(funcs);
            optimize(&mut set, Policy::Aggressive, &[]);
            let once = set.clone();
            optimize(&mut set, Policy::Aggressive, &[]);
            prop_assert_eq!(set, once);
        }
    }
}
