//! Differential fuzz: the fused-closure native tier versus the bytecode
//! VM versus the tree-walking oracle.
//!
//! The native tier's block-local optimizer (copy/constant propagation,
//! dead-store elimination, charge folding) rewrites the register file
//! aggressively, so this suite checks the full determinism contract on
//! all three tiers at once:
//!
//! 1. **Function level** — seeded random programs (loops, conditionals,
//!    heap traffic, method and extern calls, occasional runtime errors)
//!    executed by every tier, with and without compiler-inserted critical
//!    regions. Return value, final heap, globals, error messages, and the
//!    exact `OpSink` step sequence must match.
//! 2. **Application level** — the end-to-end n-body app executed under
//!    seeded random `RunConfig`s (static/instrumented/dynamic/async modes,
//!    watchdogs, fault plans) once per tier. Machine statistics, section
//!    records, final heap, and globals must match.

use dynfb_compiler::artifact::{compile, CompileOptions, CompiledApp};
use dynfb_compiler::interp::{
    CostModel, Heap, HostRegistry, Interp, ProgramEnv, RuntimeError, Value,
};
use dynfb_compiler::lockplace::insert_default_regions;
use dynfb_compiler::native::{compile_native, NativeExec};
use dynfb_compiler::vm::{lower_functions, ExecTier, Vm};
use dynfb_core::controller::ControllerConfig;
use dynfb_core::rng::SplitMix64;
use dynfb_lang::hir::Function;
use dynfb_sim::{
    run_app_ref, ChaosProfile, FaultPlan, LockId, Machine, OpSink, PlanEntry, RunConfig, RunMode,
    Step,
};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Function-level fuzz
// ---------------------------------------------------------------------------

/// Shared scaffolding every generated program starts from: globals, a
/// lockable class with update methods, an extern, and a `test` driver with
/// a pool of pre-declared locals the random statements reference.
const PRELUDE: &str = "
    extern double mix2(double, double);
    int gi;
    double gd;
    class cell {
        int a;
        double b;
        void bump(int n) { this.a += n; gi = gi + 1; }
        void scale(double f) { this.b = this.b * f + 1.0; gd += f; }
        int get() { return this.a; }
    }
    int test(int n) {
        int acc = n;
        int j = 0;
        double x = 1.5;
        cell c = new cell();
        cell nullc = null;
        cell[] cells = new cell[4];
        for (int i = 0; i < 4; i++) { cells[i] = new cell(); }
";

/// Append 3–8 random statements drawn from templates that exercise every
/// instruction class — including patterns the native optimizer folds
/// (constant conditions, copy chains, dead accumulator writes) and
/// low-probability error paths.
fn gen_program(rng: &mut SplitMix64) -> String {
    let mut src = String::from(PRELUDE);
    let n_stmts = 3 + rng.gen_index(6);
    for _ in 0..n_stmts {
        let k = 1 + rng.gen_range_i64(0, 9);
        let m = 2 + rng.gen_range_i64(0, 12);
        let stmt = match rng.gen_index(12) {
            0 => format!("acc = acc + {k};\n"),
            1 => format!(
                "for (int i = 0; i < {m}; i++) {{ acc += i * {k}; cells[i % 4].bump(i); }}\n"
            ),
            2 => format!(
                "if (acc % 2 == 0) {{ x = x * 1.25; }} else {{ acc -= {k}; gd = gd + x; }}\n"
            ),
            3 => format!("j = {m}; while (j > 0) {{ j = j - 1; c.scale(0.5); }}\n"),
            4 => "x = mix2(x, acc * 0.25);\n".to_string(),
            5 => format!("acc = acc + c.get() + cells[{}].get();\n", rng.gen_index(4)),
            6 => format!("gi = gi + acc % {k}; c.bump(gi);\n"),
            7 => format!("x = -x + {k} * 0.5; acc = acc + cells.length;\n"),
            // Constant-foldable condition and a dead local write: the
            // native tier folds/deletes these, the other tiers run them.
            8 => format!("j = {k}; if ({k} > 0) {{ acc = acc + j; }} j = 0;\n"),
            9 => "j = acc; acc = j + j; j = 0;\n".to_string(),
            // Errors iff `acc % {m}` happens to be zero here.
            10 => format!("acc = {k} + acc / (acc % {m});\n"),
            // Errors iff the guard happens to hold.
            _ => format!("if (acc > {}) {{ acc = nullc.get(); }}\n", 40 + k * 7),
        };
        src.push_str(&stmt);
    }
    src.push_str("return acc + c.get();\n}\n");
    src
}

fn host() -> HostRegistry {
    let mut host = HostRegistry::new();
    host.register("mix2", Duration::from_nanos(120), |args| {
        Value::Double(args[0].as_double().unwrap() * 0.5 + args[1].as_double().unwrap())
    });
    host
}

fn fresh_env(hir: &dynfb_lang::hir::Hir) -> ProgramEnv {
    ProgramEnv {
        classes: hir.classes.clone(),
        externs: hir.externs.clone(),
        globals: hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect(),
        heap: Heap::default(),
        host: host(),
    }
}

fn lock_base(n: usize) -> LockId {
    let mut m = Machine::new(dynfb_sim::MachineConfig::default());
    m.add_locks(n)
}

struct TierOutcome {
    result: Result<Value, RuntimeError>,
    steps: Vec<Step>,
    globals: Vec<Value>,
    heap: Heap,
}

fn run_tier(
    hir: &dynfb_lang::hir::Hir,
    funcs: &[Function],
    func: usize,
    base: LockId,
    arg: i64,
    fuel: u64,
    tier: ExecTier,
) -> TierOutcome {
    let mut env = fresh_env(hir);
    let mut sink = OpSink::default();
    let result = match tier {
        ExecTier::Tree => Interp {
            env: &mut env,
            funcs,
            cost: CostModel::default(),
            sink: &mut sink,
            lock_base: base,
            lock_capacity: 1024,
            fuel,
        }
        .call(func, None, vec![Value::Int(arg)]),
        ExecTier::Vm => {
            let module = lower_functions(funcs);
            let mut regs = Vec::new();
            Vm {
                env: &mut env,
                module: &module,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel,
                regs: &mut regs,
            }
            .call(func, None, &[Value::Int(arg)])
        }
        ExecTier::Native => {
            let module = lower_functions(funcs);
            let native = compile_native(&module, &CostModel::default());
            let mut regs = Vec::new();
            NativeExec {
                env: &mut env,
                module: &native,
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel,
                regs: &mut regs,
            }
            .call(func, None, &[Value::Int(arg)])
        }
    };
    TierOutcome {
        result,
        steps: sink.into_steps().into_iter().collect(),
        globals: env.globals,
        heap: env.heap,
    }
}

/// Assert the native tier agrees with the oracle outcome. Returns `true`
/// on the success path, `false` on a (matching) error path.
fn assert_agrees(oracle: &TierOutcome, native: &TierOutcome, label: &str) -> bool {
    match (&oracle.result, &native.result) {
        (Ok(ov), Ok(nv)) => {
            assert_eq!(ov, nv, "{label}: return value");
            assert_eq!(oracle.steps, native.steps, "{label}: step sequence");
            assert_eq!(oracle.globals, native.globals, "{label}: globals");
            assert_eq!(oracle.heap.arrays, native.heap.arrays, "{label}: arrays");
            assert_eq!(
                oracle.heap.objects.len(),
                native.heap.objects.len(),
                "{label}: object count"
            );
            for (a, b) in oracle.heap.objects.iter().zip(&native.heap.objects) {
                assert_eq!(a.class, b.class, "{label}: object class");
                assert_eq!(a.fields, b.fields, "{label}: object fields");
            }
            true
        }
        (Err(oe), Err(ne)) => {
            // On an error path the tiers agree on the diagnosis; partial
            // sink contents legitimately differ (batched vs per-node
            // charging) and the runtime discards them.
            assert_eq!(oe.message, ne.message, "{label}: error message");
            false
        }
        (o, v) => panic!("{label}: tier disagreement — oracle: {o:?}, native: {v:?}"),
    }
}

#[test]
fn random_programs_agree_across_all_three_tiers() {
    let mut rng = SplitMix64::new(0xD1FF_F00D);
    let base = lock_base(1024);
    let mut oks = 0usize;
    let mut errs = 0usize;
    let mut locked_steps = 0usize;
    for case in 0..60 {
        let src = gen_program(&mut rng);
        let hir = dynfb_lang::compile_source(&src).unwrap_or_else(|e| {
            panic!("case {case}: generator emitted invalid source: {e}\n{src}")
        });
        let func = hir.function_named("test").expect("driver").0;
        let arg = rng.gen_range_i64(0, 48);
        let fuel = 10_000_000;

        // Plain program, as the front end produced it.
        let tree = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Tree);
        let vm = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Vm);
        let native = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Native);
        assert_agrees(&tree, &vm, &format!("case {case} (plain, vm)"));
        let ok = assert_agrees(&tree, &native, &format!("case {case} (plain, native)"));
        if ok {
            oks += 1;
        } else {
            errs += 1;
        }

        // Same program after default lock placement in every method, so
        // the fuzz also covers critical-region (acquire/release) parity —
        // including early `return` out of a region.
        let mut locked: Vec<Function> = hir.functions.clone();
        for f in &mut locked {
            if f.class.is_some() {
                insert_default_regions(f);
            }
        }
        let tree = run_tier(&hir, &locked, func, base, arg, fuel, ExecTier::Tree);
        let vm = run_tier(&hir, &locked, func, base, arg, fuel, ExecTier::Vm);
        let native = run_tier(&hir, &locked, func, base, arg, fuel, ExecTier::Native);
        assert_agrees(&tree, &vm, &format!("case {case} (locked, vm)"));
        assert_agrees(&tree, &native, &format!("case {case} (locked, native)"));
        locked_steps +=
            tree.steps.iter().filter(|s| matches!(s, Step::Acquire(_) | Step::Release(_))).count();
    }
    // The generator must actually exercise both outcomes and lock traffic,
    // otherwise the suite silently degenerates.
    assert!(oks >= 20, "too few successful cases ({oks})");
    assert!(errs >= 3, "too few error cases ({errs})");
    assert!(locked_steps > 100, "lock placement produced too little lock traffic");
}

/// Tight random fuel budgets land the exhaustion point inside batched
/// charge prologues at many different offsets; the boundary (consumed
/// fuel, partial sink up to the boundary, error message) must bisect to
/// exactly the per-node tiers' behavior.
#[test]
fn random_fuel_budgets_bisect_identically() {
    let mut rng = SplitMix64::new(0xF0E1_BEEF);
    let base = lock_base(1024);
    let mut exhausted = 0usize;
    for case in 0..40 {
        let src = gen_program(&mut rng);
        let hir = dynfb_lang::compile_source(&src).unwrap_or_else(|e| {
            panic!("case {case}: generator emitted invalid source: {e}\n{src}")
        });
        let func = hir.function_named("test").expect("driver").0;
        let arg = rng.gen_range_i64(0, 48);
        let fuel = rng.gen_range_i64(1, 400) as u64;

        let tree = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Tree);
        let vm = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Vm);
        let native = run_tier(&hir, &hir.functions, func, base, arg, fuel, ExecTier::Native);
        assert_agrees(&tree, &vm, &format!("case {case} (fuel {fuel}, vm)"));
        assert_agrees(&tree, &native, &format!("case {case} (fuel {fuel}, native)"));
        if tree.result.is_err() {
            exhausted += 1;
        }
    }
    assert!(exhausted >= 10, "too few fuel-exhausted cases ({exhausted})");
}

// ---------------------------------------------------------------------------
// Application-level fuzz
// ---------------------------------------------------------------------------

const NBODY_SRC: &str = r#"
    extern double interact(double, double);

    class body {
        double pos;
        double phi;
        double acc;

        void one_interaction(body b) {
            double val = interact(this.pos, b.pos);
            this.phi += val;
            double scaled = val * 0.5;
            this.acc += scaled;
        }

        void all_interactions(body[] all, int n) {
            for (int j = 0; j < n; j++) {
                this.one_interaction(all[j]);
            }
        }
    }

    body[] bodies;
    int nbodies;

    void init() {
        nbodies = 24;
        bodies = new body[nbodies];
        for (int i = 0; i < nbodies; i++) {
            body b = new body();
            b.pos = i * 1.5;
            bodies[i] = b;
        }
    }

    void forces() {
        for (int i = 0; i < nbodies; i++) {
            bodies[i].all_interactions(bodies, nbodies);
        }
    }
"#;

fn build_nbody(tier: ExecTier) -> CompiledApp {
    let hir = dynfb_lang::compile_source(NBODY_SRC).expect("front end");
    let plan = vec![PlanEntry::serial("init"), PlanEntry::parallel("forces")];
    let mut options = CompileOptions::new("nbody", plan);
    options.max_objects = 64;
    let mut host = HostRegistry::new();
    host.register("interact", Duration::from_nanos(400), |args| {
        let a = args[0].as_double().unwrap();
        let b = args[1].as_double().unwrap();
        Value::Double(1.0 / (1.0 + (a - b).abs()))
    });
    let mut app = compile(hir, options, host).expect("compiles");
    app.set_exec_tier(tier);
    app
}

/// Draw a random but valid `RunConfig` from the stream (static, static
/// instrumented, dynamic, or async-dynamic; optional watchdog and faults).
fn random_config(rng: &mut SplitMix64) -> RunConfig {
    let procs = 1 + rng.gen_index(8);
    let mut cfg = match rng.gen_index(4) {
        0 => {
            let policy = ["original", "bounded", "aggressive", "serial"][rng.gen_index(4)];
            let mut cfg = RunConfig::fixed(procs, policy);
            if rng.chance(0.5) {
                cfg.mode = RunMode::Static { policy: policy.to_string(), instrumented: true };
            }
            cfg
        }
        mode => {
            let ctl = ControllerConfig {
                num_policies: 3,
                target_sampling: Duration::from_micros(100 + rng.gen_range_i64(0, 900) as u64),
                target_production: Duration::from_millis(2 + rng.gen_range_i64(0, 30) as u64),
                ..ControllerConfig::default()
            };
            let mut cfg = if mode == 3 {
                let mut c = RunConfig::dynamic(procs, ctl.clone());
                c.mode = RunMode::DynamicAsync(ctl);
                c
            } else {
                RunConfig::dynamic(procs, ctl)
            };
            cfg.span_intervals = rng.chance(0.3);
            if rng.chance(0.3) {
                cfg = cfg.with_watchdog(4 + rng.gen_index(8) as u32);
            }
            cfg
        }
    };
    if rng.chance(0.4) {
        let profile = ChaosProfile {
            horizon: Duration::from_millis(5 + rng.gen_range_i64(0, 40) as u64),
            procs,
            locks: 64,
            events: 1 + rng.gen_index(3),
        };
        cfg = cfg.with_faults(FaultPlan::random(rng.next_u64(), &profile));
    }
    cfg
}

#[test]
fn compiled_app_agrees_across_all_tiers_on_seeded_random_configs() {
    let mut rng = SplitMix64::new(0x3A71_4E00);
    for case in 0..16 {
        let cfg = random_config(&mut rng);
        let mut native = build_nbody(ExecTier::Native);
        let native_report = run_app_ref(&mut native, &cfg)
            .unwrap_or_else(|e| panic!("case {case}: native tier failed: {e} ({cfg:?})"));
        let mut oracle = build_nbody(ExecTier::Tree);
        let oracle_report = run_app_ref(&mut oracle, &cfg)
            .unwrap_or_else(|e| panic!("case {case}: oracle tier failed: {e} ({cfg:?})"));

        // Identical machine statistics imply identical overhead samples
        // and timings; section records carry the policy-switch traces.
        assert_eq!(native_report.stats, oracle_report.stats, "case {case}: stats ({cfg:?})");
        assert_eq!(
            native_report.sections, oracle_report.sections,
            "case {case}: section records ({cfg:?})"
        );

        // The program state the two tiers computed must be identical too.
        assert_eq!(native.globals(), oracle.globals(), "case {case}: globals");
        assert_eq!(native.heap().arrays, oracle.heap().arrays, "case {case}: arrays");
        assert_eq!(
            native.heap().objects.len(),
            oracle.heap().objects.len(),
            "case {case}: object count"
        );
        for (a, b) in native.heap().objects.iter().zip(&oracle.heap().objects) {
            assert_eq!(a.fields, b.fields, "case {case}: object fields");
        }
    }
}
