//! Additional interpreter coverage: object graphs, arrays of references,
//! recursion, general loops, and runtime-error paths through compiled
//! applications.

use dynfb_compiler::interp::{CostModel, Heap, HostRegistry, Interp, ProgramEnv, Value};
use dynfb_lang::compile_source;
use dynfb_sim::{Machine, MachineConfig, OpSink};

fn run(src: &str, func: &str, args: Vec<Value>) -> (Value, ProgramEnv) {
    let hir = compile_source(src).unwrap_or_else(|e| panic!("{e}"));
    let mut env = ProgramEnv {
        classes: hir.classes.clone(),
        externs: hir.externs.clone(),
        globals: hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect(),
        heap: Heap::default(),
        host: HostRegistry::new(),
    };
    let mut sink = OpSink::default();
    let mut machine = Machine::new(MachineConfig::default());
    let base = machine.add_locks(4096);
    let f = hir.function_named(func).expect("function");
    let v = {
        let mut interp = Interp {
            env: &mut env,
            funcs: &hir.functions,
            cost: CostModel::default(),
            sink: &mut sink,
            lock_base: base,
            lock_capacity: 4096,
            fuel: 50_000_000,
        };
        interp.call(f.0, None, args).unwrap_or_else(|e| panic!("{e}"))
    };
    (v, env)
}

#[test]
fn linked_list_construction_and_sum() {
    let (v, _) = run(
        "class node { double val; node next; }
         double test(int n) {
             node head = null;
             for (int i = 0; i < n; i++) {
                 node fresh = new node();
                 fresh.val = i;
                 fresh.next = head;
                 head = fresh;
             }
             double total = 0.0;
             node cur = head;
             while (cur != null) {
                 total += cur.val;
                 cur = cur.next;
             }
             return total;
         }",
        "test",
        vec![Value::Int(10)],
    );
    assert_eq!(v, Value::Double(45.0));
}

#[test]
fn arrays_of_object_references() {
    let (v, env) = run(
        "class cell { int count; void bump() { this.count += 1; } }
         int test(int n) {
             cell[] cells = new cell[n];
             for (int i = 0; i < n; i++) { cells[i] = new cell(); }
             for (int i = 0; i < n * 3; i++) { cells[i % n].bump(); }
             int total = 0;
             for (int i = 0; i < n; i++) { total += cells[i].count; }
             return total;
         }",
        "test",
        vec![Value::Int(7)],
    );
    assert_eq!(v, Value::Int(21));
    assert_eq!(env.heap.objects.len(), 7);
}

#[test]
fn mutual_recursion() {
    let (v, _) = run(
        "bool even(int n) { if (n == 0) { return true; } return odd(n - 1); }
         bool odd(int n) { if (n == 0) { return false; } return even(n - 1); }
         bool test(int n) { return even(n); }",
        "test",
        vec![Value::Int(20)],
    );
    assert_eq!(v, Value::Bool(true));
}

#[test]
fn integer_and_double_semantics() {
    let (v, _) = run(
        "double test() {
             int a = 7 / 2;
             int b = 7 % 2;
             double c = 7.0 / 2.0;
             return a + b + c;
         }",
        "test",
        vec![],
    );
    assert_eq!(v, Value::Double(3.0 + 1.0 + 3.5));
}

#[test]
fn array_length_and_bounds() {
    let (v, _) = run(
        "int test(int n) {
             double[] a = new double[n];
             return a.length;
         }",
        "test",
        vec![Value::Int(13)],
    );
    assert_eq!(v, Value::Int(13));
}

#[test]
fn boolean_logic_and_comparisons() {
    let (v, _) = run(
        "bool test(int a, int b) {
             bool x = a < b && b != 0;
             bool y = a >= b || a == 0;
             return x && !y;
         }",
        "test",
        vec![Value::Int(1), Value::Int(2)],
    );
    assert_eq!(v, Value::Bool(true));
}

#[test]
fn code_size_metric_scales_with_body_length() {
    let short = "int x = 1;";
    let long = "int x = 1; int y = 2; int z = 3; int w = 4;";
    let hir_s = compile_source(&format!("void f() {{ {short} }}")).unwrap();
    let hir_l = compile_source(&format!("void f() {{ {long} }}")).unwrap();
    use dynfb_lang::hir::body_size;
    assert!(body_size(&hir_l.functions[0].body) > 2 * body_size(&hir_s.functions[0].body));
}
