//! End-to-end pipeline tests: source text → commutativity analysis →
//! multi-version code → execution on the simulated multiprocessor, under
//! every static policy and under dynamic feedback.

use dynfb_compiler::artifact::{compile, CompileError, CompileOptions, CompiledApp};
use dynfb_compiler::interp::{HostRegistry, Value};
use dynfb_core::controller::ControllerConfig;
use dynfb_sim::{PlanEntry, RunConfig};
use std::time::Duration;

/// A miniature Barnes-Hut-flavoured program: an init serial section builds
/// the bodies, and the parallel `forces` section runs all-pairs
/// interactions through an update operation on each body.
const NBODY_SRC: &str = r#"
    extern double interact(double, double);

    class body {
        double pos;
        double phi;
        double acc;


        void one_interaction(body b) {
            double val = interact(this.pos, b.pos);
            this.phi += val;
            double scaled = val * 0.5;
            this.acc += scaled;
        }

        void all_interactions(body[] all, int n) {
            for (int j = 0; j < n; j++) {
                this.one_interaction(all[j]);
            }
        }
    }

    body[] bodies;
    int nbodies;

    void init() {
        nbodies = 24;
        bodies = new body[nbodies];
        for (int i = 0; i < nbodies; i++) {
            body b = new body();
            b.pos = i * 1.5;
            bodies[i] = b;
        }
    }

    void forces() {
        for (int i = 0; i < nbodies; i++) {
            bodies[i].all_interactions(bodies, nbodies);
        }
    }
"#;

fn host() -> HostRegistry {
    let mut host = HostRegistry::new();
    host.register("interact", Duration::from_nanos(400), |args| {
        let a = args[0].as_double().unwrap();
        let b = args[1].as_double().unwrap();
        Value::Double(1.0 / (1.0 + (a - b).abs()))
    });
    host
}

fn build() -> CompiledApp {
    let hir = dynfb_lang::compile_source(NBODY_SRC).expect("front end");
    let plan = vec![PlanEntry::serial("init"), PlanEntry::parallel("forces")];
    let mut options = CompileOptions::new("nbody", plan);
    options.max_objects = 64;
    compile(hir, options, host()).expect("compiles")
}

/// The reference result: run everything under the serial version on one
/// processor and collect final phi values.
fn reference_phis() -> Vec<f64> {
    let app = build();
    let report_app = run_and_return(app, &RunConfig::fixed(1, "serial"));
    collect_phis(&report_app)
}

fn run_and_return(app: CompiledApp, config: &RunConfig) -> CompiledApp {
    // `run_app` consumes the app by value and returns only the report; to
    // inspect the heap we re-run through a reference-holding shim.
    let mut app = app;
    let report = dynfb_sim::runtime::run_app_ref(&mut app, config).expect("runs");
    assert!(report.elapsed() > Duration::ZERO);
    app
}

fn collect_phis(app: &CompiledApp) -> Vec<f64> {
    app.heap()
        .objects
        .iter()
        .map(|o| match o.fields[1] {
            Value::Double(v) => v,
            other => panic!("phi should be a double, got {other:?}"),
        })
        .collect()
}

#[test]
fn all_policies_compute_identical_results() {
    let reference = reference_phis();
    assert_eq!(reference.len(), 24);
    assert!(reference.iter().all(|v| *v > 0.0));
    for policy in ["original", "bounded", "aggressive"] {
        for procs in [1, 4, 8] {
            let app = run_and_return(build(), &RunConfig::fixed(procs, policy));
            let phis = collect_phis(&app);
            for (a, b) in reference.iter().zip(&phis) {
                assert!((a - b).abs() < 1e-9, "{policy} on {procs} procs diverged");
            }
        }
    }
}

#[test]
fn dynamic_feedback_computes_identical_results() {
    let reference = reference_phis();
    let ctl = ControllerConfig {
        target_sampling: Duration::from_micros(100),
        target_production: Duration::from_millis(10),
        ..ControllerConfig::default()
    };
    let app = run_and_return(build(), &RunConfig::dynamic(4, ctl));
    let phis = collect_phis(&app);
    for (a, b) in reference.iter().zip(&phis) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn aggressive_reduces_lock_acquires() {
    let orig = build();
    let orig_report = dynfb_sim::run_app(orig, &RunConfig::fixed(4, "original")).unwrap();
    let aggr = build();
    let aggr_report = dynfb_sim::run_app(aggr, &RunConfig::fixed(4, "aggressive")).unwrap();
    let (o, a) = (orig_report.stats.totals().acquires, aggr_report.stats.totals().acquires);
    // Original: two regions per interaction (phi, then acc) = 2·24·24.
    assert_eq!(o, 2 * 24 * 24, "original acquires");
    // Aggressive lifts to one region per body per section execution.
    assert_eq!(a, 24, "aggressive acquires");
    assert!(aggr_report.elapsed() < orig_report.elapsed());
}

#[test]
fn bounded_merges_but_does_not_lift_through_loops() {
    let app = build();
    let report = dynfb_sim::run_app(app, &RunConfig::fixed(4, "bounded")).unwrap();
    // Bounded merges the two per-interaction regions into one, and (since
    // all_interactions' loop is acyclic) may hoist further; it must be
    // strictly between serial counts.
    let acq = report.stats.totals().acquires;
    assert!(acq <= 24 * 24, "bounded acquires {acq}");
    assert!(acq >= 24, "bounded acquires {acq}");
}

#[test]
fn version_dedup_reports_distinct_names() {
    let app = build();
    let sections = app.sections();
    let forces = &sections["forces"];
    let names: Vec<&str> = forces.versions.iter().map(|v| v.name.as_str()).collect();
    // The three policies produce at most three distinct versions, and the
    // joined names must cover all three policies.
    let joined = names.join("+");
    for p in ["original", "bounded", "aggressive"] {
        assert!(joined.contains(p), "{names:?}");
    }
}

#[test]
fn code_sizes_are_ordered_like_table_1() {
    let app = build();
    let sizes = app.code_sizes();
    assert!(sizes.serial < sizes.aggressive, "{sizes:?}");
    assert!(sizes.aggressive <= sizes.dynamic, "{sizes:?}");
    assert!(sizes.original <= sizes.dynamic, "{sizes:?}");
}

#[test]
fn non_commuting_program_is_rejected() {
    let src = r#"
        class cell { double v;
            void set(double x) { this.v = x; }
        }
        cell[] cells;
        int n;
        void init() { n = 4; cells = new cell[n]; for (int i = 0; i < n; i++) { cells[i] = new cell(); } }
        void work() {
            for (int i = 0; i < n; i++) {
                cells[0].set(i * 1.0);
            }
        }
    "#;
    let hir = dynfb_lang::compile_source(src).unwrap();
    let plan = vec![PlanEntry::serial("init"), PlanEntry::parallel("work")];
    let err = compile(hir, CompileOptions::new("bad", plan), HostRegistry::new()).unwrap_err();
    match err {
        CompileError::NotParallelizable { section, reasons } => {
            assert_eq!(section, "work");
            assert!(!reasons.is_empty());
        }
        other => panic!("expected NotParallelizable, got {other}"),
    }
}

#[test]
fn versions_carry_region_provenance_to_lock_labels() {
    // Region provenance flows front-to-back: lock placement names the two
    // default regions in `one_interaction` (`#0` guards phi, `#1` guards
    // acc), syncopt's merge/hoist/lift preserve the tags, and the compiled
    // artifact exposes them per version and per heap object.
    let app = build();
    let serial_idx = app.sections()["forces"].versions.len();
    let forces = &app.sections()["forces"];
    for v in &forces.versions {
        assert_eq!(v.regions.len(), 1, "one lock class in `{}`", v.name);
        let info = &v.regions[0];
        assert_eq!(info.class, "body");
        if v.name.split('+').any(|p| p == "original") {
            assert_eq!(
                info.sources,
                vec!["one_interaction#0".to_string(), "one_interaction#1".to_string()]
            );
        } else {
            // Merged/lifted versions must still name every constituent.
            assert!(info.sources.contains(&"one_interaction#0".to_string()), "{info:?}");
            assert!(info.sources.contains(&"one_interaction#1".to_string()), "{info:?}");
        }
    }
    // The serial version holds no locks, so it reports no regions.
    assert!(forces.serial.regions.is_empty());

    // After a run the heap is populated and per-lock labels resolve.
    let app = run_and_return(app, &RunConfig::fixed(2, "original"));
    assert!(app.lock_pool_base().is_some());
    let labels = app.lock_region_labels("forces", 0);
    assert_eq!(labels.len(), 24);
    assert!(labels.iter().all(|l| l.starts_with("body:one_interaction#0")), "{labels:?}");
    // Under the serial version the label degrades to the bare class name.
    let serial_labels = app.lock_region_labels("forces", serial_idx);
    assert!(serial_labels.iter().all(|l| l == "body"), "{serial_labels:?}");
}

#[test]
fn region_counts_agree_with_distinct_lock_labels() {
    // `compile` asserts internally that the provenance walker and
    // `syncopt::count_regions` visit the same statements; this test pins
    // the same contract on the public surface, across the whole policy
    // family: the critical-statement count, the provenance tags, and the
    // per-object labels must tell one consistent story per version.
    use dynfb_compiler::syncopt::{count_regions, Policy};
    let hir = dynfb_lang::compile_source(NBODY_SRC).expect("front end");
    let plan = vec![PlanEntry::serial("init"), PlanEntry::parallel("forces")];
    let mut options = CompileOptions::new("nbody", plan).with_policies(Policy::family(1));
    options.max_objects = 64;
    let app = compile(hir, options, host()).expect("compiles");

    let forces = &app.sections()["forces"];
    assert!(forces.versions.len() >= 3, "family should split into several versions");
    let per_version: Vec<(String, usize, usize)> = forces
        .versions
        .iter()
        .map(|v| {
            let mut counted = count_regions(&v.body);
            for (_, f) in v.reachable_functions() {
                counted += count_regions(&f.body);
            }
            let tags: usize = v.regions.iter().map(|r| r.sources.len()).sum();
            (v.name.clone(), counted, tags)
        })
        .collect();
    for (name, counted, tags) in &per_version {
        if name.split('+').any(|p| p == "original") {
            // Untransformed code: every critical statement carries exactly
            // one distinct source tag, so the walkers agree exactly.
            assert_eq!(counted, tags, "version `{name}`");
        }
        // Coalescing merges critical statements but never drops their
        // tags; removal drops statement and tags together. So the tag
        // count bounds the statement count, and they hit zero together.
        assert!(counted <= tags, "version `{name}`: {counted} regions > {tags} tags");
        assert_eq!(*counted == 0, *tags == 0, "version `{name}`");
    }

    // After a run, the per-object labels must reproduce each version's
    // provenance verbatim: one distinct `class:tags` label per class with
    // regions, with the tag list equal to that class's recorded sources.
    let app = run_and_return(app, &RunConfig::fixed(2, "original"));
    let forces = &app.sections()["forces"];
    for (vi, v) in forces.versions.iter().enumerate() {
        let labels = app.lock_region_labels("forces", vi);
        let distinct: std::collections::BTreeSet<&String> = labels.iter().collect();
        let labelled_classes = v.regions.iter().filter(|r| !r.sources.is_empty()).count();
        assert_eq!(
            distinct.iter().filter(|l| l.contains(':')).count(),
            labelled_classes,
            "version `{}`: labels {distinct:?} vs regions {:?}",
            v.name,
            v.regions
        );
        for label in &distinct {
            let Some((class, tags)) = label.split_once(':') else { continue };
            let info = v.regions.iter().find(|r| r.class == class).unwrap_or_else(|| {
                panic!("label `{label}` names class `{class}` with no provenance")
            });
            assert_eq!(tags, info.sources.join("+"), "version `{}`", v.name);
        }
    }
}
