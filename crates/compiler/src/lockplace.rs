//! Default lock placement (§2 of the paper).
//!
//! "To ensure that operations execute atomically, the compiler augments
//! each object with a mutual exclusion lock. It then automatically inserts
//! synchronization constructs into operations that update objects." — the
//! *default placement* wraps each maximal run of consecutive receiver-field
//! updates in a critical region on the receiver's lock (compare Figure 1 of
//! the paper, where the acquire/release pair encloses exactly the
//! `sum = sum + val` update).

use dynfb_lang::hir::{Expr, ExprKind, Function, Place, Stmt};

/// Insert default critical regions into a function body: every maximal run
/// of consecutive top-level `this.field = ...` assignments becomes one
/// `Critical` region on `this`.
///
/// Each inserted region is named `"{method}#{k}"` (`k` counting regions in
/// source order within the method) — the source-level identity that the
/// synchronization optimizer propagates through merge/hoist/lift, and that
/// profiles use to attribute per-lock overhead back to code.
///
/// Returns true if any region was inserted.
pub fn insert_default_regions(func: &mut Function) -> bool {
    let Some(class) = func.class else {
        return false;
    };
    let body = std::mem::take(&mut func.body);
    let mut naming = Naming { base: func.name.clone(), next: 0 };
    let mut inserted = false;
    func.body = wrap_runs(body, &Expr::this(class), &mut naming, &mut inserted);
    inserted
}

/// Source-order region-name allocator for one function.
struct Naming {
    base: String,
    next: usize,
}

impl Naming {
    fn tag(&mut self) -> String {
        let tag = format!("{}#{}", self.base, self.next);
        self.next += 1;
        tag
    }
}

fn is_this_field_write(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Assign { place: Place::Field { obj, .. }, .. }
            if matches!(obj.kind, ExprKind::This)
    )
}

fn wrap_runs(stmts: Vec<Stmt>, lock: &Expr, naming: &mut Naming, inserted: &mut bool) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut run: Vec<Stmt> = Vec::new();
    let flush =
        |run: &mut Vec<Stmt>, out: &mut Vec<Stmt>, naming: &mut Naming, inserted: &mut bool| {
            if !run.is_empty() {
                *inserted = true;
                out.push(Stmt::Critical {
                    lock_obj: lock.clone(),
                    body: std::mem::take(run),
                    regions: vec![naming.tag()],
                });
            }
        };
    for s in stmts {
        if is_this_field_write(&s) {
            run.push(s);
            continue;
        }
        flush(&mut run, &mut out, naming, inserted);
        // Recurse into structured statements so updates nested in control
        // flow are protected too (such operations are not *parallelized* —
        // the commutativity analysis rejects them — but serial-section code
        // shares method bodies and must stay well-formed).
        let s = match s {
            Stmt::If { cond, then_branch, else_branch } => Stmt::If {
                cond,
                then_branch: wrap_runs(then_branch, lock, naming, inserted),
                else_branch: wrap_runs(else_branch, lock, naming, inserted),
            },
            Stmt::While { cond, body } => {
                Stmt::While { cond, body: wrap_runs(body, lock, naming, inserted) }
            }
            Stmt::CountedFor { var, start, bound, body } => Stmt::CountedFor {
                var,
                start,
                bound,
                body: wrap_runs(body, lock, naming, inserted),
            },
            other => other,
        };
        out.push(s);
    }
    flush(&mut run, &mut out, naming, inserted);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfb_lang::compile_source;
    use dynfb_lang::hir::ClassId;

    fn count_criticals(stmts: &[Stmt]) -> usize {
        let mut n = 0;
        for s in stmts {
            match s {
                Stmt::Critical { body, .. } => {
                    n += 1 + count_criticals(body);
                }
                Stmt::If { then_branch, else_branch, .. } => {
                    n += count_criticals(then_branch) + count_criticals(else_branch);
                }
                Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => {
                    n += count_criticals(body);
                }
                _ => {}
            }
        }
        n
    }

    #[test]
    fn separate_runs_get_separate_regions() {
        // Two update groups separated by a pure statement: two regions,
        // exactly the shape the Bounded policy later merges.
        let hir = compile_source(
            "extern double f(double);
             class c { double a; double b; double p;
                 void m(double v) {
                     this.a += v;
                     double t = f(this.p);
                     this.b += t;
                 } }",
        )
        .unwrap();
        let mut func = hir.functions[hir.method_named(ClassId(0), "m").unwrap().0].clone();
        assert!(insert_default_regions(&mut func));
        assert_eq!(count_criticals(&func.body), 2);
    }

    #[test]
    fn consecutive_writes_share_one_region() {
        let hir = compile_source(
            "class c { double x; double y; double z;
                 void m(double v) { this.x += v; this.y += v; this.z += v; } }",
        )
        .unwrap();
        let mut func = hir.functions[hir.method_named(ClassId(0), "m").unwrap().0].clone();
        insert_default_regions(&mut func);
        assert_eq!(count_criticals(&func.body), 1);
    }

    #[test]
    fn pure_methods_untouched() {
        let hir = compile_source("class c { double x; double get() { return this.x; } }").unwrap();
        let mut func = hir.functions[0].clone();
        assert!(!insert_default_regions(&mut func));
        assert_eq!(count_criticals(&func.body), 0);
    }

    #[test]
    fn nested_updates_are_protected() {
        let hir = compile_source(
            "class c { double x;
                 void m(int n) { for (int i = 0; i < n; i++) { this.x += 1.0; } } }",
        )
        .unwrap();
        let mut func = hir.functions[0].clone();
        insert_default_regions(&mut func);
        assert_eq!(count_criticals(&func.body), 1);
    }
}
