//! # dynfb-compiler — the parallelizing compiler
//!
//! A from-scratch reimplementation of the compiler pipeline the paper's
//! dynamic feedback technique is embedded in: a parallelizing compiler for
//! serial, object-based programs based on *commutativity analysis*
//! (Rinard & Diniz), with automatic synchronization insertion and the
//! three synchronization optimization policies whose selection dynamic
//! feedback automates.
//!
//! Pipeline (see [`artifact::compile`]):
//!
//! 1. [`callgraph`] — static call graph + cycle detection (the *Bounded*
//!    policy's guard).
//! 2. [`effects`] — per-function read/write effect analysis.
//! 3. [`symbolic`] + [`commutativity`] — symbolic execution of update
//!    operations and the pairwise commutativity test that licenses
//!    parallelization.
//! 4. [`lockplace`] — default per-object critical-region insertion.
//! 5. [`syncopt`] — the merge / hoist / interprocedural-lift lock
//!    elimination transformations under the Original, Bounded, and
//!    Aggressive policies.
//! 6. [`artifact`] — multi-version packaging with shared-code
//!    deduplication; the result implements `dynfb_sim::SimApp` and runs on
//!    the simulated multiprocessor.
//!
//! Compiled code executes on one of three tiers: fused native closures
//! ([`native`], the default — each basic block compiled to a single Rust
//! closure at `compile()` time), the register-based bytecode VM ([`vm`]),
//! or the tree-walking interpreter ([`interp`], the reference oracle).
//! All three emit bit-identical simulation step sequences; see `DESIGN.md`
//! for the determinism contract.

#![warn(missing_docs)]

pub mod artifact;
pub mod callgraph;
pub mod commutativity;
pub mod effects;
pub mod interp;
pub mod lockplace;
pub mod native;
pub mod symbolic;
pub mod syncopt;
pub mod vm;

pub use artifact::{compile, CompileError, CompileOptions, CompiledApp, RegionInfo};
pub use interp::{CostModel, HostRegistry, Value};
pub use syncopt::Policy;
pub use vm::ExecTier;
