//! Call graph construction and cycle detection.
//!
//! The *Bounded* synchronization optimization policy applies a lock
//! elimination transformation "only if the new critical region will contain
//! no cycles in the call graph" (§3 of the paper). This module computes the
//! static call graph of a program and, for every function, whether it can
//! reach a call-graph cycle — the predicate the Bounded policy queries.

use dynfb_lang::hir::{Expr, ExprKind, FuncId, Hir, Place, Stmt};

/// The static call graph of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct callees of each function (deduplicated, in first-call order).
    pub callees: Vec<Vec<FuncId>>,
    /// `recursive[f]`: `f` participates in a call-graph cycle.
    pub recursive: Vec<bool>,
    /// `reaches_cycle[f]`: some function reachable from `f` (including `f`
    /// itself) participates in a cycle.
    pub reaches_cycle: Vec<bool>,
}

impl CallGraph {
    /// Build the call graph for a program.
    #[must_use]
    pub fn build(hir: &Hir) -> Self {
        let n = hir.functions.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (i, f) in hir.functions.iter().enumerate() {
            let mut out = Vec::new();
            collect_calls_stmts(&f.body, &mut out);
            out.dedup();
            let mut seen = Vec::new();
            for c in out {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
            callees[i] = seen;
        }

        // Tarjan-style SCC via iterative Kosaraju is overkill at this size;
        // use the simple coloring DFS to find functions on cycles.
        // A function is recursive iff it can reach itself.
        let recursive: Vec<bool> =
            (0..n).map(|start| reaches(&callees, FuncId(start), FuncId(start))).collect();
        let mut reaches_cycle = vec![false; n];
        for start in 0..n {
            reaches_cycle[start] =
                recursive[start] || any_reachable(&callees, FuncId(start), |f| recursive[f.0]);
        }
        CallGraph { callees, recursive, reaches_cycle }
    }

    /// All functions reachable from `roots` (including the roots).
    #[must_use]
    pub fn reachable(&self, roots: &[FuncId]) -> Vec<FuncId> {
        let mut seen = vec![false; self.callees.len()];
        let mut stack: Vec<FuncId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(f) = stack.pop() {
            if seen[f.0] {
                continue;
            }
            seen[f.0] = true;
            out.push(f);
            for &c in &self.callees[f.0] {
                stack.push(c);
            }
        }
        out.sort();
        out
    }
}

/// Can `from` reach `target` through one or more call edges?
fn reaches(callees: &[Vec<FuncId>], from: FuncId, target: FuncId) -> bool {
    let mut seen = vec![false; callees.len()];
    let mut stack: Vec<FuncId> = callees[from.0].clone();
    while let Some(f) = stack.pop() {
        if f == target {
            return true;
        }
        if seen[f.0] {
            continue;
        }
        seen[f.0] = true;
        stack.extend(callees[f.0].iter().copied());
    }
    false
}

fn any_reachable(callees: &[Vec<FuncId>], from: FuncId, pred: impl Fn(FuncId) -> bool) -> bool {
    let mut seen = vec![false; callees.len()];
    let mut stack = vec![from];
    while let Some(f) = stack.pop() {
        if seen[f.0] {
            continue;
        }
        seen[f.0] = true;
        if pred(f) {
            return true;
        }
        stack.extend(callees[f.0].iter().copied());
    }
    false
}

/// Collect every `FuncId` called anywhere in a statement list.
pub fn collect_calls_stmts(stmts: &[Stmt], out: &mut Vec<FuncId>) {
    for s in stmts {
        collect_calls_stmt(s, out);
    }
}

fn collect_calls_stmt(s: &Stmt, out: &mut Vec<FuncId>) {
    match s {
        Stmt::Assign { place, value } => {
            collect_calls_place(place, out);
            collect_calls_expr(value, out);
        }
        Stmt::If { cond, then_branch, else_branch } => {
            collect_calls_expr(cond, out);
            collect_calls_stmts(then_branch, out);
            collect_calls_stmts(else_branch, out);
        }
        Stmt::While { cond, body } => {
            collect_calls_expr(cond, out);
            collect_calls_stmts(body, out);
        }
        Stmt::CountedFor { start, bound, body, .. } => {
            collect_calls_expr(start, out);
            collect_calls_expr(bound, out);
            collect_calls_stmts(body, out);
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                collect_calls_expr(e, out);
            }
        }
        Stmt::Expr(e) => collect_calls_expr(e, out),
        Stmt::Critical { lock_obj, body, .. } => {
            collect_calls_expr(lock_obj, out);
            collect_calls_stmts(body, out);
        }
    }
}

fn collect_calls_place(p: &Place, out: &mut Vec<FuncId>) {
    match p {
        Place::Local(_) | Place::Global(_) => {}
        Place::Field { obj, .. } => collect_calls_expr(obj, out),
        Place::Index { arr, idx } => {
            collect_calls_expr(arr, out);
            collect_calls_expr(idx, out);
        }
    }
}

/// Collect every `FuncId` called anywhere in an expression.
pub fn collect_calls_expr(e: &Expr, out: &mut Vec<FuncId>) {
    match &e.kind {
        ExprKind::CallFn { func, args } => {
            out.push(*func);
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        ExprKind::CallMethod { obj, func, args } => {
            out.push(*func);
            collect_calls_expr(obj, out);
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        ExprKind::CallExtern { args, .. } => {
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        ExprKind::FieldGet { obj, .. } => collect_calls_expr(obj, out),
        ExprKind::Index { arr, idx } => {
            collect_calls_expr(arr, out);
            collect_calls_expr(idx, out);
        }
        ExprKind::ArrayLen(a) => collect_calls_expr(a, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_calls_expr(lhs, out);
            collect_calls_expr(rhs, out);
        }
        ExprKind::Unary { expr, .. } | ExprKind::IntToDouble(expr) => {
            collect_calls_expr(expr, out);
        }
        ExprKind::NewArray { len, .. } => collect_calls_expr(len, out),
        ExprKind::Int(_)
        | ExprKind::Double(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Local(_)
        | ExprKind::Global(_)
        | ExprKind::New { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfb_lang::compile_source;

    #[test]
    fn detects_direct_and_mutual_recursion() {
        let hir = compile_source(
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
             int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
             int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
             int plain(int n) { return n + 1; }
             int caller(int n) { return fact(n) + plain(n); }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let id = |name: &str| hir.function_named(name).unwrap().0;
        assert!(cg.recursive[id("fact")]);
        assert!(cg.recursive[id("even")]);
        assert!(cg.recursive[id("odd")]);
        assert!(!cg.recursive[id("plain")]);
        assert!(!cg.recursive[id("caller")]);
        assert!(cg.reaches_cycle[id("caller")], "caller reaches fact's cycle");
        assert!(!cg.reaches_cycle[id("plain")]);
    }

    #[test]
    fn reachable_set_includes_transitive_callees() {
        let hir = compile_source(
            "int c(int n) { return n; }
             int b(int n) { return c(n); }
             int a(int n) { return b(n); }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let a = hir.function_named("a").unwrap();
        let all = cg.reachable(&[a]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn method_calls_are_edges() {
        let hir = compile_source(
            "class c { int x; void touch() { this.x += 1; } }
             void f(c o) { o.touch(); }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let f = hir.function_named("f").unwrap();
        assert_eq!(cg.callees[f.0].len(), 1);
    }
}
