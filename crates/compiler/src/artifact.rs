//! The compiled application artifact.
//!
//! [`compile`] drives the whole pipeline of the paper's compiler:
//!
//! 1. front end (done by `dynfb-lang`) — the input here is a typed [`Hir`];
//! 2. call-graph and effect analysis;
//! 3. commutativity analysis of every parallel-section candidate loop
//!    (§2): the section is rejected if its operations do not provably
//!    commute;
//! 4. automatic insertion of per-object mutual-exclusion regions (default
//!    lock placement);
//! 5. synchronization optimization under each policy (*Original*,
//!    *Bounded*, *Aggressive*, §3), producing one code version per policy;
//! 6. multi-version packaging: versions of a section whose generated code
//!    is identical are shared (the paper's closed-subgraph sharing keeps
//!    the Table 1 code growth small), plus an unsynchronized *serial*
//!    version of everything.
//!
//! The result, [`CompiledApp`], implements `dynfb_sim`'s [`SimApp`], so a
//! compiled program runs directly on the simulated multiprocessor under
//! any static policy or under dynamic feedback.

use crate::callgraph::CallGraph;
use crate::commutativity::{analyze_extent, CommutativityReport};
use crate::effects::EffectsMap;
use crate::interp::{CostModel, Heap, HostRegistry, Interp, ProgramEnv, Value};
use crate::lockplace::insert_default_regions;
use crate::native::{compile_native, NativeExec, NativeModule};
use crate::syncopt::{optimize, FnSet, Policy};
use crate::vm::{lower_body, lower_functions, ExecTier, Vm, VmModule};
use dynfb_lang::hir::{body_size, Expr, Function, Hir, LocalId, Stmt, Ty};
use dynfb_sim::{LockId, Machine, OpSink, PlanEntry, SectionKind, SimApp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Bytes per HIR node for the code-size metric (Table 1 analog).
const NODE_BYTES: usize = 8;
/// Fixed per-function overhead in the code-size metric (prologue etc.).
const FUNC_BYTES: usize = 32;

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Application name.
    pub name: String,
    /// Execution plan: which section functions run, in what order.
    pub plan: Vec<PlanEntry>,
    /// Upper bound on live objects (sizes the per-object lock pool).
    pub max_objects: usize,
    /// Interpreter cost model.
    pub cost: CostModel,
    /// Evaluation fuel per serial section / loop iteration.
    pub fuel: u64,
    /// The policy family to multi-version, in sampling order (duplicates
    /// are dropped, structural duplicates share a version). Defaults to
    /// the paper's classic triple; a representative subset selected by
    /// `dynfb_core::repset` can be passed instead.
    pub policies: Vec<Policy>,
}

impl CompileOptions {
    /// Sensible defaults for an app with the given name and plan.
    #[must_use]
    pub fn new(name: &str, plan: Vec<PlanEntry>) -> Self {
        CompileOptions {
            name: name.to_string(),
            plan,
            max_objects: 1 << 16,
            cost: CostModel::default(),
            fuel: 1 << 32,
            policies: Policy::ALL.to_vec(),
        }
    }

    /// Builder-style: replace the policy family to multi-version.
    #[must_use]
    pub fn with_policies(mut self, policies: Vec<Policy>) -> Self {
        self.policies = policies;
        self
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A plan entry references a function that does not exist (or has
    /// parameters — section functions must be nullary).
    BadSection(String),
    /// A parallel section's body is not a single counted loop.
    SectionShape(String),
    /// The commutativity analysis rejected the section's loop.
    NotParallelizable {
        /// The section.
        section: String,
        /// Diagnostics from the analysis.
        reasons: Vec<String>,
    },
    /// An `extern` has no registered host implementation.
    MissingHostFn(String),
    /// The compile options named no policies to multi-version.
    NoPolicies,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadSection(s) => {
                write!(f, "section `{s}` is not a nullary free function")
            }
            CompileError::SectionShape(s) => {
                write!(f, "parallel section `{s}` must consist of exactly one counted for-loop")
            }
            CompileError::NotParallelizable { section, reasons } => {
                write!(f, "section `{section}` is not parallelizable: {}", reasons.join("; "))
            }
            CompileError::MissingHostFn(name) => {
                write!(f, "extern `{name}` has no host implementation")
            }
            CompileError::NoPolicies => {
                write!(f, "compile options must name at least one policy")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Lowered bytecode of one section version.
#[derive(Debug, Clone)]
pub struct VmCode {
    /// Module with one lowered function per [`VersionCode::functions`]
    /// entry (same indices), plus the iteration body appended as a
    /// pseudo-function.
    pub module: VmModule,
    /// Index of the iteration-body pseudo-function in `module`.
    pub body_fn: usize,
    /// `module` compiled to fused closures (the native tier; same
    /// function indices). Shared, because version code is cloneable but
    /// the fused closures are immutable once built.
    pub native: Arc<NativeModule>,
}

/// Source-level critical-region provenance for one lock class in one code
/// version: which default regions (named at lock placement, `"{method}#{k}"`)
/// guard objects of that class after the policy's transformations ran.
/// Coalesced regions list every constituent source region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Name of the class whose per-object lock the regions acquire.
    pub class: String,
    /// Source-region tags, in first-appearance order, deduplicated.
    pub sources: Vec<String>,
}

/// Collect per-class region provenance from a statement list (one entry per
/// lock class, sources unioned in first-appearance order). Returns the
/// number of critical statements visited, which `compile` asserts against
/// [`syncopt::count_regions`] — the two walkers must agree on what a
/// region is, or per-region metrics would silently mis-attribute.
fn collect_regions(
    stmts: &[Stmt],
    classes: &[dynfb_lang::hir::Class],
    out: &mut Vec<RegionInfo>,
) -> usize {
    let mut visited = 0;
    for s in stmts {
        match s {
            Stmt::Critical { lock_obj, body, regions } => {
                visited += 1;
                if let Ty::Object(cid) = lock_obj.ty {
                    let class = &classes[cid.0].name;
                    let entry = match out.iter_mut().find(|r| &r.class == class) {
                        Some(e) => e,
                        None => {
                            out.push(RegionInfo { class: class.clone(), sources: Vec::new() });
                            out.last_mut().expect("just pushed")
                        }
                    };
                    for tag in regions {
                        if !entry.sources.contains(tag) {
                            entry.sources.push(tag.clone());
                        }
                    }
                }
                visited += collect_regions(body, classes, out);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                visited += collect_regions(then_branch, classes, out);
                visited += collect_regions(else_branch, classes, out);
            }
            Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => {
                visited += collect_regions(body, classes, out);
            }
            _ => {}
        }
    }
    visited
}

/// One generated code version of a parallel section.
#[derive(Debug, Clone)]
pub struct VersionCode {
    /// Version name: the policies that share this code, joined with `+`
    /// (e.g. `"bounded+aggressive"`).
    pub name: String,
    /// Complete function table for this version (originals + clones).
    pub functions: Vec<Function>,
    /// The parallel loop's induction variable slot (in the section fn).
    pub var: LocalId,
    /// Loop start expression.
    pub start: Expr,
    /// Loop bound expression.
    pub bound: Expr,
    /// Loop body (one iteration).
    pub body: Vec<Stmt>,
    /// Types of the section function's locals (iteration frame layout).
    pub locals_ty: Vec<Ty>,
    /// Bytecode for the fast execution tier.
    pub vm: VmCode,
    /// Per-lock-class source-region provenance of this version (one entry
    /// per class with critical regions reachable from the loop body).
    pub regions: Vec<RegionInfo>,
}

impl VersionCode {
    /// Code size (bytes) of the loop body plus all reachable functions.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let mut total = body_size(&self.body) * NODE_BYTES;
        for (_, f) in self.reachable_functions() {
            total += FUNC_BYTES + body_size(&f.body) * NODE_BYTES;
        }
        total
    }

    /// Functions reachable from the loop body, with indices.
    #[must_use]
    pub fn reachable_functions(&self) -> Vec<(usize, &Function)> {
        let mut roots = Vec::new();
        crate::callgraph::collect_calls_stmts(&self.body, &mut roots);
        let mut seen = vec![false; self.functions.len()];
        let mut stack: Vec<usize> = roots.iter().map(|f| f.0).collect();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if i >= seen.len() || seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(i);
            let mut calls = Vec::new();
            crate::callgraph::collect_calls_stmts(&self.functions[i].body, &mut calls);
            stack.extend(calls.iter().map(|f| f.0));
        }
        out.sort_unstable();
        out.into_iter().map(|i| (i, &self.functions[i])).collect()
    }

    /// A canonical structural fingerprint, stable across differing clone
    /// indices, used to detect when two policies generate identical code.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut names: HashMap<usize, String> = HashMap::new();
        for (i, f) in self.reachable_functions() {
            names.insert(i, f.name.clone());
        }
        let render = |s: &dyn fmt::Debug| -> String {
            let mut text = format!("{s:?}");
            // Longest ids first so `FuncId(1)` never clobbers `FuncId(12)`.
            let mut ids: Vec<&usize> = names.keys().collect();
            ids.sort_by_key(|i| std::cmp::Reverse(i.to_string().len()));
            for i in ids {
                text = text.replace(&format!("FuncId({i})"), &format!("Fn<{}>", names[i]));
            }
            text
        };
        let mut out = render(&self.body);
        let mut fns = self.reachable_functions();
        fns.sort_by(|a, b| a.1.name.cmp(&b.1.name));
        for (_, f) in fns {
            out.push_str(&f.name);
            out.push_str(&render(&f.body));
        }
        out
    }
}

/// Code of one parallel section: all distinct versions plus the serial one.
#[derive(Debug, Clone)]
pub struct SectionCode {
    /// Section (function) name.
    pub name: String,
    /// Distinct versions, ordered least → most aggressive.
    pub versions: Vec<VersionCode>,
    /// The unsynchronized serial version.
    pub serial: VersionCode,
    /// The commutativity analysis outcome that licensed parallelization.
    pub report: CommutativityReport,
}

/// Code sizes of the different builds (the Table 1 reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSizeReport {
    /// The original serial program.
    pub serial: usize,
    /// Build with the Original policy only.
    pub original: usize,
    /// Build with the Bounded policy only.
    pub bounded: usize,
    /// Build with the Aggressive policy only.
    pub aggressive: usize,
    /// The dynamic-feedback build (all versions, shared code deduplicated).
    pub dynamic: usize,
}

/// A compiled, multi-version application, runnable on the simulator.
pub struct CompiledApp {
    name: String,
    plan: Vec<PlanEntry>,
    /// Base (serial) function table, used by serial sections.
    serial_funcs: Vec<Function>,
    /// `serial_funcs` lowered to bytecode (the VM tier of serial sections).
    vm_serial: VmModule,
    /// `vm_serial` compiled to fused closures (the native tier of serial
    /// sections).
    native_serial: Arc<NativeModule>,
    sections: HashMap<String, SectionCode>,
    env: ProgramEnv,
    cost: CostModel,
    fuel: u64,
    max_objects: usize,
    lock_base: Option<LockId>,
    /// Per-section (start, count) of the active parallel execution.
    active: HashMap<String, (i64, usize)>,
    hir: Hir,
    /// Which tier executes compiled code (the native tier by default).
    tier: ExecTier,
    /// Register-stack scratch shared by the VM and native tiers, reused
    /// across runs and iterations.
    vm_regs: Vec<Value>,
}

impl fmt::Debug for CompiledApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledApp")
            .field("name", &self.name)
            .field("sections", &self.sections.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

/// Compile a program.
///
/// # Errors
///
/// Returns a [`CompileError`] when a section is missing or malformed, an
/// extern lacks a host implementation, or — most importantly — when the
/// commutativity analysis cannot prove a parallel section's operations
/// commute.
pub fn compile(
    hir: Hir,
    options: CompileOptions,
    mut host: HostRegistry,
) -> Result<CompiledApp, CompileError> {
    // Externs must all be implemented; resolve them to dense indices now
    // so no run pays the name lookup.
    for e in &hir.externs {
        if !host.contains(&e.name) {
            return Err(CompileError::MissingHostFn(e.name.clone()));
        }
    }
    host.link(&hir.externs);
    let callgraph = CallGraph::build(&hir);
    let effects = EffectsMap::build(&hir, &callgraph);

    // Locate and validate sections.
    let mut parallel_sections: Vec<(String, usize)> = Vec::new();
    for entry in &options.plan {
        let func = hir
            .function_named(&entry.name)
            .ok_or_else(|| CompileError::BadSection(entry.name.clone()))?;
        if hir.functions[func.0].num_params != 0 {
            return Err(CompileError::BadSection(entry.name.clone()));
        }
        if entry.kind == SectionKind::Parallel
            && !parallel_sections.iter().any(|(n, _)| n == &entry.name)
        {
            parallel_sections.push((entry.name.clone(), func.0));
        }
    }

    // Commutativity analysis per parallel section.
    let mut reports: HashMap<String, CommutativityReport> = HashMap::new();
    for (name, func) in &parallel_sections {
        let body = &hir.functions[*func].body;
        let [Stmt::CountedFor { body: loop_body, .. }] = body.as_slice() else {
            return Err(CompileError::SectionShape(name.clone()));
        };
        let report = analyze_extent(&hir, &callgraph, &effects, loop_body);
        if !report.parallelizable {
            return Err(CompileError::NotParallelizable {
                section: name.clone(),
                reasons: report.reasons.clone(),
            });
        }
        reports.insert(name.clone(), report);
    }

    // Default lock placement: regions in every extent updater.
    let mut locked = hir.functions.clone();
    for report in reports.values() {
        for &u in &report.updaters {
            insert_default_regions(&mut locked[u.0]);
        }
    }

    // Policy builds: one optimized function set per distinct policy, in
    // the order the options list them (sampling order).
    let mut policies: Vec<Policy> = Vec::new();
    for p in &options.policies {
        if !policies.contains(p) {
            policies.push(*p);
        }
    }
    if policies.is_empty() {
        return Err(CompileError::NoPolicies);
    }
    let section_fn_idxs: Vec<usize> = parallel_sections.iter().map(|(_, f)| *f).collect();
    let mut policy_sets: Vec<(Policy, FnSet)> = Vec::new();
    for &policy in &policies {
        let mut set = FnSet::new(locked.clone());
        optimize(&mut set, policy, &section_fn_idxs);
        policy_sets.push((policy, set));
    }

    // Assemble section codes with version deduplication.
    let cost = options.cost;
    let mut sections = HashMap::new();
    for (name, func) in &parallel_sections {
        let extract = |funcs: &[Function]| -> VersionCode {
            let f = &funcs[*func];
            let [Stmt::CountedFor { var, start, bound, body }] = f.body.as_slice() else {
                unreachable!("validated above; policies preserve the loop shape");
            };
            let locals_ty: Vec<Ty> = f.locals.iter().map(|l| l.ty.clone()).collect();
            let mut module = lower_functions(funcs);
            let body_fn = module.funcs.len();
            module.funcs.push(lower_body("$body", body, &locals_ty));
            let native = compile_native(&module, &cost);
            let mut vc = VersionCode {
                name: String::new(),
                functions: funcs.to_vec(),
                var: *var,
                start: start.clone(),
                bound: bound.clone(),
                body: body.clone(),
                locals_ty,
                vm: VmCode { module, body_fn, native },
                regions: Vec::new(),
            };
            // Region provenance: every critical region reachable from the
            // loop body, grouped by lock class. `reachable_functions` is
            // index-sorted, so collection order is deterministic.
            let mut regions = Vec::new();
            let mut visited = collect_regions(&vc.body, &hir.classes, &mut regions);
            let mut counted = crate::syncopt::count_regions(&vc.body);
            for (_, f) in vc.reachable_functions() {
                visited += collect_regions(&f.body, &hir.classes, &mut regions);
                counted += crate::syncopt::count_regions(&f.body);
            }
            // The provenance walker and `syncopt::count_regions` traverse
            // independently; if a new statement form reaches only one of
            // them, per-region metrics would silently drop regions.
            assert_eq!(
                visited, counted,
                "region provenance walker disagrees with count_regions \
                 (section `{}`): {visited} visited vs {counted} counted",
                f.name
            );
            vc.regions = regions;
            vc
        };
        let mut versions: Vec<VersionCode> = Vec::new();
        for (policy, set) in &policy_sets {
            let mut vc = extract(&set.functions);
            vc.name = policy.name();
            let fp = vc.fingerprint();
            if let Some(existing) = versions.iter_mut().find(|v| v.fingerprint() == fp) {
                existing.name = format!("{}+{}", existing.name, policy.name());
            } else {
                versions.push(vc);
            }
        }
        let mut serial = extract(&hir.functions);
        serial.name = "serial".to_string();
        sections.insert(
            name.clone(),
            SectionCode {
                name: name.clone(),
                versions,
                serial,
                report: reports.remove(name).expect("analyzed"),
            },
        );
    }

    let globals = hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect();
    let vm_serial = lower_functions(&hir.functions);
    let native_serial = compile_native(&vm_serial, &cost);
    Ok(CompiledApp {
        name: options.name,
        plan: options.plan,
        vm_serial,
        native_serial,
        serial_funcs: hir.functions.clone(),
        sections,
        env: ProgramEnv {
            classes: hir.classes.clone(),
            externs: hir.externs.clone(),
            globals,
            heap: Heap::default(),
            host,
        },
        cost: options.cost,
        fuel: options.fuel,
        max_objects: options.max_objects,
        lock_base: None,
        active: HashMap::new(),
        hir,
        tier: ExecTier::default(),
        vm_regs: Vec::new(),
    })
}

impl CompiledApp {
    /// The compiled sections (inspection / reporting).
    #[must_use]
    pub fn sections(&self) -> &HashMap<String, SectionCode> {
        &self.sections
    }

    /// The active execution tier.
    #[must_use]
    pub fn exec_tier(&self) -> ExecTier {
        self.tier
    }

    /// Select the execution tier: fused native closures (default), the
    /// bytecode VM, or the tree-walking oracle. All three emit
    /// bit-identical step sequences, so switching tiers never changes
    /// simulation results — only how fast the host produces them.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    /// The analyzed HIR.
    #[must_use]
    pub fn hir(&self) -> &Hir {
        &self.hir
    }

    /// Current program heap (to inspect results after a run).
    #[must_use]
    pub fn heap(&self) -> &Heap {
        &self.env.heap
    }

    /// Current global values.
    #[must_use]
    pub fn globals(&self) -> &[Value] {
        &self.env.globals
    }

    /// Base index of this app's per-object lock pool in the machine's lock
    /// table (`None` until `setup` has run). Object id `i`'s lock is machine
    /// lock `base + i`.
    #[must_use]
    pub fn lock_pool_base(&self) -> Option<usize> {
        self.lock_base.map(LockId::index)
    }

    /// Source-level label for each live heap object's lock under one
    /// section version: `"{class}:{tag+tag+...}"` when that version has
    /// critical regions on the object's class, or the bare class name
    /// otherwise (e.g. the serial version, which holds no locks). Index in
    /// the returned vector = object id = offset from
    /// [`lock_pool_base`](Self::lock_pool_base).
    ///
    /// # Panics
    ///
    /// Panics if `section` is not a compiled parallel section.
    #[must_use]
    pub fn lock_region_labels(&self, section: &str, version: usize) -> Vec<String> {
        let sc = &self.sections[section];
        let vc = if version >= sc.versions.len() { &sc.serial } else { &sc.versions[version] };
        self.env
            .heap
            .objects
            .iter()
            .map(|o| {
                let class = &self.hir.classes[o.class].name;
                match vc.regions.iter().find(|r| &r.class == class) {
                    Some(r) if !r.sources.is_empty() => {
                        format!("{class}:{}", r.sources.join("+"))
                    }
                    _ => class.clone(),
                }
            })
            .collect()
    }

    /// Execute a nullary function outside the simulation (for test
    /// harnesses that need to pre-build state; costs are discarded).
    ///
    /// # Panics
    ///
    /// Panics if the function is missing or fails at runtime.
    pub fn run_function_unsimulated(&mut self, name: &str) {
        let func = self.hir.function_named(name).expect("function exists");
        let mut sink = OpSink::default();
        let mut interp = Interp {
            env: &mut self.env,
            funcs: &self.serial_funcs,
            cost: self.cost,
            sink: &mut sink,
            lock_base: self.lock_base.unwrap_or_else(|| {
                // Outside a simulation there is no machine; use a dummy pool.
                let mut m = Machine::new(dynfb_sim::MachineConfig::default());
                m.add_locks(1)
            }),
            lock_capacity: self.max_objects,
            fuel: self.fuel,
        };
        interp.call(func.0, None, vec![]).unwrap_or_else(|e| panic!("`{name}` failed: {e}"));
    }

    /// Per-section, per-version code sizes `(section, version, bytes)`,
    /// sections in name order — the code-size axis for arbitrary policy
    /// families (the classic-triple view is [`code_sizes`](Self::code_sizes)).
    #[must_use]
    pub fn version_code_sizes(&self) -> Vec<(String, String, usize)> {
        let mut names: Vec<&String> = self.sections.keys().collect();
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let s = &self.sections[name];
            for v in &s.versions {
                out.push((s.name.clone(), v.name.clone(), v.size_bytes()));
            }
        }
        out
    }

    /// The Table 1 code-size report for this application. Requires a build
    /// whose policy family includes the classic triple (the default).
    #[must_use]
    pub fn code_sizes(&self) -> CodeSizeReport {
        let serial: usize =
            self.serial_funcs.iter().map(|f| FUNC_BYTES + body_size(&f.body) * NODE_BYTES).sum();
        let policy_size = |policy: &str| -> usize {
            let mut total = serial;
            for s in self.sections.values() {
                let v = s
                    .versions
                    .iter()
                    .find(|v| v.name.split('+').any(|p| p == policy))
                    .expect("every policy maps to a version");
                total += v.size_bytes();
            }
            total
        };
        // Dynamic build: all distinct versions, with identical functions
        // shared across versions of a section (closed-subgraph sharing).
        let mut dynamic = serial;
        for s in self.sections.values() {
            let mut seen: Vec<String> = Vec::new();
            for v in &s.versions {
                dynamic += body_size(&v.body) * NODE_BYTES;
                for (_, f) in v.reachable_functions() {
                    let fp = format!("{}{:?}", f.name, f.body);
                    if !seen.contains(&fp) {
                        seen.push(fp);
                        dynamic += FUNC_BYTES + body_size(&f.body) * NODE_BYTES;
                    }
                }
            }
        }
        CodeSizeReport {
            serial,
            original: policy_size("original"),
            bounded: policy_size("bounded"),
            aggressive: policy_size("aggressive"),
            dynamic,
        }
    }

    fn interp<'a>(
        env: &'a mut ProgramEnv,
        funcs: &'a [Function],
        cost: CostModel,
        fuel: u64,
        lock_base: LockId,
        lock_capacity: usize,
        sink: &'a mut OpSink,
    ) -> Interp<'a> {
        Interp { env, funcs, cost, sink, lock_base, lock_capacity, fuel }
    }
}

impl SimApp for CompiledApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, machine: &mut Machine) {
        self.lock_base = Some(machine.add_locks(self.max_objects));
    }

    fn plan(&self) -> Vec<PlanEntry> {
        self.plan.clone()
    }

    fn versions(&self, section: &str) -> Vec<String> {
        self.sections[section].versions.iter().map(|v| v.name.clone()).collect()
    }

    fn version_for_policy(&self, section: &str, policy: &str) -> Option<usize> {
        let s = &self.sections[section];
        if policy == "serial" {
            return Some(s.versions.len());
        }
        s.versions.iter().position(|v| v.name.split('+').any(|p| p == policy))
    }

    fn emit_serial(&mut self, section: &str, ops: &mut OpSink) {
        let func = self.hir.function_named(section).expect("validated at compile time");
        let lock_base = self.lock_base.expect("setup ran");
        let CompiledApp {
            env,
            serial_funcs,
            vm_serial,
            native_serial,
            vm_regs,
            cost,
            fuel,
            max_objects,
            tier,
            ..
        } = self;
        let result = match tier {
            ExecTier::Native => NativeExec {
                env,
                module: native_serial,
                sink: ops,
                lock_base,
                lock_capacity: *max_objects,
                fuel: *fuel,
                regs: vm_regs,
            }
            .call(func.0, None, &[])
            .map(|_| ()),
            ExecTier::Vm => Vm {
                env,
                module: vm_serial,
                cost: *cost,
                sink: ops,
                lock_base,
                lock_capacity: *max_objects,
                fuel: *fuel,
                regs: vm_regs,
            }
            .call(func.0, None, &[])
            .map(|_| ()),
            ExecTier::Tree => {
                Self::interp(env, serial_funcs, *cost, *fuel, lock_base, *max_objects, ops)
                    .call(func.0, None, vec![])
                    .map(|_| ())
            }
        };
        result.unwrap_or_else(|e| panic!("serial section `{section}` failed: {e}"));
    }

    fn begin_parallel(&mut self, section: &str) -> usize {
        let lock_base = self.lock_base.expect("setup ran");
        let (start, bound) = {
            let CompiledApp { env, serial_funcs, sections, cost, fuel, max_objects, .. } = self;
            let sc = &sections[section];
            let mut sink = OpSink::default();
            let mut interp =
                Self::interp(env, serial_funcs, *cost, *fuel, lock_base, *max_objects, &mut sink);
            // Loop bounds are evaluated once, at section entry, by storing
            // each into a fresh one-slot frame.
            let eval_expr = |interp: &mut Interp<'_>, e: &Expr| -> i64 {
                let body = [Stmt::Assign {
                    place: dynfb_lang::hir::Place::Local(LocalId(0)),
                    value: e.clone(),
                }];
                let locals = interp
                    .exec_body(&body, vec![Value::Int(0)], None)
                    .unwrap_or_else(|err| panic!("loop bound evaluation failed: {err}"));
                locals[0].as_int().expect("loop bounds are ints")
            };
            (eval_expr(&mut interp, &sc.serial.start), eval_expr(&mut interp, &sc.serial.bound))
        };
        let count = usize::try_from((bound - start).max(0)).unwrap_or(0);
        self.active.insert(section.to_string(), (start, count));
        count
    }

    fn emit_iteration(&mut self, section: &str, version: usize, iter: usize, ops: &mut OpSink) {
        let (start, _count) = self.active[section];
        let lock_base = self.lock_base.expect("setup ran");
        let CompiledApp { env, sections, vm_regs, cost, fuel, max_objects, tier, .. } = self;
        let sc = &sections[section];
        let vc = if version == sc.versions.len() { &sc.serial } else { &sc.versions[version] };
        let value = start + iter as i64;
        let result = match tier {
            ExecTier::Native => NativeExec {
                env,
                module: &vc.vm.native,
                sink: ops,
                lock_base,
                lock_capacity: *max_objects,
                fuel: *fuel,
                regs: vm_regs,
            }
            .exec_iteration(vc.vm.body_fn, vc.var.0, value),
            ExecTier::Vm => Vm {
                env,
                module: &vc.vm.module,
                cost: *cost,
                sink: ops,
                lock_base,
                lock_capacity: *max_objects,
                fuel: *fuel,
                regs: vm_regs,
            }
            .exec_iteration(vc.vm.body_fn, vc.var.0, value),
            ExecTier::Tree => {
                let mut locals: Vec<Value> = vc.locals_ty.iter().map(Value::default_for).collect();
                locals[vc.var.0] = Value::Int(value);
                let mut interp = Interp {
                    env,
                    funcs: &vc.functions,
                    cost: *cost,
                    sink: ops,
                    lock_base,
                    lock_capacity: *max_objects,
                    fuel: *fuel,
                };
                interp.exec_body(&vc.body, locals, None).map(|_| ())
            }
        };
        result.unwrap_or_else(|e| panic!("iteration {iter} of `{section}` failed: {e}"));
    }
}
