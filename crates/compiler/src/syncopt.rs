//! Synchronization optimization policies (§3 of the paper).
//!
//! Computations that repeatedly release and reacquire the same lock can
//! have the intermediate release/acquire pairs eliminated, coalescing many
//! small critical regions into fewer larger ones. Three transformations
//! implement this on the HIR:
//!
//! * **merge** — adjacent critical regions on the same lock, separated only
//!   by synchronization-free code, become one region (absorbing the code in
//!   between — the source of *false exclusion*);
//! * **hoist** — a loop whose body is a single critical region on a
//!   loop-invariant lock moves the acquire/release out of the loop
//!   (the paper's Figure 1 → Figure 2 transformation);
//! * **lift** — an interprocedural transformation: a call to a method whose
//!   synchronization footprint is entirely its own receiver's lock is
//!   replaced by a critical region on the receiver around a call to an
//!   automatically generated *unsynchronized clone* of the method (and,
//!   transitively, of its callees).
//!
//! The *policies* differ in when the transformations apply. The paper's
//! fixed triple:
//!
//! * [`Policy::Original`] — never; keep the default placement.
//! * [`Policy::Bounded`] — only if the new critical region contains no
//!   cycles in the call graph (bounding the dynamic size of the region and
//!   hence the severity of any false exclusion).
//! * [`Policy::Aggressive`] — always.
//!
//! plus a parameterized family interpolating between them:
//!
//! * [`Policy::BoundedK`] — the Bounded rule *and* a static size budget:
//!   the candidate region (its statements plus every function reachable
//!   from them) must be at most `k` HIR nodes. Small `k` stops the merge
//!   cascade early; `k = ∞` degenerates to Bounded.
//! * [`Policy::Hybrid`] — a per-lock-class mix: classes whose bit is set
//!   in the mask get the Aggressive rule, every other class the Bounded
//!   rule. The lock class of a candidate region is the static class of its
//!   lock object, the same provenance `Stmt::Critical.regions` carries to
//!   the profile layer.
//!
//! By construction the transformations never nest critical regions, so the
//! generated code cannot deadlock on object locks.

use dynfb_lang::hir::{body_size, Expr, ExprKind, Function, Stmt, Ty};
use std::collections::HashMap;

/// A synchronization optimization policy.
///
/// Variant order is least → most aggressive, and the derived `Ord` agrees
/// (`BoundedK` sorts by `k`, `Hybrid` by mask — more aggressive classes
/// compare greater for the masks the generated family uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Policy {
    /// Never apply the transformations (default lock placement).
    Original,
    /// Apply only when the new region contains no call-graph cycles *and*
    /// is at most `k` HIR nodes (statements plus reachable callees).
    BoundedK(u32),
    /// Apply only when the new region contains no call-graph cycles.
    Bounded,
    /// Per-lock-class mix: Aggressive for classes in the mask, Bounded
    /// otherwise.
    Hybrid {
        /// Bit `c` set ⇒ lock class `c` (by `ClassId` index) uses the
        /// Aggressive rule. Classes beyond bit 63 fall back to Bounded.
        aggressive_classes: u64,
    },
    /// Always apply.
    Aggressive,
}

impl Policy {
    /// The paper's classic triple, least to most aggressive.
    pub const ALL: [Policy; 3] = [Policy::Original, Policy::Bounded, Policy::Aggressive];

    /// Lower-case policy name (matches the runtime's policy strings).
    /// Classic names are unchanged; the family adds `bounded{k}` and
    /// `hybrid{mask}`.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Policy::Original => "original".to_string(),
            Policy::Bounded => "bounded".to_string(),
            Policy::Aggressive => "aggressive".to_string(),
            Policy::BoundedK(k) => format!("bounded{k}"),
            Policy::Hybrid { aggressive_classes } => format!("hybrid{aggressive_classes}"),
        }
    }

    /// The standard parameterized family for a program with `num_classes`
    /// lock classes: the classic triple, six size budgets, and every
    /// non-degenerate per-class hybrid (mask 0 ≡ Bounded and the full mask
    /// ≡ Aggressive are omitted; hybrids are only generated for 2–6
    /// classes to keep the family bounded). Ordered least → most
    /// aggressive, with Original first — the runtime treats policy 0 as
    /// the safe fallback.
    #[must_use]
    pub fn family(num_classes: usize) -> Vec<Policy> {
        let mut out = vec![Policy::Original];
        out.extend([4u32, 8, 16, 32, 64, 128].map(Policy::BoundedK));
        out.push(Policy::Bounded);
        if (2..=6).contains(&num_classes) {
            for mask in 1..(1u64 << num_classes) - 1 {
                out.push(Policy::Hybrid { aggressive_classes: mask });
            }
        }
        out.push(Policy::Aggressive);
        out
    }
}

/// A mutable set of functions being transformed under one policy.
///
/// Indices into `functions` match the source HIR for the original
/// functions; unsynchronized clones generated by the *lift* transformation
/// are appended at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSet {
    /// Function bodies (original + generated clones).
    pub functions: Vec<Function>,
    /// `nosync[f]` is the index of `f`'s unsynchronized clone, if created.
    nosync: HashMap<usize, usize>,
}

impl FnSet {
    /// Start from the (lock-placed) source functions.
    #[must_use]
    pub fn new(functions: Vec<Function>) -> Self {
        FnSet { functions, nosync: HashMap::new() }
    }
}

/// Per-iteration analysis facts about a [`FnSet`].
struct Facts {
    /// Function body (or a transitive callee) contains a critical region.
    synced: Vec<bool>,
    /// Function can reach a call-graph cycle (including being recursive).
    reaches_cycle: Vec<bool>,
    /// All synchronization in the function is on its own `this`, and every
    /// call to a synced function is a `this`-receiver statement call.
    this_only: Vec<bool>,
}

fn compute_facts(set: &FnSet) -> Facts {
    let n = set.functions.len();
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in set.functions.iter().enumerate() {
        let mut out = Vec::new();
        crate::callgraph::collect_calls_stmts(&f.body, &mut out);
        let mut uniq = Vec::new();
        for c in out {
            if c.0 < n && !uniq.contains(&c.0) {
                uniq.push(c.0);
            }
        }
        callees[i] = uniq;
    }
    // synced: fixpoint.
    let mut synced: Vec<bool> = set.functions.iter().map(|f| contains_critical(&f.body)).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !synced[i] && callees[i].iter().any(|&c| synced[c]) {
                synced[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // reaches_cycle.
    let mut on_cycle = vec![false; n];
    for i in 0..n {
        // i is on a cycle iff reachable from its own callees.
        let mut seen = vec![false; n];
        let mut stack = callees[i].clone();
        while let Some(f) = stack.pop() {
            if f == i {
                on_cycle[i] = true;
                break;
            }
            if seen[f] {
                continue;
            }
            seen[f] = true;
            stack.extend(callees[f].iter().copied());
        }
    }
    let mut reaches_cycle = vec![false; n];
    for (i, reaches) in reaches_cycle.iter_mut().enumerate() {
        let mut seen = vec![false; n];
        let mut stack = vec![i];
        while let Some(f) = stack.pop() {
            if seen[f] {
                continue;
            }
            seen[f] = true;
            if on_cycle[f] {
                *reaches = true;
                break;
            }
            stack.extend(callees[f].iter().copied());
        }
    }
    // this_only: coinductive fixpoint, start optimistic.
    let mut this_only = vec![true; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if !this_only[i] {
                continue;
            }
            if !this_only_sync_body(&set.functions[i].body, &synced, &this_only) {
                this_only[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Facts { synced, reaches_cycle, this_only }
}

/// Append each tag of `more` not already present — the order-preserving
/// union used when coalescing regions keeps their provenance.
fn extend_unique(into: &mut Vec<String>, more: &[String]) {
    for tag in more {
        if !into.contains(tag) {
            into.push(tag.clone());
        }
    }
}

/// Collect the region tags of every critical region in `stmts`, recursing
/// through control flow and nested regions, in source order.
fn collect_region_tags(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Critical { body, regions, .. } => {
                extend_unique(out, regions);
                collect_region_tags(body, out);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_region_tags(then_branch, out);
                collect_region_tags(else_branch, out);
            }
            Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => {
                collect_region_tags(body, out);
            }
            _ => {}
        }
    }
}

fn contains_critical(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Critical { .. } => true,
        Stmt::If { then_branch, else_branch, .. } => {
            contains_critical(then_branch) || contains_critical(else_branch)
        }
        Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => contains_critical(body),
        _ => false,
    })
}

/// Check the `this_only` property over one body, assuming `assumed` for
/// callees (coinduction handles recursion).
fn this_only_sync_body(stmts: &[Stmt], synced: &[bool], assumed: &[bool]) -> bool {
    // Any call to a synced function must be a statement-level method call on
    // `this` to a this_only callee; criticals must lock `this`.
    fn expr_calls_synced(e: &Expr, synced: &[bool]) -> bool {
        let mut bad = false;
        crate::effects::visit_exprs(e, &mut |x| match &x.kind {
            ExprKind::CallFn { func, .. } | ExprKind::CallMethod { func, .. }
                if synced.get(func.0).copied().unwrap_or(false) =>
            {
                bad = true;
            }
            _ => {}
        });
        bad
    }
    fn ok_stmts(stmts: &[Stmt], synced: &[bool], assumed: &[bool]) -> bool {
        stmts.iter().all(|s| match s {
            Stmt::Critical { lock_obj, body, .. } => {
                matches!(lock_obj.kind, ExprKind::This) && ok_stmts(body, synced, assumed)
            }
            Stmt::Expr(e) => match &e.kind {
                ExprKind::CallMethod { obj, func, args } => {
                    let callee_synced = synced.get(func.0).copied().unwrap_or(false);
                    if callee_synced
                        && (!matches!(obj.kind, ExprKind::This)
                            || !assumed.get(func.0).copied().unwrap_or(false))
                    {
                        return false;
                    }
                    args.iter().all(|a| !expr_calls_synced(a, synced))
                }
                _ => !expr_calls_synced(e, synced),
            },
            Stmt::Assign { value, .. } => !expr_calls_synced(value, synced),
            Stmt::If { cond, then_branch, else_branch } => {
                !expr_calls_synced(cond, synced)
                    && ok_stmts(then_branch, synced, assumed)
                    && ok_stmts(else_branch, synced, assumed)
            }
            Stmt::While { cond, body } => {
                !expr_calls_synced(cond, synced) && ok_stmts(body, synced, assumed)
            }
            Stmt::CountedFor { start, bound, body, .. } => {
                !expr_calls_synced(start, synced)
                    && !expr_calls_synced(bound, synced)
                    && ok_stmts(body, synced, assumed)
            }
            Stmt::Return(Some(e)) => !expr_calls_synced(e, synced),
            Stmt::Return(None) => true,
        })
    }
    ok_stmts(stmts, synced, assumed)
}

/// A statement is *absorbable* into a critical region if it contains no
/// synchronization at all: no critical region and no call to a synced
/// function.
fn absorbable(s: &Stmt, synced: &[bool]) -> bool {
    !contains_critical(std::slice::from_ref(s)) && {
        let mut calls = Vec::new();
        crate::callgraph::collect_calls_stmts(std::slice::from_ref(s), &mut calls);
        calls.iter().all(|f| !synced.get(f.0).copied().unwrap_or(false))
    }
}

/// Static lock class of a lock-object expression (its declared object
/// type), the key the [`Policy::Hybrid`] mask is indexed by.
fn lock_class(lock: &Expr) -> Option<usize> {
    match lock.ty {
        Ty::Object(cid) => Some(cid.0),
        _ => None,
    }
}

/// Static size proxy (HIR nodes) for the dynamic extent of a candidate
/// region: the statements themselves plus every function transitively
/// reachable from them — what [`Policy::BoundedK`]'s budget is checked
/// against.
fn region_size(stmts: &[Stmt], funcs: &[Function]) -> usize {
    let mut total = body_size(stmts);
    let mut calls = Vec::new();
    crate::callgraph::collect_calls_stmts(stmts, &mut calls);
    let mut seen = vec![false; funcs.len()];
    let mut stack: Vec<usize> = calls.iter().map(|f| f.0).collect();
    while let Some(f) = stack.pop() {
        if f >= funcs.len() || seen[f] {
            continue;
        }
        seen[f] = true;
        total += body_size(&funcs[f].body);
        let mut inner = Vec::new();
        crate::callgraph::collect_calls_stmts(&funcs[f].body, &mut inner);
        stack.extend(inner.iter().map(|c| c.0));
    }
    total
}

/// The policy decision on a candidate region, given the facts that matter:
/// its lock class, whether it is free of call-graph cycles, and its static
/// size (computed lazily — only [`Policy::BoundedK`] reads it).
fn policy_allows(
    policy: Policy,
    class: Option<usize>,
    no_cycles: bool,
    size: impl FnOnce() -> usize,
) -> bool {
    match policy {
        Policy::Original => false,
        Policy::Aggressive => true,
        Policy::Bounded => no_cycles,
        Policy::BoundedK(k) => no_cycles && size() <= k as usize,
        Policy::Hybrid { aggressive_classes } => match class {
            Some(c) if c < 64 && aggressive_classes >> c & 1 == 1 => true,
            _ => no_cycles,
        },
    }
}

/// Is forming a region over these statements, locking an object of
/// `class`, acceptable under the policy?
fn region_ok(
    policy: Policy,
    class: Option<usize>,
    stmts: &[Stmt],
    facts: &Facts,
    funcs: &[Function],
) -> bool {
    let mut calls = Vec::new();
    crate::callgraph::collect_calls_stmts(stmts, &mut calls);
    let no_cycles = calls.iter().all(|f| !facts.reaches_cycle.get(f.0).copied().unwrap_or(true));
    policy_allows(policy, class, no_cycles, || region_size(stmts, funcs))
}

/// Locals referenced by an expression.
fn locals_in(e: &Expr, out: &mut Vec<usize>) {
    crate::effects::visit_exprs(e, &mut |x| {
        if let ExprKind::Local(l) = &x.kind {
            out.push(l.0);
        }
    });
}

/// Locals assigned anywhere in these statements.
fn assigned_locals(stmts: &[Stmt], out: &mut Vec<usize>) {
    for s in stmts {
        match s {
            Stmt::Assign { place: dynfb_lang::hir::Place::Local(l), .. } => out.push(l.0),
            Stmt::If { then_branch, else_branch, .. } => {
                assigned_locals(then_branch, out);
                assigned_locals(else_branch, out);
            }
            Stmt::While { body, .. } | Stmt::Critical { body, .. } => assigned_locals(body, out),
            Stmt::CountedFor { var, body, .. } => {
                out.push(var.0);
                assigned_locals(body, out);
            }
            _ => {}
        }
    }
}

/// Is the lock expression side-effect free (safe to evaluate twice) and
/// stable across `stmts` (no local it reads is assigned)?
fn lock_stable(lock: &Expr, stmts: &[Stmt]) -> bool {
    // Side-effect free: no calls, no allocation.
    let mut pure = true;
    crate::effects::visit_exprs(lock, &mut |x| {
        if matches!(
            x.kind,
            ExprKind::CallFn { .. }
                | ExprKind::CallMethod { .. }
                | ExprKind::CallExtern { .. }
                | ExprKind::New { .. }
                | ExprKind::NewArray { .. }
        ) {
            pure = false;
        }
    });
    if !pure {
        return false;
    }
    let mut used = Vec::new();
    locals_in(lock, &mut used);
    let mut assigned = Vec::new();
    assigned_locals(stmts, &mut assigned);
    used.iter().all(|l| !assigned.contains(l))
}

/// Apply a policy to a function set. `no_hoist_loops` lists functions whose
/// *top-level* loops must not be hoisted (the parallel loops themselves:
/// wrapping a parallel loop in one critical region would serialize the
/// whole computation rather than optimize an operation).
pub fn optimize(set: &mut FnSet, policy: Policy, no_hoist_loops: &[usize]) {
    if policy == Policy::Original {
        return;
    }
    for _round in 0..32 {
        let facts = compute_facts(set);
        let mut changed = false;
        for i in 0..set.functions.len() {
            let mut body = std::mem::take(&mut set.functions[i].body);
            let top_level_loops_frozen = no_hoist_loops.contains(&i);
            let mut ctx = Rewriter { set, policy, facts: &facts, changed: false };
            body = ctx.rewrite_list(body, top_level_loops_frozen);
            changed |= ctx.changed;
            set.functions[i].body = body;
        }
        if !changed {
            break;
        }
    }
}

struct Rewriter<'a> {
    set: &'a mut FnSet,
    policy: Policy,
    facts: &'a Facts,
    changed: bool,
}

impl<'a> Rewriter<'a> {
    /// Rewrite a statement list: recurse, lift, merge. `freeze_loops`
    /// disables hoisting of loops at this level (used for the top level of
    /// parallel-section functions).
    fn rewrite_list(&mut self, stmts: Vec<Stmt>, freeze_loops: bool) -> Vec<Stmt> {
        // 1. Rewrite children + apply lift/hoist per statement.
        let mut out: Vec<Stmt> = Vec::new();
        for s in stmts {
            out.push(self.rewrite_stmt(s, freeze_loops));
        }
        // 2. Merge adjacent regions in this list.
        self.merge_list(out)
    }

    fn rewrite_stmt(&mut self, s: Stmt, freeze_loops: bool) -> Stmt {
        match s {
            Stmt::If { cond, then_branch, else_branch } => Stmt::If {
                cond,
                then_branch: self.rewrite_list(then_branch, false),
                else_branch: self.rewrite_list(else_branch, false),
            },
            Stmt::While { cond, body } => {
                let body = self.rewrite_list(body, false);
                let rewritten = Stmt::While { cond, body };
                if freeze_loops {
                    rewritten
                } else {
                    self.try_hoist(rewritten)
                }
            }
            Stmt::CountedFor { var, start, bound, body } => {
                let body = self.rewrite_list(body, false);
                let rewritten = Stmt::CountedFor { var, start, bound, body };
                if freeze_loops {
                    rewritten
                } else {
                    self.try_hoist(rewritten)
                }
            }
            Stmt::Critical { lock_obj, body, regions } => {
                // Regions never contain synchronization; recurse only for
                // structural rewrites of plain statements.
                Stmt::Critical { lock_obj, body: self.rewrite_list(body, false), regions }
            }
            Stmt::Expr(e) => self.try_lift(Stmt::Expr(e)),
            other => other,
        }
    }

    /// The *lift* transformation on a statement-level method call.
    fn try_lift(&mut self, s: Stmt) -> Stmt {
        let Stmt::Expr(e) = &s else { return s };
        let ExprKind::CallMethod { obj, func, args } = &e.kind else {
            return s;
        };
        let fi = func.0;
        if !self.facts.synced.get(fi).copied().unwrap_or(false)
            || !self.facts.this_only.get(fi).copied().unwrap_or(false)
        {
            return s;
        }
        if !lock_stable(obj, &[]) {
            return s; // receiver expression must be evaluable twice
        }
        // The lifted region dynamically contains the callee (via its
        // unsynchronized clone), so the cycle fact and size proxy come
        // from the original call statement — callee and transitives
        // included.
        let no_cycles = !self.facts.reaches_cycle[fi];
        let allowed = policy_allows(self.policy, lock_class(obj), no_cycles, || {
            region_size(std::slice::from_ref(&s), &self.set.functions)
        });
        if !allowed {
            return s;
        }
        // The lifted region absorbs every source region reachable from the
        // callee (its synchronization moves, stripped, to this call site).
        let regions = self.transitive_region_tags(fi);
        let clone = self.nosync_clone(fi);
        let call = Expr {
            kind: ExprKind::CallMethod {
                obj: obj.clone(),
                func: dynfb_lang::hir::FuncId(clone),
                args: args.clone(),
            },
            ty: e.ty.clone(),
        };
        self.changed = true;
        Stmt::Critical { lock_obj: (**obj).clone(), body: vec![Stmt::Expr(call)], regions }
    }

    /// Region tags of every critical region reachable from function `fi`
    /// (its own body plus transitive callees) — the provenance a lifted
    /// region absorbs when the callee's synchronization moves to the call
    /// site. Deterministic DFS order, first occurrence wins.
    fn transitive_region_tags(&self, fi: usize) -> Vec<String> {
        let n = self.set.functions.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = vec![fi];
        while let Some(f) = stack.pop() {
            if f >= n || seen[f] {
                continue;
            }
            seen[f] = true;
            collect_region_tags(&self.set.functions[f].body, &mut out);
            let mut calls = Vec::new();
            crate::callgraph::collect_calls_stmts(&self.set.functions[f].body, &mut calls);
            stack.extend(calls.iter().map(|c| c.0));
        }
        out
    }

    /// The *hoist* transformation on a loop statement.
    fn try_hoist(&mut self, s: Stmt) -> Stmt {
        let body = match &s {
            Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => body,
            _ => return s,
        };
        // All top-level criticals must share one lock; everything else must
        // be absorbable.
        let mut lock: Option<Expr> = None;
        let mut n_regions = 0usize;
        let mut regions: Vec<String> = Vec::new();
        for st in body {
            match st {
                Stmt::Critical { lock_obj, regions: r, .. } => {
                    n_regions += 1;
                    extend_unique(&mut regions, r);
                    match &lock {
                        None => lock = Some(lock_obj.clone()),
                        Some(l) if l == lock_obj => {}
                        Some(_) => return s,
                    }
                }
                other => {
                    if !absorbable(other, &self.facts.synced) {
                        return s;
                    }
                }
            }
        }
        let Some(lock) = lock else { return s };
        if n_regions == 0 {
            return s;
        }
        // The lock must be invariant across the loop (including the
        // induction variable) and safe to evaluate outside it.
        let loop_stmts = std::slice::from_ref(&s);
        if !lock_stable(&lock, loop_stmts) {
            return s;
        }
        // Build the unwrapped loop.
        let unwrap = |body: &[Stmt]| -> Vec<Stmt> {
            let mut out = Vec::new();
            for st in body {
                match st {
                    Stmt::Critical { body, .. } => out.extend(body.iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            out
        };
        let hoisted_loop = match &s {
            Stmt::While { cond, body } => Stmt::While { cond: cond.clone(), body: unwrap(body) },
            Stmt::CountedFor { var, start, bound, body } => Stmt::CountedFor {
                var: *var,
                start: start.clone(),
                bound: bound.clone(),
                body: unwrap(body),
            },
            _ => unreachable!(),
        };
        let region = vec![hoisted_loop];
        if !region_ok(self.policy, lock_class(&lock), &region, self.facts, &self.set.functions) {
            return s;
        }
        self.changed = true;
        Stmt::Critical { lock_obj: lock, body: region, regions }
    }

    /// Merge adjacent criticals on the same lock within one list. The
    /// policy guard is checked on the *candidate* region before any
    /// mutation, so no rollback is needed.
    fn merge_list(&mut self, stmts: Vec<Stmt>) -> Vec<Stmt> {
        let mut out: Vec<Stmt> = Vec::new();
        for s in stmts {
            let Stmt::Critical { lock_obj, body, regions } = s else {
                out.push(s);
                continue;
            };
            // Look backwards past absorbable separators for a same-lock region.
            let mut k = out.len();
            while k > 0 && absorbable(&out[k - 1], &self.facts.synced) {
                k -= 1;
            }
            let mergeable = k > 0
                && matches!(&out[k - 1], Stmt::Critical { lock_obj: l, .. } if *l == lock_obj)
                && lock_stable(&lock_obj, &out[k..]);
            if mergeable {
                let candidate: Vec<Stmt> = {
                    let Stmt::Critical { body: prev_body, .. } = &out[k - 1] else {
                        unreachable!()
                    };
                    let mut c = prev_body.clone();
                    c.extend(out[k..].iter().cloned());
                    c.extend(body.iter().cloned());
                    c
                };
                let candidate_ok = region_ok(
                    self.policy,
                    lock_class(&lock_obj),
                    &candidate,
                    self.facts,
                    &self.set.functions,
                );
                if candidate_ok {
                    let Stmt::Critical { lock_obj: l0, regions: mut merged, .. } =
                        out[k - 1].clone()
                    else {
                        unreachable!()
                    };
                    // The coalesced region reports both constituents'
                    // source regions (absorbable separators carry none).
                    extend_unique(&mut merged, &regions);
                    out.truncate(k - 1);
                    self.changed = true;
                    out.push(Stmt::Critical { lock_obj: l0, body: candidate, regions: merged });
                    continue;
                }
            }
            out.push(Stmt::Critical { lock_obj, body, regions });
        }
        out
    }

    /// Create (or fetch) the unsynchronized clone of function `fi`.
    fn nosync_clone(&mut self, fi: usize) -> usize {
        if let Some(&c) = self.set.nosync.get(&fi) {
            return c;
        }
        let idx = self.set.functions.len();
        self.set.nosync.insert(fi, idx);
        let mut f = self.set.functions[fi].clone();
        f.name = format!("{}$nosync", f.name);
        // Reserve the slot before rewriting so recursion maps to the clone.
        self.set.functions.push(f);
        let body = strip_sync(std::mem::take(&mut self.set.functions[idx].body), self);
        self.set.functions[idx].body = body;
        idx
    }
}

/// Strip all critical regions and redirect synced `this`-calls to their
/// unsynchronized clones.
fn strip_sync(stmts: Vec<Stmt>, rw: &mut Rewriter<'_>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Critical { body, .. } => {
                out.extend(strip_sync(body, rw));
            }
            Stmt::If { cond, then_branch, else_branch } => out.push(Stmt::If {
                cond,
                then_branch: strip_sync(then_branch, rw),
                else_branch: strip_sync(else_branch, rw),
            }),
            Stmt::While { cond, body } => {
                out.push(Stmt::While { cond, body: strip_sync(body, rw) });
            }
            Stmt::CountedFor { var, start, bound, body } => {
                out.push(Stmt::CountedFor { var, start, bound, body: strip_sync(body, rw) })
            }
            Stmt::Expr(e) => {
                if let ExprKind::CallMethod { obj, func, args } = &e.kind {
                    if rw.facts.synced.get(func.0).copied().unwrap_or(false) {
                        let clone = rw.nosync_clone(func.0);
                        out.push(Stmt::Expr(Expr {
                            kind: ExprKind::CallMethod {
                                obj: obj.clone(),
                                func: dynfb_lang::hir::FuncId(clone),
                                args: args.clone(),
                            },
                            ty: e.ty.clone(),
                        }));
                        continue;
                    }
                }
                out.push(Stmt::Expr(e));
            }
            other => out.push(other),
        }
    }
    out
}

/// Count the critical regions (recursively) in a body — used by tests and
/// the code-size/acquire accounting.
#[must_use]
pub fn count_regions(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        match s {
            Stmt::Critical { body, .. } => n += 1 + count_regions(body),
            Stmt::If { then_branch, else_branch, .. } => {
                n += count_regions(then_branch) + count_regions(else_branch);
            }
            Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => {
                n += count_regions(body);
            }
            _ => {}
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockplace::insert_default_regions;
    use dynfb_lang::compile_source;
    use dynfb_lang::hir::Hir;

    /// Compile, insert default regions into every method, and return the
    /// function set plus the HIR (for id lookups).
    fn prepared(src: &str) -> (Hir, FnSet) {
        let hir = compile_source(src).unwrap();
        let mut funcs = hir.functions.clone();
        for f in &mut funcs {
            insert_default_regions(f);
        }
        (hir, FnSet::new(funcs))
    }

    const FIGURE_1: &str = "
        extern double interact(double, double);
        class body {
            double pos; double sum;
            void one_interaction(body b) {
                double val = interact(this.pos, b.pos);
                this.sum += val;
            }
            void interactions(body[] b, int n) {
                for (int i = 0; i < n; i++) {
                    this.one_interaction(b[i]);
                }
            }
        }";

    #[test]
    fn aggressive_reproduces_figure_2() {
        let (hir, mut set) = prepared(FIGURE_1);
        optimize(&mut set, Policy::Aggressive, &[]);
        let interactions = hir.method_named(dynfb_lang::hir::ClassId(0), "interactions").unwrap();
        let body = &set.functions[interactions.0].body;
        // The whole loop is now inside a single critical region on `this`:
        // exactly the paper's Figure 2.
        assert_eq!(body.len(), 1, "{body:#?}");
        let Stmt::Critical { lock_obj, body: inner, .. } = &body[0] else {
            panic!("expected hoisted region, got {body:#?}");
        };
        assert!(matches!(lock_obj.kind, ExprKind::This));
        assert!(matches!(inner[0], Stmt::CountedFor { .. }));
        // An unsynchronized clone of one_interaction was generated.
        assert!(set.functions.iter().any(|f| f.name == "one_interaction$nosync"));
    }

    #[test]
    fn original_changes_nothing() {
        let (_hir, mut set) = prepared(FIGURE_1);
        let before = set.clone();
        optimize(&mut set, Policy::Original, &[]);
        assert_eq!(set, before);
    }

    #[test]
    fn bounded_merges_adjacent_acyclic_regions() {
        let src = "
            extern double f(double);
            class c { double a; double b; double p;
                void m(double v) {
                    this.a += v;
                    double t = f(this.p);
                    this.b += t;
                } }";
        let (hir, mut set) = prepared(src);
        let m = hir.method_named(dynfb_lang::hir::ClassId(0), "m").unwrap();
        assert_eq!(count_regions(&set.functions[m.0].body), 2);
        optimize(&mut set, Policy::Bounded, &[]);
        assert_eq!(count_regions(&set.functions[m.0].body), 1);
    }

    #[test]
    fn merged_regions_report_both_constituent_sources() {
        // A Bounded merge coalesces `m#0` and `m#1` into one region; the
        // merged region must list both source tags, in source order, so a
        // profile can attribute its lock's overhead back to both updates.
        let src = "
            extern double f(double);
            class c { double a; double b; double p;
                void m(double v) {
                    this.a += v;
                    double t = f(this.p);
                    this.b += t;
                } }";
        let (hir, mut set) = prepared(src);
        optimize(&mut set, Policy::Bounded, &[]);
        let m = hir.method_named(dynfb_lang::hir::ClassId(0), "m").unwrap();
        let mut tags = Vec::new();
        collect_region_tags(&set.functions[m.0].body, &mut tags);
        assert_eq!(tags, vec!["m#0".to_string(), "m#1".to_string()]);
    }

    #[test]
    fn lifted_and_hoisted_regions_carry_callee_tags() {
        // Aggressive lifts `one_interaction`'s region to the call site and
        // hoists it out of the loop: the resulting region's provenance must
        // still name the original source region inside the callee.
        let (hir, mut set) = prepared(FIGURE_1);
        optimize(&mut set, Policy::Aggressive, &[]);
        let interactions = hir.method_named(dynfb_lang::hir::ClassId(0), "interactions").unwrap();
        let Stmt::Critical { regions, .. } = &set.functions[interactions.0].body[0] else {
            panic!("expected hoisted region");
        };
        assert_eq!(regions, &vec!["one_interaction#0".to_string()]);
    }

    #[test]
    fn bounded_refuses_regions_with_call_graph_cycles() {
        // The update method is reached through a recursive walk; lifting at
        // the call site would create a region containing the recursion, so
        // Bounded must refuse while Aggressive lifts.
        let src = "
            class node { double val; node left; node right;
                void bump(double v) { this.val += v; }
                void walk(node n, double v) {
                    this.bump(v);
                    if (n.left != null) { this.walk(n.left, v); }
                    if (n.right != null) { this.walk(n.right, v); }
                }
            }
            node root;
            void drive(node start, double v) {
                start.walk(start, v);
            }";
        let (hir, mut agg) = prepared(src);
        let (_hir2, mut bnd) = prepared(src);
        optimize(&mut agg, Policy::Aggressive, &[]);
        optimize(&mut bnd, Policy::Bounded, &[]);
        let drive = hir.function_named("drive").unwrap();
        // Aggressive lifts the walk call into one region on `start`.
        assert!(
            matches!(agg.functions[drive.0].body[0], Stmt::Critical { .. }),
            "{:#?}",
            agg.functions[drive.0].body
        );
        // Bounded leaves the call alone (region would contain a cycle).
        assert!(matches!(bnd.functions[drive.0].body[0], Stmt::Expr(_)));
        // But inside `walk`, Bounded still lifts the non-recursive bump call.
        let walk = hir.method_named(hir.class_named("node").unwrap(), "walk").unwrap();
        assert!(count_regions(&bnd.functions[walk.0].body) >= 1);
    }

    #[test]
    fn hoist_requires_loop_invariant_lock() {
        // The region's lock object changes every iteration: no hoist.
        let src = "
            class c { double x; void add(double v) { this.x += v; } }
            c[] objs;
            void work(int n) {
                for (int i = 0; i < n; i++) {
                    objs[i].add(1.0);
                }
            }";
        let (hir, mut set) = prepared(src);
        optimize(&mut set, Policy::Aggressive, &[]);
        let work = hir.function_named("work").unwrap();
        // The loop must remain a loop (the call inside was lifted to a
        // region on objs[i], which is iteration-dependent).
        assert!(
            matches!(set.functions[work.0].body[0], Stmt::CountedFor { .. }),
            "{:#?}",
            set.functions[work.0].body
        );
    }

    #[test]
    fn parallel_loops_are_never_hoisted() {
        // Same-lock region inside the parallel loop; without the freeze the
        // hoist would wrap the parallel loop and serialize everything.
        let src = "
            class c { double x; void add(double v) { this.x += v; } }
            c shared;
            void work(int n) {
                for (int i = 0; i < n; i++) {
                    shared.add(1.0);
                }
            }";
        let (hir, mut set) = prepared(src);
        let work = hir.function_named("work").unwrap();
        optimize(&mut set, Policy::Aggressive, &[work.0]);
        assert!(
            matches!(set.functions[work.0].body[0], Stmt::CountedFor { .. }),
            "{:#?}",
            set.functions[work.0].body
        );
        // Without the freeze, it would be hoisted into one giant region.
        let (_h2, mut free) = prepared(src);
        optimize(&mut free, Policy::Aggressive, &[]);
        assert!(matches!(free.functions[work.0].body[0], Stmt::Critical { .. }));
    }

    #[test]
    fn family_is_large_ordered_and_uniquely_named() {
        let family = Policy::family(2);
        assert!(family.len() >= 10, "family of {} policies", family.len());
        assert_eq!(family[0], Policy::Original, "policy 0 must be the safe fallback");
        assert_eq!(*family.last().unwrap(), Policy::Aggressive);
        for p in Policy::ALL {
            assert!(family.contains(&p), "classic {p:?} missing");
        }
        let mut names: Vec<String> = family.iter().map(|p| p.name()).collect();
        let mut sorted = family.clone();
        sorted.sort();
        assert_eq!(sorted, family, "family must be ordered least to most aggressive");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), family.len(), "policy names must be unique");
        // No hybrids without at least two classes; bounded at ≥ 10 total.
        assert!(Policy::family(1).len() >= 8);
        assert!(Policy::family(3).len() > Policy::family(2).len());
    }

    #[test]
    fn bounded_k_region_counts_are_monotone_in_k() {
        // Four acyclic update regions separated by extern calls: Bounded
        // merges them all, tiny budgets stop the cascade earlier, and
        // region counts never increase as K grows.
        let src = "
            extern double f(double);
            class c { double a; double b; double p; double q;
                void m(double v) {
                    this.a += v;
                    double t = f(this.p);
                    this.b += t;
                    double u = f(t);
                    this.p += u;
                    double w = f(u);
                    this.q += w;
                } }";
        let (hir, base) = prepared(src);
        let m = hir.method_named(dynfb_lang::hir::ClassId(0), "m").unwrap();
        assert_eq!(count_regions(&base.functions[m.0].body), 4);
        let count_for = |policy: Policy| -> usize {
            let (_, mut set) = prepared(src);
            optimize(&mut set, policy, &[]);
            count_regions(&set.functions[m.0].body)
        };
        let ks = [4u32, 8, 16, 32, 64, 128];
        let counts: Vec<usize> = ks.iter().map(|&k| count_for(Policy::BoundedK(k))).collect();
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "region count must not grow with K: {counts:?}");
        }
        assert_eq!(counts[0], 4, "K=4 is below any merged region's size");
        assert_eq!(*counts.last().unwrap(), count_for(Policy::Bounded), "large K ≡ Bounded");
        assert_eq!(count_for(Policy::Bounded), 1);
        // At least one intermediate K must genuinely sit between the
        // extremes, or the family adds nothing.
        assert!(counts.iter().any(|&c| c > 1 && c < 4), "{counts:?}");
    }

    /// Two lock classes with a cycle-bearing merge candidate each: `acc`
    /// (bit 0) and `mol` (bit 1). Bounded refuses both, Aggressive takes
    /// both, hybrids split by class.
    const TWO_CLASSES: &str = "
        extern double term(double);
        class acc { double total; double aux;
            double spin(double x, int d) {
                if (d == 0) { return term(x); }
                return this.spin(x * 0.5, d - 1);
            }
            void add(double v) {
                this.total += v;
                double t = this.spin(v, 2);
                this.aux += t;
            } }
        class mol { double a; double b;
            double chain(double x, int d) {
                if (d == 0) { return term(x); }
                return term(x) + this.chain(x * 0.5, d - 1);
            }
            void relax(double v) {
                this.a += v;
                double t = this.chain(v, 3);
                this.b += t;
            } }";

    #[test]
    fn hybrid_applies_aggressive_rule_per_lock_class() {
        let (hir, _) = prepared(TWO_CLASSES);
        let acc_add = hir.method_named(hir.class_named("acc").unwrap(), "add").unwrap();
        let mol_relax = hir.method_named(hir.class_named("mol").unwrap(), "relax").unwrap();
        let counts = |policy: Policy| -> (usize, usize) {
            let (_, mut set) = prepared(TWO_CLASSES);
            optimize(&mut set, policy, &[]);
            (
                count_regions(&set.functions[acc_add.0].body),
                count_regions(&set.functions[mol_relax.0].body),
            )
        };
        // The recursive call between the two update regions blocks the
        // Bounded merge in both classes; Aggressive merges both.
        assert_eq!(counts(Policy::Bounded), (2, 2));
        assert_eq!(counts(Policy::Aggressive), (1, 1));
        // acc is ClassId 0, mol is ClassId 1 (declaration order).
        assert_eq!(counts(Policy::Hybrid { aggressive_classes: 0b01 }), (1, 2));
        assert_eq!(counts(Policy::Hybrid { aggressive_classes: 0b10 }), (2, 1));
        assert_eq!(counts(Policy::Hybrid { aggressive_classes: 0b11 }), (1, 1));
    }

    #[test]
    fn global_receiver_hoists_out_of_inner_loop() {
        // The POTENG shape: an inner loop updating a global accumulator
        // object. Aggressive hoists the global's lock out of the inner
        // loop; Bounded refuses when the loop calls into a recursion.
        let src = "
            extern double term(double);
            class acc { double total; void add(double v) { this.total += v; } }
            acc sys;
            class mol { double q;
                double series(double x, int depth) {
                    if (depth == 0) { return term(x); }
                    return term(x) + this.series(x * 0.5, depth - 1);
                }
                void poteng_one(mol[] others, int n) {
                    for (int j = 0; j < n; j++) {
                        double e = this.series(this.q, 4);
                        sys.add(e);
                    }
                }
            }";
        let (hir, mut agg) = prepared(src);
        let (_h2, mut bnd) = prepared(src);
        optimize(&mut agg, Policy::Aggressive, &[]);
        optimize(&mut bnd, Policy::Bounded, &[]);
        let m = hir.method_named(hir.class_named("mol").unwrap(), "poteng_one").unwrap();
        // Aggressive: the whole j-loop sits inside one region on `sys`.
        assert!(
            matches!(agg.functions[m.0].body[0], Stmt::Critical { .. }),
            "{:#?}",
            agg.functions[m.0].body
        );
        // Bounded: the recursion in `series` blocks the hoist; the loop stays.
        assert!(
            matches!(bnd.functions[m.0].body[0], Stmt::CountedFor { .. }),
            "{:#?}",
            bnd.functions[m.0].body
        );
    }
}
