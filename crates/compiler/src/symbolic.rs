//! Symbolic expressions with algebraic normalization.
//!
//! The commutativity analysis (§2 of the paper, following Rinard & Diniz's
//! commutativity analysis work) decides whether two operations `A` and `B`
//! on the same object *commute* by executing them symbolically in both
//! orders and comparing the resulting object states as algebraic
//! expressions. This module provides the expression language and the
//! normal form used for that comparison: `+` and `*` are flattened,
//! constants folded, and operands sorted, so two expressions that are equal
//! modulo associativity and commutativity of `+`/`*` have identical normal
//! forms. Everything else (division, externs, comparisons) is treated as
//! uninterpreted.

use std::fmt;

/// An `f64` wrapped for total ordering and hashing by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bits(u64);

impl Bits {
    /// Wrap a float.
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        Bits(v.to_bits())
    }

    /// Unwrap.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// A symbolic value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Double(Bits),
    /// An input of operation instance `inst`: parameter or local slot `slot`.
    Param {
        /// Which operation instance (two instances get distinct inputs).
        inst: usize,
        /// Which input slot.
        slot: usize,
    },
    /// The initial value of receiver field `field` (before the composed
    /// operations run).
    Init(usize),
    /// A fresh unknown (e.g. a local assigned inside unanalyzed control
    /// flow); two havocs are equal only if they have the same id.
    Havoc(usize),
    /// Flattened n-ary sum.
    Add(Vec<Sym>),
    /// Flattened n-ary product.
    Mul(Vec<Sym>),
    /// An uninterpreted operator (externs, division, comparisons...).
    Opaque {
        /// Operator tag (e.g. `"div"`, `"extern:interact"`).
        tag: String,
        /// Operands.
        args: Vec<Sym>,
    },
}

// `add`/`mul`/`neg`/`sub` are by-value constructors feeding normalization,
// not operator impls; the std operator traits would force reference
// semantics the canonicalizer doesn't want.
#[allow(clippy::should_implement_trait)]
impl Sym {
    /// Shorthand for an opaque application.
    #[must_use]
    pub fn opaque(tag: impl Into<String>, args: Vec<Sym>) -> Sym {
        Sym::Opaque { tag: tag.into(), args }.normalized()
    }

    /// `a + b`.
    #[must_use]
    pub fn add(a: Sym, b: Sym) -> Sym {
        Sym::Add(vec![a, b]).normalized()
    }

    /// `a * b`.
    #[must_use]
    pub fn mul(a: Sym, b: Sym) -> Sym {
        Sym::Mul(vec![a, b]).normalized()
    }

    /// `-a`.
    #[must_use]
    pub fn neg(a: Sym) -> Sym {
        Sym::Mul(vec![Sym::Int(-1), a]).normalized()
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(a: Sym, b: Sym) -> Sym {
        Sym::add(a, Sym::neg(b))
    }

    /// Rewrite into the canonical normal form.
    #[must_use]
    pub fn normalized(self) -> Sym {
        match self {
            Sym::Add(terms) => {
                let mut flat: Vec<Sym> = Vec::new();
                let mut int_acc: i64 = 0;
                let mut dbl_acc: f64 = 0.0;
                let mut has_dbl = false;
                let mut stack: Vec<Sym> = terms.into_iter().map(Sym::normalized).collect();
                stack.reverse();
                while let Some(t) = stack.pop() {
                    match t {
                        Sym::Add(inner) => {
                            for x in inner.into_iter().rev() {
                                stack.push(x);
                            }
                        }
                        Sym::Int(v) => int_acc = int_acc.wrapping_add(v),
                        Sym::Double(b) => {
                            has_dbl = true;
                            dbl_acc += b.to_f64();
                        }
                        other => flat.push(other),
                    }
                }
                if has_dbl {
                    let c = dbl_acc + int_acc as f64;
                    if c != 0.0 {
                        flat.push(Sym::Double(Bits::from_f64(c)));
                    }
                } else if int_acc != 0 {
                    flat.push(Sym::Int(int_acc));
                }
                flat.sort();
                match flat.len() {
                    0 => Sym::Int(0),
                    1 => flat.pop().expect("len 1"),
                    _ => Sym::Add(flat),
                }
            }
            Sym::Mul(factors) => {
                let mut flat: Vec<Sym> = Vec::new();
                let mut int_acc: i64 = 1;
                let mut dbl_acc: f64 = 1.0;
                let mut has_dbl = false;
                let mut stack: Vec<Sym> = factors.into_iter().map(Sym::normalized).collect();
                stack.reverse();
                while let Some(t) = stack.pop() {
                    match t {
                        Sym::Mul(inner) => {
                            for x in inner.into_iter().rev() {
                                stack.push(x);
                            }
                        }
                        Sym::Int(v) => int_acc = int_acc.wrapping_mul(v),
                        Sym::Double(b) => {
                            has_dbl = true;
                            dbl_acc *= b.to_f64();
                        }
                        other => flat.push(other),
                    }
                }
                if int_acc == 0 && !has_dbl {
                    return Sym::Int(0);
                }
                if has_dbl {
                    let c = dbl_acc * int_acc as f64;
                    if c == 0.0 {
                        // Canonical zero regardless of how it was reached.
                        return Sym::Int(0);
                    }
                    if c != 1.0 {
                        flat.push(Sym::Double(Bits::from_f64(c)));
                    }
                } else if int_acc != 1 {
                    flat.push(Sym::Int(int_acc));
                }
                flat.sort();
                match flat.len() {
                    // Canonical one regardless of how it was reached.
                    0 => Sym::Int(1),
                    1 => flat.pop().expect("len 1"),
                    _ => Sym::Mul(flat),
                }
            }
            Sym::Opaque { tag, args } => {
                Sym::Opaque { tag, args: args.into_iter().map(Sym::normalized).collect() }
            }
            leaf => leaf,
        }
    }

    /// Substitute every [`Sym::Init`] with the corresponding entry of
    /// `state` (the symbolic object state an operation is applied to).
    #[must_use]
    pub fn substitute_init(&self, state: &[Sym]) -> Sym {
        match self {
            Sym::Init(f) => state.get(*f).cloned().unwrap_or_else(|| self.clone()),
            Sym::Add(ts) => {
                Sym::Add(ts.iter().map(|t| t.substitute_init(state)).collect()).normalized()
            }
            Sym::Mul(ts) => {
                Sym::Mul(ts.iter().map(|t| t.substitute_init(state)).collect()).normalized()
            }
            Sym::Opaque { tag, args } => Sym::Opaque {
                tag: tag.clone(),
                args: args.iter().map(|t| t.substitute_init(state)).collect(),
            },
            leaf => leaf.clone(),
        }
    }

    /// Does this expression mention `Init(field)`?
    #[must_use]
    pub fn mentions_init(&self, field: usize) -> bool {
        match self {
            Sym::Init(f) => *f == field,
            Sym::Add(ts) | Sym::Mul(ts) => ts.iter().any(|t| t.mentions_init(field)),
            Sym::Opaque { args, .. } => args.iter().any(|t| t.mentions_init(field)),
            _ => false,
        }
    }

    /// Does this expression mention any `Init` at all?
    #[must_use]
    pub fn mentions_any_init(&self) -> bool {
        match self {
            Sym::Init(_) => true,
            Sym::Add(ts) | Sym::Mul(ts) => ts.iter().any(Sym::mentions_any_init),
            Sym::Opaque { args, .. } => args.iter().any(Sym::mentions_any_init),
            _ => false,
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Int(v) => write!(f, "{v}"),
            Sym::Double(b) => write!(f, "{}", b.to_f64()),
            Sym::Param { inst, slot } => write!(f, "p{inst}_{slot}"),
            Sym::Init(x) => write!(f, "init({x})"),
            Sym::Havoc(n) => write!(f, "havoc({n})"),
            Sym::Add(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Sym::Mul(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Sym::Opaque { tag, args } => {
                write!(f, "{tag}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> Sym {
        Sym::Param { inst: 0, slot: i }
    }

    #[test]
    fn addition_is_ac_normalized() {
        let a = Sym::add(p(0), Sym::add(p(1), p(2)));
        let b = Sym::add(Sym::add(p(2), p(0)), p(1));
        assert_eq!(a, b);
    }

    #[test]
    fn constants_fold() {
        let e = Sym::add(Sym::Int(2), Sym::add(p(0), Sym::Int(3)));
        assert_eq!(e, Sym::Add(vec![p(0), Sym::Int(5)]).normalized());
        let z = Sym::mul(Sym::Int(0), p(0));
        assert_eq!(z, Sym::Int(0));
        let one = Sym::mul(Sym::Int(1), p(0));
        assert_eq!(one, p(0));
    }

    #[test]
    fn subtraction_via_negation() {
        // x - x normalizes to 0 only when terms are literally equal after
        // normalization: p0 + (-1 * p0) stays symbolic (no like-term
        // collection), which is fine — we only need equality of equal forms.
        let e = Sym::sub(p(0), p(1));
        let f = Sym::add(Sym::neg(p(1)), p(0));
        assert_eq!(e, f);
    }

    #[test]
    fn mul_add_do_not_distribute() {
        let a = Sym::mul(p(0), Sym::add(p(1), p(2)));
        let b = Sym::add(Sym::mul(p(0), p(1)), Sym::mul(p(0), p(2)));
        assert_ne!(a, b, "normalization must not distribute");
    }

    #[test]
    fn substitution_composes_states() {
        // state: field0 = init(0) + p0
        let after_a = vec![Sym::add(Sym::Init(0), p(0))];
        // apply B: field0 = init(0) + p1  on top of A's state
        let b_update = Sym::add(Sym::Init(0), p(1));
        let composed = b_update.substitute_init(&after_a);
        assert_eq!(composed, Sym::Add(vec![p(0), p(1), Sym::Init(0)]).normalized());
    }

    #[test]
    fn mentions_init_detection() {
        let e = Sym::opaque("div", vec![Sym::Init(2), p(0)]);
        assert!(e.mentions_init(2));
        assert!(!e.mentions_init(1));
        assert!(e.mentions_any_init());
        assert!(!p(0).mentions_any_init());
    }

    #[test]
    fn double_constants_fold_separately() {
        let e = Sym::add(Sym::Double(Bits::from_f64(0.5)), Sym::Double(Bits::from_f64(0.25)));
        assert_eq!(e, Sym::Double(Bits::from_f64(0.75)));
    }
}
