//! A register-based bytecode VM: the fast execution tier for compiled apps.
//!
//! The tree-walking interpreter ([`crate::interp`]) is the semantic
//! reference, but its dispatch cost (one `Box`-chasing `match`, one
//! [`OpSink`] charge, and one fuel check *per HIR node*) dominates the
//! host wall-clock of every benchmark. This module lowers each function to
//! a flat `Vec<Insn>` executed by a tight loop:
//!
//! * **registers, not trees** — every expression node becomes an
//!   instruction reading and writing frame-relative register slots; locals
//!   occupy registers `0..num_locals` and temporaries are allocated with
//!   stack discipline above them. Jump targets are patched to absolute
//!   instruction indices, so control flow is two integer assignments.
//! * **batched op-cost accounting** — the lowering counts the interpreter
//!   charges of each basic block *statically* and emits one
//!   [`Insn::Charge`] per block instead of charging per node. Because the
//!   sink merges consecutive compute charges ([`OpSink::compute_batch`] is
//!   exact in nanoseconds) and the charge count between any two lock
//!   operations is preserved, the emitted step sequence is bit-identical
//!   to the tree-walker's.
//! * **resolved extern calls** — [`Insn::CallHost`] dispatches through the
//!   dense index table built by [`HostRegistry::link`], with no per-call
//!   string clone or hash lookup.
//! * **explicit lock instructions** — [`Insn::LockAcquire`] /
//!   [`Insn::LockRelease`] emit the same acquire/release steps at the same
//!   points as the tree-walker's critical regions, including releasing all
//!   enclosing regions (innermost first) on early `return`.
//!
//! ## Determinism contract
//!
//! For every program that the tree-walker executes successfully, the VM
//! produces the *same* return value, heap, globals, final sink step
//! sequence, and fuel success/failure boundary. Runtime errors carry the
//! same messages; on an error path the two tiers may differ only in
//! partially-flushed sink contents and partially-applied heap effects,
//! which the runtime discards (iteration errors abort the run). The
//! differential fuzz suite (`tests/vm_differential.rs`) enforces this
//! contract on seeded random programs and run configurations.
//!
//! Barriers and sampling rendezvous are runtime-level constructs
//! (`dynfb_sim::runtime` inserts them between iterations); no code the
//! lowering sees contains them, so the ISA carries no barrier instruction.

use crate::interp::{binary_op, CostModel, HostFn, ProgramEnv, RuntimeError, Value};
use dynfb_lang::hir::{BinOp, Expr, ExprKind, Function, Place, Stmt, Ty, UnOp};
use dynfb_sim::{LockId, OpSink};

/// Which execution tier a [`CompiledApp`](crate::artifact::CompiledApp)
/// uses to run compiled code.
///
/// All three tiers emit bit-identical step sequences into the [`OpSink`],
/// so switching tiers never changes simulation results — only how fast the
/// host produces them. The slower tiers are kept as differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The tree-walking interpreter — the semantic reference oracle.
    Tree,
    /// The register-based bytecode VM — dispatches one `Insn` at a time.
    Vm,
    /// The closure-fusion native tier ([`crate::native`]) — each basic
    /// block compiled to a single fused Rust closure. The fast path and
    /// the default.
    #[default]
    Native,
}

/// Register index within a frame. Locals first, temporaries above.
pub type Reg = u16;

/// Sentinel register meaning "no receiver" in [`Insn::Call`].
pub(crate) const NO_REG: Reg = Reg::MAX;

/// One bytecode instruction.
///
/// Only [`Insn::Charge`], [`Insn::CallHost`], [`Insn::LockAcquire`] and
/// [`Insn::LockRelease`] touch the [`OpSink`]; every other instruction is
/// free, exactly like the machine ops they stand for are covered by the
/// per-node charges the lowering already counted.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operand fields (dst/src/obj/...) are uniform register slots
pub enum Insn {
    /// Charge `n` interpreter node costs and consume `n` fuel.
    Charge(u32),
    /// Load a constant.
    Const { dst: Reg, v: Value },
    /// Copy a register.
    Move { dst: Reg, src: Reg },
    /// Load the method receiver.
    LoadThis { dst: Reg },
    /// Read a global.
    LoadGlobal { dst: Reg, g: u32 },
    /// Write a global.
    StoreGlobal { g: u32, src: Reg },
    /// Read `obj.field`.
    FieldGet { dst: Reg, obj: Reg, field: u16 },
    /// Write `obj.field`.
    FieldSet { obj: Reg, field: u16, src: Reg },
    /// Read `arr[idx]`.
    IndexGet { dst: Reg, arr: Reg, idx: Reg },
    /// Write `arr[idx]`.
    IndexSet { arr: Reg, idx: Reg, src: Reg },
    /// `arr.length`.
    ArrayLen { dst: Reg, arr: Reg },
    /// Binary operator (no short-circuit: both operands are registers).
    Binary { dst: Reg, op: BinOp, lhs: Reg, rhs: Reg },
    /// Unary operator.
    Unary { dst: Reg, op: UnOp, src: Reg },
    /// Integer → double coercion.
    IntToDouble { dst: Reg, src: Reg },
    /// Error unless the register holds an `Int` (loop-bound checks).
    CheckInt { src: Reg },
    /// Error if the register holds `Null` (method receiver check; happens
    /// before argument evaluation, like the tree-walker).
    CheckRecv { obj: Reg, func: u32 },
    /// Unconditional jump to an absolute instruction index.
    Jump { target: u32 },
    /// Jump unless the register holds `Bool(true)`.
    JumpIfFalse { cond: Reg, target: u32 },
    /// Call a program function; arguments sit in consecutive registers
    /// starting at `base`. `recv` is [`NO_REG`] for free functions.
    Call { dst: Reg, func: u32, base: Reg, recv: Reg },
    /// Call a host (`extern`) function through the dense link table.
    CallHost { dst: Reg, ext: u32, base: Reg, argc: u8 },
    /// Allocate an object.
    NewObj { dst: Reg, class: u32 },
    /// Allocate an array of `len` copies of the element default.
    NewArr { dst: Reg, len: Reg, default: Value },
    /// Enter a critical region on the object in `obj`.
    LockAcquire { obj: Reg },
    /// Leave a critical region on the object in `obj`.
    LockRelease { obj: Reg },
    /// Return the value in `src`.
    Return { src: Reg },
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct VmFunc {
    /// Name (for error messages).
    pub name: String,
    /// Number of parameters (occupy the first registers).
    pub num_params: usize,
    /// Default values of all locals (params included; callers overwrite
    /// the parameter prefix).
    pub local_defaults: Vec<Value>,
    /// Total frame size: locals plus the temporary high-water mark.
    pub num_regs: usize,
    /// The instruction stream.
    pub code: Vec<Insn>,
}

/// A lowered function table. Indices match the source `Vec<Function>`, so
/// `FuncId`s translate directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VmModule {
    /// The functions.
    pub funcs: Vec<VmFunc>,
}

/// Lower a complete function table.
#[must_use]
pub fn lower_functions(funcs: &[Function]) -> VmModule {
    VmModule { funcs: funcs.iter().map(lower_function).collect() }
}

/// Lower one function: the prologue charge models the tree-walker's
/// per-call charge in `Interp::call`.
fn lower_function(f: &Function) -> VmFunc {
    let mut lo = Lowerer::new(f.locals.len());
    lo.pending = 1; // Interp::call charges once on entry.
    for s in &f.body {
        lo.stmt(s);
    }
    lo.epilogue();
    lo.finish(f.name.clone(), f.num_params, f.locals.iter().map(|l| Value::default_for(&l.ty)))
}

/// Lower a bare statement list (a parallel-loop iteration body) over a
/// frame of `locals_ty` slots. No prologue charge: the runtime drives
/// iterations through `exec_body`, which charges per statement only.
#[must_use]
pub fn lower_body(name: &str, body: &[Stmt], locals_ty: &[Ty]) -> VmFunc {
    let mut lo = Lowerer::new(locals_ty.len());
    for s in body {
        lo.stmt(s);
    }
    lo.epilogue();
    lo.finish(name.to_string(), 0, locals_ty.iter().map(Value::default_for))
}

struct Lowerer {
    code: Vec<Insn>,
    /// Statically-counted charges of the current basic block.
    pending: u32,
    next_reg: usize,
    max_reg: usize,
    /// Pinned registers holding the lock objects of enclosing critical
    /// regions (outermost first); `return` releases them all in reverse.
    regions: Vec<Reg>,
}

impl Lowerer {
    fn new(num_locals: usize) -> Self {
        Lowerer {
            code: Vec::new(),
            pending: 0,
            next_reg: num_locals,
            max_reg: num_locals,
            regions: Vec::new(),
        }
    }

    fn finish(
        self,
        name: String,
        num_params: usize,
        defaults: impl Iterator<Item = Value>,
    ) -> VmFunc {
        debug_assert_eq!(self.pending, 0, "epilogue flushes");
        VmFunc {
            name,
            num_params,
            local_defaults: defaults.collect(),
            num_regs: self.max_reg,
            code: self.code,
        }
    }

    /// Fall-through end of a body: return `Null`, like the tree-walker's
    /// `Flow::Normal`, with no extra charge.
    fn epilogue(&mut self) {
        let t = self.temp();
        self.code.push(Insn::Const { dst: t, v: Value::Null });
        self.flush();
        self.code.push(Insn::Return { src: t });
        self.next_reg -= 1;
    }

    fn temp(&mut self) -> Reg {
        let r = self.next_reg;
        assert!(r <= usize::from(Reg::MAX - 1), "expression too deep for the register file");
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        Reg::try_from(r).expect("checked above")
    }

    fn mark(&self) -> usize {
        self.next_reg
    }

    fn release_to(&mut self, mark: usize) {
        self.next_reg = mark;
    }

    /// Emit the accumulated block charge. Must run before every jump,
    /// label, lock instruction, call, and return, so the charge sum
    /// between any two sink-visible operations matches the tree-walker.
    fn flush(&mut self) {
        if self.pending > 0 {
            self.code.push(Insn::Charge(self.pending));
            self.pending = 0;
        }
    }

    /// A label for backward jumps. The preceding block must be flushed so
    /// loop re-entry does not re-execute its charge.
    fn label(&mut self) -> u32 {
        debug_assert_eq!(self.pending, 0, "flush before creating a label");
        u32::try_from(self.code.len()).expect("code fits u32")
    }

    /// Emit a forward jump with a placeholder target; returns the patch
    /// site.
    fn jump_fwd(&mut self) -> usize {
        self.flush();
        self.code.push(Insn::Jump { target: u32::MAX });
        self.code.len() - 1
    }

    fn jump_if_false_fwd(&mut self, cond: Reg) -> usize {
        self.flush();
        self.code.push(Insn::JumpIfFalse { cond, target: u32::MAX });
        self.code.len() - 1
    }

    fn patch(&mut self, site: usize) {
        debug_assert_eq!(self.pending, 0, "flush before patching a label");
        let target = u32::try_from(self.code.len()).expect("code fits u32");
        match &mut self.code[site] {
            Insn::Jump { target: t } | Insn::JumpIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.pending += 1; // Interp::stmt charges once per statement.
        match s {
            Stmt::Assign { place, value } => match place {
                Place::Local(l) => {
                    // Safe to target the local directly: every expression
                    // lowering writes its destination as its final
                    // instruction, after all operand reads.
                    let dst = Reg::try_from(l.0).expect("local fits register file");
                    self.expr_into(value, dst);
                }
                Place::Global(g) => {
                    let m = self.mark();
                    let t = self.temp();
                    self.expr_into(value, t);
                    self.code
                        .push(Insn::StoreGlobal { g: u32::try_from(g.0).expect("global"), src: t });
                    self.release_to(m);
                }
                Place::Field { obj, field, .. } => {
                    // Value first, then the object — tree-walker order.
                    let m = self.mark();
                    let tv = self.temp();
                    self.expr_into(value, tv);
                    let to = self.temp();
                    self.expr_into(obj, to);
                    self.code.push(Insn::FieldSet {
                        obj: to,
                        field: u16::try_from(*field).expect("field"),
                        src: tv,
                    });
                    self.release_to(m);
                }
                Place::Index { arr, idx } => {
                    let m = self.mark();
                    let tv = self.temp();
                    self.expr_into(value, tv);
                    let ta = self.temp();
                    self.expr_into(arr, ta);
                    let ti = self.temp();
                    self.expr_into(idx, ti);
                    self.code.push(Insn::IndexSet { arr: ta, idx: ti, src: tv });
                    self.release_to(m);
                }
            },
            Stmt::If { cond, then_branch, else_branch } => {
                let m = self.mark();
                let c = self.temp();
                self.expr_into(cond, c);
                self.release_to(m);
                let to_else = self.jump_if_false_fwd(c);
                for s in then_branch {
                    self.stmt(s);
                }
                if else_branch.is_empty() {
                    self.flush();
                    self.patch(to_else);
                } else {
                    let to_end = self.jump_fwd();
                    self.patch(to_else);
                    for s in else_branch {
                        self.stmt(s);
                    }
                    self.flush();
                    self.patch(to_end);
                }
            }
            Stmt::While { cond, body } => {
                self.flush();
                let head = self.label();
                self.pending += 1; // charged once per loop check.
                let m = self.mark();
                let c = self.temp();
                self.expr_into(cond, c);
                self.release_to(m);
                let to_exit = self.jump_if_false_fwd(c);
                for s in body {
                    self.stmt(s);
                }
                self.flush();
                self.code.push(Insn::Jump { target: head });
                self.patch(to_exit);
            }
            Stmt::CountedFor { var, start, bound, body } => {
                let m = self.mark();
                let ri = self.temp(); // private induction counter
                let rb = self.temp();
                let rone = self.temp();
                let rt = self.temp();
                self.expr_into(start, ri);
                self.code.push(Insn::CheckInt { src: ri });
                self.expr_into(bound, rb);
                self.code.push(Insn::CheckInt { src: rb });
                self.code.push(Insn::Const { dst: rone, v: Value::Int(1) });
                self.flush();
                let head = self.label();
                // The bound check is free (the tree-walker charges only
                // once per executed iteration, before the body).
                self.code.push(Insn::Binary { dst: rt, op: BinOp::Lt, lhs: ri, rhs: rb });
                let to_exit = self.jump_if_false_fwd(rt);
                self.pending += 1; // per-iteration charge.
                let var_reg = Reg::try_from(var.0).expect("local fits register file");
                self.code.push(Insn::Move { dst: var_reg, src: ri });
                for s in body {
                    self.stmt(s);
                }
                self.flush();
                self.code.push(Insn::Binary { dst: ri, op: BinOp::Add, lhs: ri, rhs: rone });
                self.code.push(Insn::Jump { target: head });
                self.patch(to_exit);
                self.release_to(m);
            }
            Stmt::Return(v) => {
                let m = self.mark();
                let t = self.temp();
                match v {
                    Some(e) => self.expr_into(e, t),
                    None => self.code.push(Insn::Const { dst: t, v: Value::Null }),
                }
                self.flush();
                // Unwind every enclosing critical region, innermost first,
                // exactly as the tree-walker's Flow::Return propagation
                // runs each region's release on the way out.
                for i in (0..self.regions.len()).rev() {
                    self.code.push(Insn::LockRelease { obj: self.regions[i] });
                }
                self.code.push(Insn::Return { src: t });
                self.release_to(m);
            }
            Stmt::Expr(e) => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(e, t);
                self.release_to(m);
            }
            Stmt::Critical { lock_obj, body, .. } => {
                // The lock register stays pinned across the body so the
                // release addresses the same object.
                let pinned = self.temp();
                self.expr_into(lock_obj, pinned);
                self.flush();
                self.code.push(Insn::LockAcquire { obj: pinned });
                self.regions.push(pinned);
                for s in body {
                    self.stmt(s);
                }
                self.flush();
                self.code.push(Insn::LockRelease { obj: pinned });
                self.regions.pop();
                self.release_to(usize::from(pinned));
            }
        }
    }

    fn expr_into(&mut self, e: &Expr, dst: Reg) {
        self.pending += 1; // Interp::eval charges once per node.
        match &e.kind {
            ExprKind::Int(v) => self.code.push(Insn::Const { dst, v: Value::Int(*v) }),
            ExprKind::Double(v) => self.code.push(Insn::Const { dst, v: Value::Double(*v) }),
            ExprKind::Bool(v) => self.code.push(Insn::Const { dst, v: Value::Bool(*v) }),
            ExprKind::Null => self.code.push(Insn::Const { dst, v: Value::Null }),
            ExprKind::This => self.code.push(Insn::LoadThis { dst }),
            ExprKind::Local(l) => {
                let src = Reg::try_from(l.0).expect("local fits register file");
                if src != dst {
                    self.code.push(Insn::Move { dst, src });
                }
            }
            ExprKind::Global(g) => {
                self.code.push(Insn::LoadGlobal { dst, g: u32::try_from(g.0).expect("global") })
            }
            ExprKind::FieldGet { obj, field, .. } => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(obj, t);
                self.code.push(Insn::FieldGet {
                    dst,
                    obj: t,
                    field: u16::try_from(*field).expect("field"),
                });
                self.release_to(m);
            }
            ExprKind::Index { arr, idx } => {
                let m = self.mark();
                let ta = self.temp();
                self.expr_into(arr, ta);
                let ti = self.temp();
                self.expr_into(idx, ti);
                self.code.push(Insn::IndexGet { dst, arr: ta, idx: ti });
                self.release_to(m);
            }
            ExprKind::ArrayLen(a) => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(a, t);
                self.code.push(Insn::ArrayLen { dst, arr: t });
                self.release_to(m);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let m = self.mark();
                let tl = self.temp();
                self.expr_into(lhs, tl);
                let tr = self.temp();
                self.expr_into(rhs, tr);
                self.code.push(Insn::Binary { dst, op: *op, lhs: tl, rhs: tr });
                self.release_to(m);
            }
            ExprKind::Unary { op, expr } => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(expr, t);
                self.code.push(Insn::Unary { dst, op: *op, src: t });
                self.release_to(m);
            }
            ExprKind::IntToDouble(inner) => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(inner, t);
                self.code.push(Insn::IntToDouble { dst, src: t });
                self.release_to(m);
            }
            ExprKind::CallFn { func, args } => {
                let m = self.mark();
                let base = self.args_block(args);
                self.flush(); // the callee may enter critical regions
                self.code.push(Insn::Call {
                    dst,
                    func: u32::try_from(func.0).expect("func"),
                    base,
                    recv: NO_REG,
                });
                self.release_to(m);
            }
            ExprKind::CallMethod { obj, func, args } => {
                let m = self.mark();
                let to = self.temp();
                self.expr_into(obj, to);
                let fid = u32::try_from(func.0).expect("func");
                // Receiver null check precedes argument evaluation.
                self.code.push(Insn::CheckRecv { obj: to, func: fid });
                let base = self.args_block(args);
                self.flush();
                self.code.push(Insn::Call { dst, func: fid, base, recv: to });
                self.release_to(m);
            }
            ExprKind::CallExtern { ext, args } => {
                let m = self.mark();
                let base = self.args_block(args);
                // Host calls only add compute (which merges in the sink),
                // so no flush is needed.
                self.code.push(Insn::CallHost {
                    dst,
                    ext: u32::try_from(ext.0).expect("extern"),
                    base,
                    argc: u8::try_from(args.len()).expect("arity fits u8"),
                });
                self.release_to(m);
            }
            ExprKind::New { class } => {
                self.code.push(Insn::NewObj { dst, class: u32::try_from(class.0).expect("class") })
            }
            ExprKind::NewArray { elem, len } => {
                let m = self.mark();
                let t = self.temp();
                self.expr_into(len, t);
                self.code.push(Insn::NewArr { dst, len: t, default: Value::default_for(elem) });
                self.release_to(m);
            }
        }
    }

    /// Allocate a consecutive register block and lower each argument into
    /// its slot (sub-expression temporaries live above the block).
    fn args_block(&mut self, args: &[Expr]) -> Reg {
        let base = self.next_reg;
        for _ in args {
            self.temp();
        }
        for (i, a) in args.iter().enumerate() {
            let m = self.mark();
            let dst = Reg::try_from(base + i).expect("register file");
            self.expr_into(a, dst);
            self.release_to(m);
        }
        Reg::try_from(base).expect("register file")
    }
}

/// The bytecode executor. Borrows the same program state as
/// [`crate::interp::Interp`] and emits into the same [`OpSink`]; the
/// register stack is caller-provided so it can be reused across
/// iterations without reallocation.
pub struct Vm<'a> {
    /// Program state (heap, globals, host functions).
    pub env: &'a mut ProgramEnv,
    /// The lowered function table of the executing version.
    pub module: &'a VmModule,
    /// Cost model (node and extern-default costs).
    pub cost: CostModel,
    /// Destination for compute/acquire/release steps.
    pub sink: &'a mut OpSink,
    /// First lock of the per-object lock pool.
    pub lock_base: LockId,
    /// Size of the lock pool (max objects).
    pub lock_capacity: usize,
    /// Remaining evaluation fuel.
    pub fuel: u64,
    /// The register stack, grown on demand and reused across calls.
    pub regs: &'a mut Vec<Value>,
}

impl Vm<'_> {
    /// Call a function with an optional receiver (frame at the base of the
    /// register stack).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors with the same messages as the
    /// tree-walker.
    pub fn call(
        &mut self,
        func: usize,
        this: Option<Value>,
        args: &[Value],
    ) -> Result<Value, RuntimeError> {
        let f = &self.module.funcs[func];
        debug_assert_eq!(args.len(), f.num_params, "arity of `{}`", f.name);
        self.ensure(f.num_regs);
        self.regs[..args.len()].copy_from_slice(args);
        for i in args.len()..f.local_defaults.len() {
            self.regs[i] = f.local_defaults[i];
        }
        self.run(func, 0, this)
    }

    /// Execute an iteration body: frame-zero locals are reset to their
    /// defaults and the induction variable slot is preset.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn exec_iteration(
        &mut self,
        func: usize,
        var: usize,
        value: i64,
    ) -> Result<(), RuntimeError> {
        let f = &self.module.funcs[func];
        self.ensure(f.num_regs);
        self.regs[..f.local_defaults.len()].copy_from_slice(&f.local_defaults);
        self.regs[var] = Value::Int(value);
        self.run(func, 0, None).map(|_| ())
    }

    fn ensure(&mut self, need: usize) {
        if self.regs.len() < need {
            self.regs.resize(need, Value::Null);
        }
    }

    fn charge(&mut self, n: u32) -> Result<(), RuntimeError> {
        let need = u64::from(n);
        if need > self.fuel {
            // Bisect the block's debit at the fuel boundary: charge the
            // sink only for the fuel actually consumed, exactly as the
            // tree-walker's per-node accounting would.
            let used = u32::try_from(self.fuel).expect("fuel < n <= u32::MAX");
            self.sink.compute_batch(self.cost.node, used);
            self.fuel = 0;
            return Err(RuntimeError::new("evaluation fuel exhausted (runaway loop?)"));
        }
        self.fuel -= need;
        self.sink.compute_batch(self.cost.node, n);
        Ok(())
    }

    fn lock_for(&self, obj: usize) -> Result<LockId, RuntimeError> {
        if obj >= self.lock_capacity {
            return Err(RuntimeError::new(format!(
                "object {obj} exceeds the lock pool capacity {} (raise max_objects)",
                self.lock_capacity
            )));
        }
        Ok(self.lock_base.offset(obj))
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &mut self,
        func: usize,
        base: usize,
        this: Option<Value>,
    ) -> Result<Value, RuntimeError> {
        let module = self.module;
        let f = &module.funcs[func];
        let code = &f.code[..];
        let mut pc = 0usize;
        macro_rules! reg {
            ($r:expr) => {
                self.regs[base + $r as usize]
            };
        }
        loop {
            let insn = &code[pc];
            pc += 1;
            match insn {
                Insn::Charge(n) => self.charge(*n)?,
                Insn::Const { dst, v } => reg![*dst] = *v,
                Insn::Move { dst, src } => reg![*dst] = reg![*src],
                Insn::LoadThis { dst } => {
                    reg![*dst] = this.ok_or_else(|| RuntimeError::new("`this` outside method"))?;
                }
                Insn::LoadGlobal { dst, g } => reg![*dst] = self.env.globals[*g as usize],
                Insn::StoreGlobal { g, src } => self.env.globals[*g as usize] = reg![*src],
                Insn::FieldGet { dst, obj, field } => {
                    let Value::Obj(id) = reg![*obj] else {
                        return Err(RuntimeError::new("field read on null/non-object"));
                    };
                    reg![*dst] = self.env.heap.objects[id].fields[usize::from(*field)];
                }
                Insn::FieldSet { obj, field, src } => {
                    let v = reg![*src];
                    let Value::Obj(id) = reg![*obj] else {
                        return Err(RuntimeError::new("field write on null/non-object"));
                    };
                    self.env.heap.objects[id].fields[usize::from(*field)] = v;
                }
                Insn::IndexGet { dst, arr, idx } => {
                    let i = reg![*idx].as_int()?;
                    let Value::Arr(id) = reg![*arr] else {
                        return Err(RuntimeError::new("index read on null/non-array"));
                    };
                    let a = &self.env.heap.arrays[id];
                    reg![*dst] =
                        *a.get(usize::try_from(i).unwrap_or(usize::MAX)).ok_or_else(|| {
                            RuntimeError::new(format!("index {i} out of bounds ({})", a.len()))
                        })?;
                }
                Insn::IndexSet { arr, idx, src } => {
                    let v = reg![*src];
                    let i = reg![*idx].as_int()?;
                    let Value::Arr(id) = reg![*arr] else {
                        return Err(RuntimeError::new("index write on null/non-array"));
                    };
                    let a = &mut self.env.heap.arrays[id];
                    let len = a.len();
                    *a.get_mut(usize::try_from(i).unwrap_or(usize::MAX)).ok_or_else(|| {
                        RuntimeError::new(format!("index {i} out of bounds ({len})"))
                    })? = v;
                }
                Insn::ArrayLen { dst, arr } => {
                    let Value::Arr(id) = reg![*arr] else {
                        return Err(RuntimeError::new("length of null/non-array"));
                    };
                    reg![*dst] = Value::Int(self.env.heap.arrays[id].len() as i64);
                }
                Insn::Binary { dst, op, lhs, rhs } => {
                    reg![*dst] = binary_op(*op, reg![*lhs], reg![*rhs])?;
                }
                Insn::Unary { dst, op, src } => {
                    let v = reg![*src];
                    reg![*dst] = match op {
                        UnOp::Neg => match v {
                            Value::Int(x) => Value::Int(-x),
                            Value::Double(x) => Value::Double(-x),
                            _ => return Err(RuntimeError::new("negating non-number")),
                        },
                        UnOp::Not => match v {
                            Value::Bool(b) => Value::Bool(!b),
                            _ => return Err(RuntimeError::new("`!` on non-bool")),
                        },
                    };
                }
                Insn::IntToDouble { dst, src } => {
                    reg![*dst] = Value::Double(reg![*src].as_int()? as f64);
                }
                Insn::CheckInt { src } => {
                    let v = reg![*src];
                    v.as_int()?;
                }
                Insn::CheckRecv { obj, func } => {
                    if reg![*obj] == Value::Null {
                        return Err(RuntimeError::new(format!(
                            "method `{}` on null",
                            module.funcs[*func as usize].name
                        )));
                    }
                }
                Insn::Jump { target } => pc = *target as usize,
                Insn::JumpIfFalse { cond, target } => {
                    if !matches!(reg![*cond], Value::Bool(true)) {
                        pc = *target as usize;
                    }
                }
                Insn::Call { dst, func: callee, base: abase, recv } => {
                    let callee = *callee as usize;
                    let recv_v = if *recv == NO_REG { None } else { Some(reg![*recv]) };
                    let cf = &module.funcs[callee];
                    let callee_base = base + f.num_regs;
                    if self.regs.len() < callee_base + cf.num_regs {
                        self.regs.resize(callee_base + cf.num_regs, Value::Null);
                    }
                    let abase = base + usize::from(*abase);
                    self.regs.copy_within(abase..abase + cf.num_params, callee_base);
                    for i in cf.num_params..cf.local_defaults.len() {
                        self.regs[callee_base + i] = cf.local_defaults[i];
                    }
                    let v = self.run(callee, callee_base, recv_v)?;
                    reg![*dst] = v;
                }
                Insn::CallHost { dst, ext, base: abase, argc } => {
                    let ProgramEnv { host, externs, .. } = &mut *self.env;
                    let host_fn: &mut HostFn = host.dispatch(*ext as usize, externs)?;
                    let cost = if host_fn.cost.is_zero() {
                        self.cost.extern_default
                    } else {
                        host_fn.cost
                    };
                    self.sink.compute(cost);
                    let abase = base + usize::from(*abase);
                    let v = (host_fn.call)(&self.regs[abase..abase + usize::from(*argc)]);
                    reg![*dst] = v;
                }
                Insn::NewObj { dst, class } => {
                    let env = &mut *self.env;
                    let id = env.heap.alloc_object(*class as usize, &env.classes);
                    reg![*dst] = Value::Obj(id);
                }
                Insn::NewArr { dst, len, default } => {
                    let n = reg![*len].as_int()?;
                    if n < 0 {
                        return Err(RuntimeError::new("negative array length"));
                    }
                    self.env.heap.arrays.push(vec![*default; n as usize]);
                    reg![*dst] = Value::Arr(self.env.heap.arrays.len() - 1);
                }
                Insn::LockAcquire { obj } => {
                    let Value::Obj(id) = reg![*obj] else {
                        return Err(RuntimeError::new("critical region on null/non-object"));
                    };
                    let lock = self.lock_for(id)?;
                    self.sink.acquire(lock);
                }
                Insn::LockRelease { obj } => {
                    let Value::Obj(id) = reg![*obj] else {
                        return Err(RuntimeError::new("critical region on null/non-object"));
                    };
                    let lock = self.lock_for(id)?;
                    self.sink.release(lock);
                }
                Insn::Return { src } => return Ok(reg![*src]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Heap, HostRegistry, Interp};
    use dynfb_lang::compile_source;
    use std::time::Duration;

    fn env_for(hir: &dynfb_lang::hir::Hir) -> ProgramEnv {
        let mut env = ProgramEnv {
            classes: hir.classes.clone(),
            externs: hir.externs.clone(),
            globals: hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect(),
            heap: Heap::default(),
            host: HostRegistry::new(),
        };
        env.host.register("hostadd", Duration::from_nanos(100), |args| {
            Value::Double(args[0].as_double().unwrap() + args[1].as_double().unwrap())
        });
        env
    }

    fn lock_base(n: usize) -> LockId {
        let mut m = dynfb_sim::Machine::new(dynfb_sim::MachineConfig::default());
        m.add_locks(n)
    }

    /// Run `func` under both tiers; assert identical values, heaps,
    /// globals, and step sequences; return the value.
    fn both(src: &str, func: &str, args: Vec<Value>) -> Value {
        let hir = compile_source(src).unwrap_or_else(|e| panic!("{e}"));
        let f = hir.function_named(func).expect("function");
        let base = lock_base(1024);

        let mut tree_env = env_for(&hir);
        let mut tree_sink = OpSink::default();
        let tree_val = {
            let mut interp = Interp {
                env: &mut tree_env,
                funcs: &hir.functions,
                cost: CostModel::default(),
                sink: &mut tree_sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel: 10_000_000,
            };
            interp.call(f.0, None, args.clone()).unwrap_or_else(|e| panic!("tree: {e}"))
        };

        let module = lower_functions(&hir.functions);
        let mut vm_env = env_for(&hir);
        let mut vm_sink = OpSink::default();
        let mut regs = Vec::new();
        let vm_val = {
            let mut vm = Vm {
                env: &mut vm_env,
                module: &module,
                cost: CostModel::default(),
                sink: &mut vm_sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel: 10_000_000,
                regs: &mut regs,
            };
            vm.call(f.0, None, &args).unwrap_or_else(|e| panic!("vm: {e}"))
        };

        assert_eq!(tree_val, vm_val, "return values");
        assert_eq!(tree_env.globals, vm_env.globals, "globals");
        assert_eq!(tree_env.heap.arrays, vm_env.heap.arrays, "arrays");
        assert_eq!(tree_env.heap.objects.len(), vm_env.heap.objects.len(), "object count");
        for (a, b) in tree_env.heap.objects.iter().zip(&vm_env.heap.objects) {
            assert_eq!(a.fields, b.fields, "object fields");
        }
        let ts: Vec<_> = tree_sink.into_steps().into_iter().collect();
        let vs: Vec<_> = vm_sink.into_steps().into_iter().collect();
        assert_eq!(ts, vs, "step sequences");
        vm_val
    }

    #[test]
    fn recursion_matches_tree_walker() {
        let v = both(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }",
            "fib",
            vec![Value::Int(12)],
        );
        assert_eq!(v, Value::Int(144));
    }

    #[test]
    fn loops_arrays_and_objects_match() {
        let v = both(
            "class cell { int count; void bump(int n) { this.count += n; } }
             int test(int n) {
                 cell[] cells = new cell[n];
                 for (int i = 0; i < n; i++) { cells[i] = new cell(); }
                 int j = n * 2;
                 while (j > 0) { j = j - 1; cells[j % n].bump(j); }
                 int total = 0;
                 for (int i = 0; i < n; i++) { total += cells[i].count; }
                 return total;
             }",
            "test",
            vec![Value::Int(6)],
        );
        assert_eq!(v, Value::Int(66));
    }

    #[test]
    fn extern_calls_and_doubles_match() {
        let v = both(
            "extern double hostadd(double, double);
             double test(int n) {
                 double acc = 0.0;
                 for (int i = 0; i < n; i++) { acc = hostadd(acc, i * 0.5); }
                 return acc;
             }",
            "test",
            vec![Value::Int(9)],
        );
        assert_eq!(v, Value::Double(18.0));
    }

    #[test]
    fn fuel_boundary_is_identical() {
        let src = "int burn(int n) { int acc = 0; for (int i = 0; i < n; i++) { acc += i; } return acc; }";
        let hir = compile_source(src).unwrap();
        let f = hir.function_named("burn").unwrap();
        let base = lock_base(4);
        let run_tree = |fuel: u64| -> Result<Value, RuntimeError> {
            let mut env = env_for(&hir);
            let mut sink = OpSink::default();
            let mut interp = Interp {
                env: &mut env,
                funcs: &hir.functions,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 4,
                fuel,
            };
            interp.call(f.0, None, vec![Value::Int(10)])
        };
        let module = lower_functions(&hir.functions);
        let run_vm = |fuel: u64| -> Result<Value, RuntimeError> {
            let mut env = env_for(&hir);
            let mut sink = OpSink::default();
            let mut regs = Vec::new();
            let mut vm = Vm {
                env: &mut env,
                module: &module,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 4,
                fuel,
                regs: &mut regs,
            };
            vm.call(f.0, None, &[Value::Int(10)])
        };
        // Find the exact fuel need under the tree-walker, then assert the
        // VM fails/succeeds on the same boundary.
        let need = (0..10_000u64).find(|&fu| run_tree(fu).is_ok()).expect("finite program");
        assert!(run_tree(need - 1).is_err());
        assert!(run_vm(need).is_ok(), "vm succeeds at the tree-walker's minimum fuel");
        let e = run_vm(need - 1).unwrap_err();
        assert!(e.message.contains("fuel"), "{e}");
    }
}
