//! Tier-3 native execution: closure-fusion compilation above the bytecode
//! VM.
//!
//! The bytecode VM ([`crate::vm`]) still pays three per-instruction costs
//! the hardware does not have to: the dispatch `match` (one indirect
//! branch from a single, maximally-mispredicted call site), a bounds check
//! on every register operand, and a fuel/cost debit per [`Insn::Charge`].
//! This module removes all three by compiling each [`VmFunc`] *basic
//! block* into a single fused Rust closure at `compile()` time:
//!
//! * **fused superinstructions** — the block's instructions are lowered to
//!   monomorphized op kernels (one closure type per instruction variant,
//!   with `BinOp`/`UnOp` split out so the operator folds into the kernel
//!   body) chained back-to-front: each kernel ends by calling the next
//!   kernel through its *own* call site, so the branch predictor sees one
//!   mostly-monomorphic target per site instead of one megamorphic
//!   dispatch loop. The chain's head is the block's single entry closure.
//! * **pre-validated register windows** — [`compile_native`] checks every
//!   operand index against the function's `num_regs` once, at compile
//!   time; the executor hands each block a window of exactly `num_regs`
//!   slots, so kernels use unchecked register access.
//! * **block-local optimization** — the register file is unobservable
//!   outside the tier (the determinism contract covers steps, heap,
//!   globals, results, and errors — not frame contents), so the compiler
//!   runs copy/constant/`this` propagation, constant folding, and
//!   liveness-driven dead-store elimination over each basic block before
//!   emitting kernels. Most of the lowering's `Move`/`Const`/`LoadThis`
//!   staging traffic disappears; call arguments are gathered straight
//!   from their resolved sources.
//! * **batched fuel/cost debits, bisected at the boundary** — every
//!   charge folds into its successor kernel as a prologue (no dedicated
//!   dispatch), and on fuel exhaustion the kernel debits the sink only
//!   for the fuel actually consumed, so the exhaustion point and the
//!   partial sink match the VM and the tree-walker bit-for-bit.
//!
//! ## The kernel calling convention
//!
//! A kernel returns a bare `u32` — the next block index, or one of three
//! sentinels ([`RET`], [`CALLX`], [`ERR`]) — so the whole chain's result
//! travels in a register instead of dragging a multi-word
//! `Result<BlockExit, _>` through every nested return. Block *exits* with
//! compile-time-constant payloads (which register to return, which
//! function to call) live in a per-block [`ExitDesc`] side table the
//! executor consults only when a sentinel comes back; runtime errors park
//! in the frame (`NativeFrame::err`). Calls terminate blocks so the
//! executor can re-window the register stack for the callee frame; plain
//! jumps stay inside the executor's inner loop, which keeps one frame
//! alive across all of a function's block transitions.
//!
//! ## Instrumentation stays exact
//!
//! Dynamic feedback needs live measurements *inside* the optimized tier
//! (the "Sampling Optimized Code for Type Feedback" problem): deoptimizing
//! to a slower tier to observe the program would perturb the very
//! overheads being measured. The native tier therefore keeps every
//! sink-visible operation exact, not sampled: `LockAcquire`/`LockRelease`
//! kernels emit the same acquire/release steps at the same points, charge
//! kernels debit the same nanosecond-exact compute, and host calls charge
//! their configured costs — so `ProcStats`, the per-lock metrics, the
//! detector signal path, and every oracle see byte-identical numbers under
//! all three tiers.
//!
//! ## Determinism contract
//!
//! Identical to the VM's (see [`crate::vm`]): same return values, heap,
//! globals, step sequences, error messages, and fuel boundary as the
//! tree-walker on every successful run; error paths may differ only in
//! partially-flushed sink contents around host calls (which batch their
//! preceding node charges after the call). `tests/native_differential.rs`
//! enforces the contract across all three tiers.

use crate::interp::{binary_op, CostModel, HostFn, ProgramEnv, RuntimeError, Value};
use crate::vm::{Insn, VmFunc, VmModule, NO_REG};
use dynfb_lang::hir::{BinOp, UnOp};
use dynfb_sim::{LockId, OpSink};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Kernel return sentinel: return from the function (see
/// [`ExitDesc::Return`] for the source register).
const RET: u32 = u32::MAX;
/// Kernel return sentinel: call a program function (see
/// [`ExitDesc::Call`] for the descriptor).
const CALLX: u32 = u32::MAX - 1;
/// Kernel return sentinel: a runtime error was parked in the frame.
const ERR: u32 = u32::MAX - 2;

/// The mutable state a fused block executes against: the function's
/// register window plus the program environment and accounting channels.
pub struct NativeFrame<'a> {
    /// Exactly `num_regs` slots of the running function's frame.
    regs: &'a mut [Value],
    env: &'a mut ProgramEnv,
    sink: &'a mut OpSink,
    fuel: &'a mut u64,
    this: Option<Value>,
    lock_base: LockId,
    lock_capacity: usize,
    /// Error slot: set by the failing kernel right before returning
    /// [`ERR`]; errors are rare, so they stay off the return path.
    err: Option<RuntimeError>,
}

impl NativeFrame<'_> {
    #[inline(always)]
    fn rd(&self, r: usize) -> Value {
        // SAFETY: `compile_native` validated every operand index against
        // `num_regs`, and the executor always passes a window of exactly
        // `num_regs` registers.
        unsafe { *self.regs.get_unchecked(r) }
    }

    #[inline(always)]
    fn wr(&mut self, r: usize, v: Value) {
        // SAFETY: as in `rd`.
        unsafe { *self.regs.get_unchecked_mut(r) = v }
    }

    #[cold]
    fn fail(&mut self, e: RuntimeError) -> u32 {
        self.err = Some(e);
        ERR
    }

    fn lock_for(&self, obj: usize) -> Result<LockId, RuntimeError> {
        if obj >= self.lock_capacity {
            return Err(RuntimeError::new(format!(
                "object {obj} exceeds the lock pool capacity {} (raise max_objects)",
                self.lock_capacity
            )));
        }
        Ok(self.lock_base.offset(obj))
    }
}

/// Read an operand inside a kernel body. Returns through
/// [`NativeFrame::fail`] on a missing receiver; the front end rejects
/// `this` outside methods, so that arm is defensive only.
macro_rules! rdop {
    ($fr:expr, $o:expr) => {
        match $o {
            Operand::Reg(r) => $fr.rd(r),
            Operand::Imm(v) => v,
            Operand::This => match $fr.this {
                Some(v) => v,
                None => return $fr.fail(RuntimeError::new("`this` outside method")),
            },
        }
    };
}

/// One fused kernel chain (a whole basic block).
type Kernel = Box<dyn Fn(&mut NativeFrame<'_>) -> u32 + Send + Sync>;

/// A fused fuel debit attached to the front of a kernel: `(n, n ×
/// node_cost)`, or `None` when the kernel runs uncharged.
type ChargePrologue = Option<(u32, Duration)>;

/// A value source resolved by the block-local optimizer: a register, a
/// compile-time constant, or the frame's receiver. The register file is
/// unobservable outside the tier (the contract covers steps, heap,
/// globals, results, and errors), which is what licenses rewriting
/// register reads into these.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Operand {
    Reg(usize),
    Imm(Value),
    This,
}

/// Micro-op: one [`Insn`] after operand resolution. Terminators are
/// represented separately as [`MExit`]s.
enum MOp {
    Charge(u32),
    /// Surviving `Move`/`Const`/`LoadThis` writes (most are deleted as
    /// dead stores).
    SetReg {
        dst: usize,
        src: Operand,
    },
    LoadGlobal {
        dst: usize,
        g: usize,
    },
    StoreGlobal {
        g: usize,
        src: Operand,
    },
    FieldGet {
        dst: usize,
        obj: Operand,
        field: usize,
    },
    FieldSet {
        obj: Operand,
        field: usize,
        src: Operand,
    },
    IndexGet {
        dst: usize,
        arr: Operand,
        idx: Operand,
    },
    IndexSet {
        arr: Operand,
        idx: Operand,
        src: Operand,
    },
    ArrayLen {
        dst: usize,
        arr: Operand,
    },
    Binary {
        dst: usize,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    Unary {
        dst: usize,
        op: UnOp,
        src: Operand,
    },
    IntToDouble {
        dst: usize,
        src: Operand,
    },
    CheckInt {
        src: Operand,
    },
    CheckRecv {
        obj: Operand,
        func: usize,
    },
    CallHost {
        dst: usize,
        ext: usize,
        args: Vec<Operand>,
    },
    NewObj {
        dst: usize,
        class: usize,
    },
    NewArr {
        dst: usize,
        len: Operand,
        default: Value,
    },
    LockAcquire {
        obj: Operand,
    },
    LockRelease {
        obj: Operand,
    },
}

impl MOp {
    /// The register this op definitely writes (error exits abort the
    /// whole run, so treating fallible writers as definite defs is sound
    /// for the backward dead-store walk).
    fn def_reg(&self) -> Option<usize> {
        match self {
            MOp::SetReg { dst, .. }
            | MOp::LoadGlobal { dst, .. }
            | MOp::FieldGet { dst, .. }
            | MOp::IndexGet { dst, .. }
            | MOp::ArrayLen { dst, .. }
            | MOp::Binary { dst, .. }
            | MOp::Unary { dst, .. }
            | MOp::IntToDouble { dst, .. }
            | MOp::CallHost { dst, .. }
            | MOp::NewObj { dst, .. }
            | MOp::NewArr { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    fn for_each_use(&self, f: &mut dyn FnMut(usize)) {
        let mut op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match self {
            MOp::Charge(_) | MOp::LoadGlobal { .. } | MOp::NewObj { .. } => {}
            MOp::SetReg { src, .. }
            | MOp::StoreGlobal { src, .. }
            | MOp::Unary { src, .. }
            | MOp::IntToDouble { src, .. }
            | MOp::CheckInt { src } => op(src),
            MOp::FieldGet { obj, .. }
            | MOp::CheckRecv { obj, .. }
            | MOp::LockAcquire { obj }
            | MOp::LockRelease { obj } => op(obj),
            MOp::FieldSet { obj, src, .. } => {
                op(obj);
                op(src);
            }
            MOp::IndexGet { arr, idx, .. } => {
                op(arr);
                op(idx);
            }
            MOp::IndexSet { arr, idx, src } => {
                op(arr);
                op(idx);
                op(src);
            }
            MOp::ArrayLen { arr, .. } => op(arr),
            MOp::Binary { lhs, rhs, .. } => {
                op(lhs);
                op(rhs);
            }
            MOp::CallHost { args, .. } => {
                for a in args {
                    op(a);
                }
            }
            MOp::NewArr { len, .. } => op(len),
        }
    }
}

/// Block terminator after operand resolution.
enum MExit {
    Jump {
        target: u32,
    },
    /// `JumpIfFalse`: go to `fall` when the condition is exactly
    /// `Bool(true)`, else to `taken`.
    Branch {
        cond: Operand,
        taken: u32,
        fall: u32,
    },
    Return {
        src: Operand,
    },
    Call {
        func: usize,
        dst: usize,
        args: Vec<Operand>,
        recv: Option<Operand>,
        next: u32,
    },
}

impl MExit {
    fn successors(&self, f: &mut dyn FnMut(u32)) {
        match self {
            MExit::Jump { target } => f(*target),
            MExit::Branch { taken, fall, .. } => {
                f(*taken);
                f(*fall);
            }
            MExit::Return { .. } => {}
            MExit::Call { next, .. } => f(*next),
        }
    }

    /// The call result write happens after every exit read, so it is the
    /// block's last def.
    fn def_reg(&self) -> Option<usize> {
        match self {
            MExit::Call { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    fn for_each_use(&self, f: &mut dyn FnMut(usize)) {
        let mut op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match self {
            MExit::Jump { .. } => {}
            MExit::Branch { cond, .. } => op(cond),
            MExit::Return { src } => op(src),
            MExit::Call { args, recv, .. } => {
                for a in args {
                    op(a);
                }
                if let Some(r0) = recv {
                    op(r0);
                }
            }
        }
    }
}

/// What the block-local forward pass knows a register to hold.
#[derive(Clone, Copy)]
enum Val {
    Unknown,
    Imm(Value),
    This,
    /// Copy of `src` as of generation `gen`; stale once `src` is
    /// redefined.
    Copy {
        src: usize,
        gen: u64,
    },
}

/// Forward value-propagation state (copy/const/`this` tracking with
/// generation counters for invalidation).
struct Prop {
    vals: Vec<Val>,
    gens: Vec<u64>,
    clock: u64,
}

impl Prop {
    fn new(num_regs: usize) -> Self {
        Prop { vals: vec![Val::Unknown; num_regs], gens: vec![0; num_regs], clock: 0 }
    }

    /// The best source for reading `reg` right now.
    fn resolve(&self, reg: usize) -> Operand {
        match self.vals[reg] {
            Val::Imm(v) => Operand::Imm(v),
            Val::This => Operand::This,
            Val::Copy { src, gen } if self.gens[src] == gen => Operand::Reg(src),
            _ => Operand::Reg(reg),
        }
    }

    fn def(&mut self, reg: usize, v: Val) {
        self.clock += 1;
        self.gens[reg] = self.clock;
        self.vals[reg] = v;
    }

    fn def_from(&mut self, reg: usize, o: Operand) {
        let v = match o {
            Operand::Imm(v) => Val::Imm(v),
            Operand::This => Val::This,
            Operand::Reg(s) => Val::Copy { src: s, gen: self.gens[s] },
        };
        self.def(reg, v);
    }
}

/// Dense register set for the liveness fixpoint.
#[derive(Clone, PartialEq)]
struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    fn new(num_regs: usize) -> Self {
        RegSet { bits: vec![0; num_regs.div_ceil(64)] }
    }

    fn set(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, o: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&o.bits) {
            let nv = *a | b;
            changed |= nv != *a;
            *a = nv;
        }
        changed
    }

    fn subtract(&mut self, o: &RegSet) {
        for (a, b) in self.bits.iter_mut().zip(&o.bits) {
            *a &= !b;
        }
    }
}

/// Compile-time-constant exit payload of one block, consulted by the
/// executor when the block's chain returns a sentinel.
enum ExitDesc {
    /// The chain returns successor block indices directly.
    Jump,
    /// The chain returns [`RET`]; the return value comes from this source.
    Return { src: Operand },
    /// The chain returns [`CALLX`]; call `func` and resume at `next`. The
    /// executor gathers arguments straight from their resolved sources,
    /// so the lowering's staging moves die as dead stores.
    Call { func: usize, dst: usize, args: Box<[Operand]>, recv: Option<Operand>, next: u32 },
}

struct NativeBlock {
    enter: Kernel,
    exit: ExitDesc,
}

/// A natively compiled function: its basic blocks as fused closures.
pub struct NativeFunc {
    name: String,
    num_params: usize,
    local_defaults: Vec<Value>,
    num_regs: usize,
    blocks: Vec<NativeBlock>,
}

/// A natively compiled function table. Indices match the source
/// [`VmModule`], so `FuncId`s translate directly.
pub struct NativeModule {
    funcs: Vec<NativeFunc>,
}

impl fmt::Debug for NativeModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("NativeModule");
        for func in &self.funcs {
            d.field(&func.name, &format_args!("{} blocks", func.blocks.len()));
        }
        d.finish()
    }
}

fn fuel_exhausted() -> RuntimeError {
    RuntimeError::new("evaluation fuel exhausted (runaway loop?)")
}

/// Compile a lowered module into fused-closure form.
///
/// Shareable (`Arc`) because compiled apps clone their per-version code
/// but the fused closures are immutable once built.
///
/// # Panics
///
/// Panics when the bytecode violates a lowering invariant (an operand
/// outside the register file, a jump into the middle of a block, a
/// function not terminated by `Return`). The lowerer never emits such
/// code; the checks are what license unchecked register access at run
/// time.
#[must_use]
pub fn compile_native(module: &VmModule, cost: &CostModel) -> Arc<NativeModule> {
    let funcs = module.funcs.iter().map(|f| compile_func(f, module, cost)).collect();
    Arc::new(NativeModule { funcs })
}

/// Boxing helper with an optional fused charge prologue: when `ch` is
/// `Some((n, total))` the kernel debits `n` fuel units (bisecting exactly
/// at the fuel boundary) before running `f`. Folding the charge into its
/// successor kernel this way removes one boxed call per `Insn::Charge`
/// without touching the sink-visible debit sequence.
fn kch(
    ch: ChargePrologue,
    node_cost: Duration,
    f: impl Fn(&mut NativeFrame<'_>) -> u32 + Send + Sync + 'static,
) -> Kernel {
    match ch {
        None => Box::new(f),
        Some((n, total)) => Box::new(move |fr| {
            let need = u64::from(n);
            if need > *fr.fuel {
                // Bisect the block debit at the fuel boundary: the sink
                // records exactly the consumed fuel, matching the
                // per-node tiers bit-for-bit.
                let used = u32::try_from(*fr.fuel).expect("fuel < n <= u32::MAX");
                fr.sink.compute_batch(node_cost, used);
                *fr.fuel = 0;
                return fr.fail(fuel_exhausted());
            }
            *fr.fuel -= need;
            fr.sink.compute(total);
            f(fr)
        }),
    }
}

#[allow(clippy::too_many_lines)]
fn compile_func(f: &VmFunc, module: &VmModule, cost: &CostModel) -> NativeFunc {
    let code = &f.code[..];
    let n = code.len();
    let num_regs = f.num_regs;
    assert!(
        matches!(code.last(), Some(Insn::Return { .. })),
        "`{}`: function must end in Return",
        f.name
    );

    // Validate every register operand once; run-time access is unchecked.
    let r = |reg: crate::vm::Reg| -> usize {
        let i = usize::from(reg);
        assert!(i < num_regs, "`{}`: register {i} outside frame of {num_regs}", f.name);
        i
    };

    // Block leaders: entry, jump targets, and the instruction after every
    // terminator. Calls terminate blocks too — the executor must re-window
    // the register stack around the callee frame.
    let mut is_leader = vec![false; n + 1];
    is_leader[0] = true;
    for (i, insn) in code.iter().enumerate() {
        match insn {
            Insn::Jump { target } | Insn::JumpIfFalse { target, .. } => {
                is_leader[*target as usize] = true;
                is_leader[i + 1] = true;
            }
            Insn::Return { .. } | Insn::Call { .. } => is_leader[i + 1] = true,
            _ => {}
        }
    }
    let mut starts: Vec<usize> = Vec::new();
    let mut block_of = vec![u32::MAX; n + 1];
    for i in 0..n {
        if is_leader[i] {
            starts.push(i);
        }
        block_of[i] = u32::try_from(starts.len() - 1).expect("block count fits u32");
    }
    block_of[n] = u32::try_from(starts.len()).expect("fits"); // one-past-the-end

    let node_cost = cost.node;
    let extern_default = cost.extern_default;
    let nb = starts.len();

    // ---- pass 1: block-local value propagation → micro-ops ----
    //
    // Within one block, track what each register holds (constant, copy of
    // another register, the receiver) and resolve every read to its best
    // source. Reads become `Operand`s; constant subexpressions fold.
    let mut bodies: Vec<Vec<MOp>> = Vec::with_capacity(nb);
    let mut exits: Vec<MExit> = Vec::with_capacity(nb);
    for (b, &start) in starts.iter().enumerate() {
        let end = starts.get(b + 1).copied().unwrap_or(n);
        let last = end - 1;
        let in_range = |t: u32| (t as usize) < nb;
        let terminator = matches!(
            code[last],
            Insn::Jump { .. } | Insn::JumpIfFalse { .. } | Insn::Return { .. } | Insn::Call { .. }
        );
        let body_end = if terminator { last } else { end };

        let mut p = Prop::new(num_regs);
        let mut body: Vec<MOp> = Vec::new();
        for insn in &code[start..body_end] {
            propagate(insn, &mut p, &mut body, &r, num_regs, &f.name);
        }
        let exit: MExit = if terminator {
            match &code[last] {
                Insn::Jump { target } => {
                    assert!(is_leader[*target as usize], "jump into mid-block");
                    MExit::Jump { target: block_of[*target as usize] }
                }
                Insn::JumpIfFalse { cond, target } => {
                    assert!(is_leader[*target as usize], "branch into mid-block");
                    let taken = block_of[*target as usize];
                    let fall = block_of[end];
                    assert!(in_range(fall), "`{}`: branch falls off the end", f.name);
                    match p.resolve(r(*cond)) {
                        // A constant condition decides the branch now.
                        Operand::Imm(v) => MExit::Jump {
                            target: if matches!(v, Value::Bool(true)) { fall } else { taken },
                        },
                        cond => MExit::Branch { cond, taken, fall },
                    }
                }
                Insn::Return { src } => MExit::Return { src: p.resolve(r(*src)) },
                Insn::Call { dst, func, base, recv } => {
                    let callee = *func as usize;
                    let cf = &module.funcs[callee];
                    // The argument window may sit at the very end of the
                    // frame when it is empty, so validate the span, not
                    // the base.
                    let abase = usize::from(*base);
                    assert!(
                        abase + cf.num_params <= num_regs,
                        "`{}`: argument block outside frame",
                        f.name
                    );
                    let next = block_of[end];
                    assert!(in_range(next), "`{}`: call falls off the end", f.name);
                    MExit::Call {
                        func: callee,
                        dst: r(*dst),
                        // Gathering arguments straight from their sources
                        // usually turns the staging `Move`s into dead
                        // stores, which pass 3 then deletes.
                        args: (0..cf.num_params).map(|i| p.resolve(abase + i)).collect(),
                        recv: if *recv == NO_REG { None } else { Some(p.resolve(r(*recv))) },
                        next,
                    }
                }
                _ => unreachable!("terminator match is exhaustive"),
            }
        } else {
            // Fall-through into the next leader (e.g. a loop head).
            let next = block_of[end];
            assert!(in_range(next), "`{}`: block falls off the end", f.name);
            MExit::Jump { target: next }
        };
        bodies.push(body);
        exits.push(exit);
    }

    // ---- pass 2: register liveness across blocks ----
    let mut ue = Vec::with_capacity(nb);
    let mut defs = Vec::with_capacity(nb);
    for b in 0..nb {
        let mut u = RegSet::new(num_regs);
        let mut d = RegSet::new(num_regs);
        for opn in &bodies[b] {
            opn.for_each_use(&mut |r0| {
                if !d.get(r0) {
                    u.set(r0);
                }
            });
            if let Some(dr) = opn.def_reg() {
                d.set(dr);
            }
        }
        exits[b].for_each_use(&mut |r0| {
            if !d.get(r0) {
                u.set(r0);
            }
        });
        if let Some(dr) = exits[b].def_reg() {
            d.set(dr);
        }
        ue.push(u);
        defs.push(d);
    }
    let mut live_in = vec![RegSet::new(num_regs); nb];
    let mut live_out = vec![RegSet::new(num_regs); nb];
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            exits[b].successors(&mut |s| {
                changed |= live_out[b].union_with(&live_in[s as usize]);
            });
            let mut ni = live_out[b].clone();
            ni.subtract(&defs[b]);
            ni.union_with(&ue[b]);
            if ni != live_in[b] {
                live_in[b] = ni;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 3: dead-store elimination ----
    //
    // `SetReg` is the only pure op (the front end rejects `this` outside
    // methods, so `LoadThis` cannot fail in compiled programs); one whose
    // destination is not read again before being redefined is deleted.
    for b in 0..nb {
        let body = &mut bodies[b];
        let mut needed = live_out[b].clone();
        if let Some(d) = exits[b].def_reg() {
            needed.clear(d);
        }
        exits[b].for_each_use(&mut |r0| needed.set(r0));
        let mut keep = vec![true; body.len()];
        for (i, opn) in body.iter().enumerate().rev() {
            if let MOp::SetReg { dst, src } = opn {
                if !needed.get(*dst) || *src == Operand::Reg(*dst) {
                    keep[i] = false;
                    continue;
                }
            }
            if let Some(d) = opn.def_reg() {
                needed.clear(d);
            }
            opn.for_each_use(&mut |r0| needed.set(r0));
        }
        let mut it = keep.iter();
        body.retain(|_| *it.next().expect("keep mask covers body"));
    }

    // ---- pass 4: charge folding + kernel chaining ----
    //
    // Each charge becomes its successor kernel's prologue (adjacent
    // charges — separated only by deleted stores — merge first, which is
    // step-equivalent because the sink merges consecutive computes and
    // the bisected debit totals are identical). Then the straight-line
    // kernels fuse back-to-front onto the exit, so each kernel tail-calls
    // its successor through a private call site.
    let mut blocks: Vec<NativeBlock> = Vec::with_capacity(nb);
    for (body, exit) in bodies.into_iter().zip(exits) {
        let mut fused: Vec<(ChargePrologue, Option<MOp>)> = Vec::new();
        let mut exit_charge: ChargePrologue = None;
        let mut it = body.into_iter().peekable();
        while let Some(opn) = it.next() {
            let MOp::Charge(mut total) = opn else {
                fused.push((None, Some(opn)));
                continue;
            };
            while let Some(MOp::Charge(m)) = it.peek() {
                match total.checked_add(*m) {
                    Some(s) => {
                        total = s;
                        it.next();
                    }
                    None => break,
                }
            }
            let ch = Some((total, node_cost * total));
            match it.peek() {
                None => exit_charge = ch,
                // Only reachable on u32 charge overflow: keep a bare
                // charge kernel rather than merging further.
                Some(MOp::Charge(_)) => fused.push((ch, None)),
                Some(_) => fused.push((ch, it.next())),
            }
        }

        let (mut chain, desc): (Kernel, ExitDesc) = match exit {
            MExit::Jump { target } => {
                (kch(exit_charge, node_cost, move |_| target), ExitDesc::Jump)
            }
            MExit::Branch { cond, taken, fall } => (
                kch(exit_charge, node_cost, move |fr| {
                    if matches!(rdop!(fr, cond), Value::Bool(true)) {
                        fall
                    } else {
                        taken
                    }
                }),
                ExitDesc::Jump,
            ),
            MExit::Return { src } => {
                (kch(exit_charge, node_cost, move |_| RET), ExitDesc::Return { src })
            }
            MExit::Call { func, dst, args, recv, next } => (
                kch(exit_charge, node_cost, move |_| CALLX),
                ExitDesc::Call { func, dst, args: args.into_boxed_slice(), recv, next },
            ),
        };
        for (ch, opn) in fused.into_iter().rev() {
            chain = build_kernel(opn, ch, chain, node_cost, extern_default, module);
        }
        blocks.push(NativeBlock { enter: chain, exit: desc });
    }

    NativeFunc {
        name: f.name.clone(),
        num_params: f.num_params,
        local_defaults: f.local_defaults.clone(),
        num_regs,
        blocks,
    }
}

/// Lower one straight-line instruction to micro-ops, resolving its reads
/// against the propagation state and recording its write.
#[allow(clippy::too_many_lines)]
fn propagate(
    insn: &Insn,
    p: &mut Prop,
    out: &mut Vec<MOp>,
    r: &dyn Fn(crate::vm::Reg) -> usize,
    num_regs: usize,
    fname: &str,
) {
    match insn {
        Insn::Charge(n) => out.push(MOp::Charge(*n)),
        Insn::Const { dst, v } => {
            let d = r(*dst);
            p.def(d, Val::Imm(*v));
            out.push(MOp::SetReg { dst: d, src: Operand::Imm(*v) });
        }
        Insn::Move { dst, src } => {
            let o = p.resolve(r(*src));
            let d = r(*dst);
            p.def_from(d, o);
            out.push(MOp::SetReg { dst: d, src: o });
        }
        Insn::LoadThis { dst } => {
            let d = r(*dst);
            p.def(d, Val::This);
            out.push(MOp::SetReg { dst: d, src: Operand::This });
        }
        Insn::LoadGlobal { dst, g } => {
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::LoadGlobal { dst: d, g: *g as usize });
        }
        Insn::StoreGlobal { g, src } => {
            let src = p.resolve(r(*src));
            out.push(MOp::StoreGlobal { g: *g as usize, src });
        }
        Insn::FieldGet { dst, obj, field } => {
            let obj = p.resolve(r(*obj));
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::FieldGet { dst: d, obj, field: usize::from(*field) });
        }
        Insn::FieldSet { obj, field, src } => {
            let obj = p.resolve(r(*obj));
            let src = p.resolve(r(*src));
            out.push(MOp::FieldSet { obj, field: usize::from(*field), src });
        }
        Insn::IndexGet { dst, arr, idx } => {
            let (arr, idx) = (p.resolve(r(*arr)), p.resolve(r(*idx)));
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::IndexGet { dst: d, arr, idx });
        }
        Insn::IndexSet { arr, idx, src } => {
            let (arr, idx, src) = (p.resolve(r(*arr)), p.resolve(r(*idx)), p.resolve(r(*src)));
            out.push(MOp::IndexSet { arr, idx, src });
        }
        Insn::ArrayLen { dst, arr } => {
            let arr = p.resolve(r(*arr));
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::ArrayLen { dst: d, arr });
        }
        Insn::Binary { dst, op, lhs, rhs } => {
            let (lhs, rhs) = (p.resolve(r(*lhs)), p.resolve(r(*rhs)));
            let d = r(*dst);
            // Constant folding: `binary_op` is deterministic, so a
            // successful compile-time evaluation is the run-time result.
            // A failing one keeps the kernel so the error still fires at
            // the same point.
            if let (Operand::Imm(a), Operand::Imm(b)) = (lhs, rhs) {
                if let Ok(v) = binary_op(*op, a, b) {
                    p.def(d, Val::Imm(v));
                    out.push(MOp::SetReg { dst: d, src: Operand::Imm(v) });
                    return;
                }
            }
            p.def(d, Val::Unknown);
            out.push(MOp::Binary { dst: d, op: *op, lhs, rhs });
        }
        Insn::Unary { dst, op, src } => {
            let src = p.resolve(r(*src));
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::Unary { dst: d, op: *op, src });
        }
        Insn::IntToDouble { dst, src } => {
            let src = p.resolve(r(*src));
            let d = r(*dst);
            if let Operand::Imm(v) = src {
                if let Ok(i) = v.as_int() {
                    let folded = Value::Double(i as f64);
                    p.def(d, Val::Imm(folded));
                    out.push(MOp::SetReg { dst: d, src: Operand::Imm(folded) });
                    return;
                }
            }
            p.def(d, Val::Unknown);
            out.push(MOp::IntToDouble { dst: d, src });
        }
        Insn::CheckInt { src } => {
            let src = p.resolve(r(*src));
            // A check a constant satisfies can never fire.
            if let Operand::Imm(v) = src {
                if v.as_int().is_ok() {
                    return;
                }
            }
            out.push(MOp::CheckInt { src });
        }
        Insn::CheckRecv { obj, func } => {
            let obj = p.resolve(r(*obj));
            out.push(MOp::CheckRecv { obj, func: *func as usize });
        }
        Insn::CallHost { dst, ext, base, argc } => {
            // As with `Call`, an empty argument window may start one past
            // the last register; validate the span.
            let (abase, argc) = (usize::from(*base), usize::from(*argc));
            assert!(abase + argc <= num_regs, "`{fname}`: host argument block outside frame");
            let args = (0..argc).map(|i| p.resolve(abase + i)).collect();
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::CallHost { dst: d, ext: *ext as usize, args });
        }
        Insn::NewObj { dst, class } => {
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::NewObj { dst: d, class: *class as usize });
        }
        Insn::NewArr { dst, len, default } => {
            let len = p.resolve(r(*len));
            let d = r(*dst);
            p.def(d, Val::Unknown);
            out.push(MOp::NewArr { dst: d, len, default: *default });
        }
        Insn::LockAcquire { obj } => {
            let obj = p.resolve(r(*obj));
            out.push(MOp::LockAcquire { obj });
        }
        Insn::LockRelease { obj } => {
            let obj = p.resolve(r(*obj));
            out.push(MOp::LockRelease { obj });
        }
        Insn::Jump { .. } | Insn::JumpIfFalse { .. } | Insn::Call { .. } | Insn::Return { .. } => {
            unreachable!("terminators are block exits, not straight-line ops")
        }
    }
}

/// Chain one micro-op's monomorphized kernel (with its optional fused
/// charge prologue) in front of `next`. `None` is a bare charge kernel.
#[allow(clippy::too_many_lines)]
fn build_kernel(
    opn: Option<MOp>,
    ch: ChargePrologue,
    next: Kernel,
    node_cost: Duration,
    extern_default: Duration,
    module: &VmModule,
) -> Kernel {
    let Some(opn) = opn else {
        return kch(ch, node_cost, move |fr| next(fr));
    };
    // One closure type per `match` arm: the operator/operand shape is a
    // compile-time constant inside each kernel body, and the `next(fr)`
    // call site is unique to the arm.
    match opn {
        MOp::Charge(_) => unreachable!("charges were folded into successor kernels"),
        MOp::SetReg { dst, src } => match src {
            Operand::Reg(s) => kch(ch, node_cost, move |fr| {
                let v = fr.rd(s);
                fr.wr(dst, v);
                next(fr)
            }),
            Operand::Imm(v) => kch(ch, node_cost, move |fr| {
                fr.wr(dst, v);
                next(fr)
            }),
            Operand::This => kch(ch, node_cost, move |fr| {
                let v = rdop!(fr, Operand::This);
                fr.wr(dst, v);
                next(fr)
            }),
        },
        MOp::LoadGlobal { dst, g } => kch(ch, node_cost, move |fr| {
            let v = fr.env.globals[g];
            fr.wr(dst, v);
            next(fr)
        }),
        MOp::StoreGlobal { g, src } => kch(ch, node_cost, move |fr| {
            fr.env.globals[g] = rdop!(fr, src);
            next(fr)
        }),
        MOp::FieldGet { dst, obj, field } => match obj {
            Operand::Reg(o) => kch(ch, node_cost, move |fr| {
                let Value::Obj(id) = fr.rd(o) else {
                    return fr.fail(RuntimeError::new("field read on null/non-object"));
                };
                let v = fr.env.heap.objects[id].fields[field];
                fr.wr(dst, v);
                next(fr)
            }),
            obj => kch(ch, node_cost, move |fr| {
                let Value::Obj(id) = rdop!(fr, obj) else {
                    return fr.fail(RuntimeError::new("field read on null/non-object"));
                };
                let v = fr.env.heap.objects[id].fields[field];
                fr.wr(dst, v);
                next(fr)
            }),
        },
        MOp::FieldSet { obj, field, src } => kch(ch, node_cost, move |fr| {
            let v = rdop!(fr, src);
            let Value::Obj(id) = rdop!(fr, obj) else {
                return fr.fail(RuntimeError::new("field write on null/non-object"));
            };
            fr.env.heap.objects[id].fields[field] = v;
            next(fr)
        }),
        MOp::IndexGet { dst, arr, idx } => kch(ch, node_cost, move |fr| {
            let i = match rdop!(fr, idx).as_int() {
                Ok(i) => i,
                Err(e) => return fr.fail(e),
            };
            let Value::Arr(id) = rdop!(fr, arr) else {
                return fr.fail(RuntimeError::new("index read on null/non-array"));
            };
            let a = &fr.env.heap.arrays[id];
            match a.get(usize::try_from(i).unwrap_or(usize::MAX)) {
                Some(v) => {
                    let v = *v;
                    fr.wr(dst, v);
                    next(fr)
                }
                None => {
                    let len = a.len();
                    fr.fail(RuntimeError::new(format!("index {i} out of bounds ({len})")))
                }
            }
        }),
        MOp::IndexSet { arr, idx, src } => kch(ch, node_cost, move |fr| {
            let v = rdop!(fr, src);
            let i = match rdop!(fr, idx).as_int() {
                Ok(i) => i,
                Err(e) => return fr.fail(e),
            };
            let Value::Arr(id) = rdop!(fr, arr) else {
                return fr.fail(RuntimeError::new("index write on null/non-array"));
            };
            let a = &mut fr.env.heap.arrays[id];
            let len = a.len();
            match a.get_mut(usize::try_from(i).unwrap_or(usize::MAX)) {
                Some(slot) => {
                    *slot = v;
                    next(fr)
                }
                None => fr.fail(RuntimeError::new(format!("index {i} out of bounds ({len})"))),
            }
        }),
        MOp::ArrayLen { dst, arr } => kch(ch, node_cost, move |fr| {
            let Value::Arr(id) = rdop!(fr, arr) else {
                return fr.fail(RuntimeError::new("length of null/non-array"));
            };
            let v = Value::Int(fr.env.heap.arrays[id].len() as i64);
            fr.wr(dst, v);
            next(fr)
        }),
        MOp::Binary { dst, op, lhs, rhs } => {
            // Monomorphize the operator and the three hot operand shapes
            // (reg-reg, reg-imm, imm-reg) so `binary_op` const-folds per
            // arm.
            macro_rules! bink {
                ($op:expr) => {
                    match (lhs, rhs) {
                        (Operand::Reg(l), Operand::Reg(r2)) => kch(ch, node_cost, move |fr| {
                            match binary_op($op, fr.rd(l), fr.rd(r2)) {
                                Ok(v) => {
                                    fr.wr(dst, v);
                                    next(fr)
                                }
                                Err(e) => fr.fail(e),
                            }
                        }),
                        (Operand::Reg(l), Operand::Imm(b)) => {
                            kch(ch, node_cost, move |fr| match binary_op($op, fr.rd(l), b) {
                                Ok(v) => {
                                    fr.wr(dst, v);
                                    next(fr)
                                }
                                Err(e) => fr.fail(e),
                            })
                        }
                        (Operand::Imm(a), Operand::Reg(r2)) => {
                            kch(ch, node_cost, move |fr| match binary_op($op, a, fr.rd(r2)) {
                                Ok(v) => {
                                    fr.wr(dst, v);
                                    next(fr)
                                }
                                Err(e) => fr.fail(e),
                            })
                        }
                        (lhs, rhs) => kch(ch, node_cost, move |fr| {
                            let a = rdop!(fr, lhs);
                            let b = rdop!(fr, rhs);
                            match binary_op($op, a, b) {
                                Ok(v) => {
                                    fr.wr(dst, v);
                                    next(fr)
                                }
                                Err(e) => fr.fail(e),
                            }
                        }),
                    }
                };
            }
            match op {
                BinOp::Add => bink!(BinOp::Add),
                BinOp::Sub => bink!(BinOp::Sub),
                BinOp::Mul => bink!(BinOp::Mul),
                BinOp::Div => bink!(BinOp::Div),
                BinOp::Rem => bink!(BinOp::Rem),
                BinOp::Eq => bink!(BinOp::Eq),
                BinOp::Ne => bink!(BinOp::Ne),
                BinOp::Lt => bink!(BinOp::Lt),
                BinOp::Le => bink!(BinOp::Le),
                BinOp::Gt => bink!(BinOp::Gt),
                BinOp::Ge => bink!(BinOp::Ge),
                BinOp::And => bink!(BinOp::And),
                BinOp::Or => bink!(BinOp::Or),
            }
        }
        MOp::Unary { dst, op, src } => match op {
            UnOp::Neg => kch(ch, node_cost, move |fr| {
                let v = match rdop!(fr, src) {
                    Value::Int(x) => Value::Int(-x),
                    Value::Double(x) => Value::Double(-x),
                    _ => return fr.fail(RuntimeError::new("negating non-number")),
                };
                fr.wr(dst, v);
                next(fr)
            }),
            UnOp::Not => kch(ch, node_cost, move |fr| {
                let v = match rdop!(fr, src) {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => return fr.fail(RuntimeError::new("`!` on non-bool")),
                };
                fr.wr(dst, v);
                next(fr)
            }),
        },
        MOp::IntToDouble { dst, src } => {
            kch(ch, node_cost, move |fr| match rdop!(fr, src).as_int() {
                Ok(i) => {
                    fr.wr(dst, Value::Double(i as f64));
                    next(fr)
                }
                Err(e) => fr.fail(e),
            })
        }
        MOp::CheckInt { src } => kch(ch, node_cost, move |fr| match rdop!(fr, src).as_int() {
            Ok(_) => next(fr),
            Err(e) => fr.fail(e),
        }),
        MOp::CheckRecv { obj, func } => {
            let name = module.funcs[func].name.clone();
            kch(ch, node_cost, move |fr| {
                if rdop!(fr, obj) == Value::Null {
                    return fr.fail(RuntimeError::new(format!("method `{name}` on null")));
                }
                next(fr)
            })
        }
        MOp::CallHost { dst, ext, args } => {
            assert!(args.len() <= 16, "host call arity above fused-kernel limit");
            let args = args.into_boxed_slice();
            kch(ch, node_cost, move |fr| {
                let mut buf = [Value::Null; 16];
                for (i, a) in args.iter().enumerate() {
                    buf[i] = rdop!(fr, *a);
                }
                let ProgramEnv { host, externs, .. } = &mut *fr.env;
                let host_fn: &mut HostFn = match host.dispatch(ext, externs) {
                    Ok(h) => h,
                    Err(e) => return fr.fail(e),
                };
                let cost = if host_fn.cost.is_zero() { extern_default } else { host_fn.cost };
                fr.sink.compute(cost);
                let v = (host_fn.call)(&buf[..args.len()]);
                fr.wr(dst, v);
                next(fr)
            })
        }
        MOp::NewObj { dst, class } => kch(ch, node_cost, move |fr| {
            let env = &mut *fr.env;
            let id = env.heap.alloc_object(class, &env.classes);
            fr.wr(dst, Value::Obj(id));
            next(fr)
        }),
        MOp::NewArr { dst, len, default } => kch(ch, node_cost, move |fr| {
            let n = match rdop!(fr, len).as_int() {
                Ok(n) => n,
                Err(e) => return fr.fail(e),
            };
            if n < 0 {
                return fr.fail(RuntimeError::new("negative array length"));
            }
            fr.env.heap.arrays.push(vec![default; n as usize]);
            fr.wr(dst, Value::Arr(fr.env.heap.arrays.len() - 1));
            next(fr)
        }),
        MOp::LockAcquire { obj } => kch(ch, node_cost, move |fr| {
            let Value::Obj(id) = rdop!(fr, obj) else {
                return fr.fail(RuntimeError::new("critical region on null/non-object"));
            };
            match fr.lock_for(id) {
                Ok(lock) => {
                    fr.sink.acquire(lock);
                    next(fr)
                }
                Err(e) => fr.fail(e),
            }
        }),
        MOp::LockRelease { obj } => kch(ch, node_cost, move |fr| {
            let Value::Obj(id) = rdop!(fr, obj) else {
                return fr.fail(RuntimeError::new("critical region on null/non-object"));
            };
            match fr.lock_for(id) {
                Ok(lock) => {
                    fr.sink.release(lock);
                    next(fr)
                }
                Err(e) => fr.fail(e),
            }
        }),
    }
}

/// The native executor. Borrows the same program state as the other tiers
/// and emits into the same [`OpSink`]; the register stack is
/// caller-provided so it can be reused across iterations without
/// reallocation.
pub struct NativeExec<'a> {
    /// Program state (heap, globals, host functions).
    pub env: &'a mut ProgramEnv,
    /// The compiled function table of the executing version.
    pub module: &'a NativeModule,
    /// Destination for compute/acquire/release steps.
    pub sink: &'a mut OpSink,
    /// First lock of the per-object lock pool.
    pub lock_base: LockId,
    /// Size of the lock pool (max objects).
    pub lock_capacity: usize,
    /// Remaining evaluation fuel.
    pub fuel: u64,
    /// The register stack, grown on demand and reused across calls.
    pub regs: &'a mut Vec<Value>,
}

impl NativeExec<'_> {
    /// Call a function with an optional receiver (frame at the base of the
    /// register stack).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors with the same messages as the other
    /// tiers.
    pub fn call(
        &mut self,
        func: usize,
        this: Option<Value>,
        args: &[Value],
    ) -> Result<Value, RuntimeError> {
        let f = &self.module.funcs[func];
        debug_assert_eq!(args.len(), f.num_params, "arity of `{}`", f.name);
        self.ensure(f.num_regs);
        self.regs[..args.len()].copy_from_slice(args);
        for i in args.len()..f.local_defaults.len() {
            self.regs[i] = f.local_defaults[i];
        }
        self.run(func, 0, this)
    }

    /// Execute an iteration body: frame-zero locals are reset to their
    /// defaults and the induction variable slot is preset.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn exec_iteration(
        &mut self,
        func: usize,
        var: usize,
        value: i64,
    ) -> Result<(), RuntimeError> {
        let f = &self.module.funcs[func];
        self.ensure(f.num_regs);
        self.regs[..f.local_defaults.len()].copy_from_slice(&f.local_defaults);
        self.regs[var] = Value::Int(value);
        self.run(func, 0, None).map(|_| ())
    }

    fn ensure(&mut self, need: usize) {
        if self.regs.len() < need {
            self.regs.resize(need, Value::Null);
        }
    }

    /// Read an exit operand against a frame based at `base`.
    fn read_exit_op(
        &self,
        base: usize,
        this: Option<Value>,
        op: Operand,
    ) -> Result<Value, RuntimeError> {
        match op {
            Operand::Reg(r) => Ok(self.regs[base + r]),
            Operand::Imm(v) => Ok(v),
            Operand::This => this.ok_or_else(|| RuntimeError::new("`this` outside method")),
        }
    }

    fn run(
        &mut self,
        func: usize,
        base: usize,
        this: Option<Value>,
    ) -> Result<Value, RuntimeError> {
        let module = self.module;
        let f = &module.funcs[func];
        let nblocks = u32::try_from(f.blocks.len()).expect("validated at compile");
        let mut bi: u32 = 0;
        loop {
            // One frame lives across every in-function block transition;
            // it is torn down only around calls (the callee may grow the
            // register stack, invalidating the window).
            let mut frame = NativeFrame {
                regs: &mut self.regs[base..base + f.num_regs],
                env: &mut *self.env,
                sink: &mut *self.sink,
                fuel: &mut self.fuel,
                this,
                lock_base: self.lock_base,
                lock_capacity: self.lock_capacity,
                err: None,
            };
            let code = loop {
                let c = (f.blocks[bi as usize].enter)(&mut frame);
                if c < nblocks {
                    bi = c;
                } else {
                    break c;
                }
            };
            let err = frame.err;
            match code {
                RET => {
                    let ExitDesc::Return { src } = &f.blocks[bi as usize].exit else {
                        unreachable!("RET from a non-return block")
                    };
                    return self.read_exit_op(base, this, *src);
                }
                CALLX => {
                    let ExitDesc::Call { func: callee, dst, args, recv, next } =
                        &f.blocks[bi as usize].exit
                    else {
                        unreachable!("CALLX from a non-call block")
                    };
                    let (callee, dst, next) = (*callee, *dst, *next);
                    let recv_v = match recv {
                        Some(op) => Some(self.read_exit_op(base, this, *op)?),
                        None => None,
                    };
                    let cf = &module.funcs[callee];
                    let callee_base = base + f.num_regs;
                    if self.regs.len() < callee_base + cf.num_regs {
                        self.regs.resize(callee_base + cf.num_regs, Value::Null);
                    }
                    // Argument sources live in the caller frame (below
                    // `callee_base`), so gather-after-resize is safe.
                    for (i, op) in args.iter().enumerate() {
                        let v = self.read_exit_op(base, this, *op)?;
                        self.regs[callee_base + i] = v;
                    }
                    for i in cf.num_params..cf.local_defaults.len() {
                        self.regs[callee_base + i] = cf.local_defaults[i];
                    }
                    let v = self.run(callee, callee_base, recv_v)?;
                    self.regs[base + dst] = v;
                    bi = next;
                }
                _ => return Err(err.expect("kernel parked an error before returning ERR")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Heap, HostRegistry, Interp};
    use crate::vm::{lower_functions, Vm};
    use dynfb_lang::compile_source;
    use dynfb_sim::Step;

    fn env_for(hir: &dynfb_lang::hir::Hir) -> ProgramEnv {
        let mut env = ProgramEnv {
            classes: hir.classes.clone(),
            externs: hir.externs.clone(),
            globals: hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect(),
            heap: Heap::default(),
            host: HostRegistry::new(),
        };
        env.host.register("hostadd", Duration::from_nanos(100), |args| {
            Value::Double(args[0].as_double().unwrap() + args[1].as_double().unwrap())
        });
        env
    }

    fn lock_base(n: usize) -> LockId {
        let mut m = dynfb_sim::Machine::new(dynfb_sim::MachineConfig::default());
        m.add_locks(n)
    }

    struct Outcome {
        result: Result<Value, RuntimeError>,
        steps: Vec<Step>,
        globals: Vec<Value>,
    }

    /// Run one function under all three tiers with the given fuel.
    fn tiers(src: &str, func: &str, args: &[Value], fuel: u64) -> [Outcome; 3] {
        let hir = compile_source(src).unwrap_or_else(|e| panic!("{e}"));
        let f = hir.function_named(func).expect("function");
        let base = lock_base(1024);
        let module = lower_functions(&hir.functions);
        let native = compile_native(&module, &CostModel::default());

        let tree = {
            let mut env = env_for(&hir);
            let mut sink = OpSink::default();
            let result = Interp {
                env: &mut env,
                funcs: &hir.functions,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel,
            }
            .call(f.0, None, args.to_vec());
            Outcome { result, steps: sink.into_steps().into_iter().collect(), globals: env.globals }
        };
        let vm = {
            let mut env = env_for(&hir);
            let mut sink = OpSink::default();
            let mut regs = Vec::new();
            let result = Vm {
                env: &mut env,
                module: &module,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel,
                regs: &mut regs,
            }
            .call(f.0, None, args);
            Outcome { result, steps: sink.into_steps().into_iter().collect(), globals: env.globals }
        };
        let nat = {
            let mut env = env_for(&hir);
            let mut sink = OpSink::default();
            let mut regs = Vec::new();
            let result = NativeExec {
                env: &mut env,
                module: &native,
                sink: &mut sink,
                lock_base: base,
                lock_capacity: 1024,
                fuel,
                regs: &mut regs,
            }
            .call(f.0, None, args);
            Outcome { result, steps: sink.into_steps().into_iter().collect(), globals: env.globals }
        };
        [tree, vm, nat]
    }

    #[test]
    fn recursion_and_control_flow_match() {
        let [tree, vm, nat] = tiers(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }",
            "fib",
            &[Value::Int(12)],
            10_000_000,
        );
        assert_eq!(tree.result.as_ref().unwrap(), &Value::Int(144));
        assert_eq!(tree.result, vm.result);
        assert_eq!(tree.result, nat.result);
        assert_eq!(tree.steps, nat.steps);
        assert_eq!(vm.steps, nat.steps);
    }

    #[test]
    fn loops_heap_and_externs_match() {
        let src = "extern double hostadd(double, double);
             class cell { int count; void bump(int n) { this.count += n; } }
             double test(int n) {
                 cell[] cells = new cell[n];
                 for (int i = 0; i < n; i++) { cells[i] = new cell(); }
                 int j = n * 2;
                 while (j > 0) { j = j - 1; cells[j % n].bump(j); }
                 double acc = 0.0;
                 for (int i = 0; i < n; i++) { acc = hostadd(acc, cells[i].count * 0.5); }
                 return acc;
             }";
        let [tree, vm, nat] = tiers(src, "test", &[Value::Int(6)], 10_000_000);
        assert_eq!(tree.result, nat.result);
        assert_eq!(vm.result, nat.result);
        assert_eq!(tree.steps, nat.steps);
        assert_eq!(tree.globals, nat.globals);
    }

    /// The fused-block debit bisects exactly at the fuel boundary: for
    /// every fuel value, all three tiers agree on success/failure, and an
    /// exhausted run's sink records exactly one node cost per unit of fuel
    /// consumed — so the partial step sequences are identical too (the
    /// program is free of host calls, whose cost batching legitimately
    /// differs on error paths).
    #[test]
    fn fuel_bisection_matches_across_tiers() {
        let src = "class acc { int v; void add(int n) { this.v += n; } }
                   int burn(int n) {
                       acc a = new acc();
                       for (int i = 0; i < n; i++) { a.add(i * i); }
                       return a.v;
                   }";
        let mut boundary = None;
        for fuel in 0..10_000u64 {
            let [tree, vm, nat] = tiers(src, "burn", &[Value::Int(9)], fuel);
            assert_eq!(
                tree.result.is_ok(),
                nat.result.is_ok(),
                "tree vs native disagree at fuel {fuel}"
            );
            assert_eq!(vm.result.is_ok(), nat.result.is_ok(), "vm vs native disagree at {fuel}");
            assert_eq!(tree.steps, nat.steps, "partial sinks differ at fuel {fuel}");
            assert_eq!(vm.steps, nat.steps, "partial sinks differ at fuel {fuel}");
            if tree.result.is_ok() {
                boundary = Some(fuel);
                break;
            }
            // Exhausted: the sink holds exactly `fuel` node costs.
            let total: Duration = nat
                .steps
                .iter()
                .map(|s| match s {
                    Step::Compute(d) => *d,
                    _ => Duration::ZERO,
                })
                .sum();
            assert_eq!(total, CostModel::default().node * u32::try_from(fuel).unwrap());
        }
        let need = boundary.expect("program terminates");
        assert!(need > 50, "boundary sweep must cross real work (got {need})");
    }

    /// Lock traffic on the error path: exhaustion before an acquire leaves
    /// the same acquire/release prefix in every tier (the lowering flushes
    /// charges before lock instructions, so the boundary cannot move
    /// across a lock operation).
    #[test]
    fn fuel_bisection_preserves_lock_prefix() {
        let src = "class cell { int v; void bump() { this.v += 1; } }
                   int locked(int n) {
                       cell c = new cell();
                       for (int i = 0; i < n; i++) { c.bump(); }
                       return c.v;
                   }";
        let hir = compile_source(src).unwrap();
        let mut funcs = hir.functions.clone();
        for f in &mut funcs {
            if f.class.is_some() {
                crate::lockplace::insert_default_regions(f);
            }
        }
        let f = hir.function_named("locked").unwrap();
        let base = lock_base(64);
        let module = lower_functions(&funcs);
        let native = compile_native(&module, &CostModel::default());
        for fuel in 0..600u64 {
            let run_tree = |fuel: u64| {
                let mut env = env_for(&hir);
                let mut sink = OpSink::default();
                let res = Interp {
                    env: &mut env,
                    funcs: &funcs,
                    cost: CostModel::default(),
                    sink: &mut sink,
                    lock_base: base,
                    lock_capacity: 64,
                    fuel,
                }
                .call(f.0, None, vec![Value::Int(8)]);
                (res, sink.into_steps().into_iter().collect::<Vec<_>>())
            };
            let run_native = |fuel: u64| {
                let mut env = env_for(&hir);
                let mut sink = OpSink::default();
                let mut regs = Vec::new();
                let res = NativeExec {
                    env: &mut env,
                    module: &native,
                    sink: &mut sink,
                    lock_base: base,
                    lock_capacity: 64,
                    fuel,
                    regs: &mut regs,
                }
                .call(f.0, None, &[Value::Int(8)]);
                (res, sink.into_steps().into_iter().collect::<Vec<_>>())
            };
            let (tr, ts) = run_tree(fuel);
            let (nr, ns) = run_native(fuel);
            assert_eq!(tr.is_ok(), nr.is_ok(), "boundary at fuel {fuel}");
            assert_eq!(ts, ns, "lock/compute prefix at fuel {fuel}");
            if tr.is_ok() {
                assert!(
                    ts.iter().any(|s| matches!(s, Step::Acquire(_))),
                    "test must exercise lock traffic"
                );
                return;
            }
        }
        panic!("program never completed within the sweep");
    }
}
