//! Side-effect analysis: which state each function reads and writes.
//!
//! Operations in the paper's model update *their receiver object*; the
//! commutativity analysis needs to know, for every function: the receiver
//! fields it reads and writes, whether it writes globals, arrays, or other
//! objects' fields (all of which disqualify it as a well-formed operation),
//! and which functions it calls. Effects are computed per function and then
//! closed transitively over the call graph.

use crate::callgraph::CallGraph;
use dynfb_lang::hir::{ClassId, Expr, ExprKind, FuncId, Hir, Place, Stmt};
use std::collections::BTreeSet;

/// A field of some class.
pub type FieldRef = (ClassId, usize);

/// Direct (non-transitive) effects of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Receiver fields read via `this.f`.
    pub this_reads: BTreeSet<FieldRef>,
    /// Receiver fields written via `this.f = ...`.
    pub this_writes: BTreeSet<FieldRef>,
    /// Fields read through any non-`this` object expression.
    pub other_reads: BTreeSet<FieldRef>,
    /// Fields written through any non-`this` object expression
    /// (disqualifies the function as a separable operation).
    pub other_writes: BTreeSet<FieldRef>,
    /// Globals read.
    pub global_reads: BTreeSet<usize>,
    /// Globals written.
    pub global_writes: BTreeSet<usize>,
    /// Whether any array element is written.
    pub array_writes: bool,
    /// Whether any array element is read.
    pub array_reads: bool,
    /// Whether the function allocates objects or arrays.
    pub allocates: bool,
}

impl Effects {
    /// Union another function's effects into this one (for transitive
    /// closure). Callee `this_*` effects are *receiver-relative*; when a
    /// callee is invoked on a different object they are still field effects
    /// on that callee's receiver class, so for closure purposes they merge
    /// into `other_*` unless the receiver is literally `this`.
    fn absorb_call(&mut self, callee: &Effects, receiver_is_this: bool) {
        if receiver_is_this {
            self.this_reads.extend(callee.this_reads.iter().copied());
            self.this_writes.extend(callee.this_writes.iter().copied());
        } else {
            self.other_reads.extend(callee.this_reads.iter().copied());
            self.other_writes.extend(callee.this_writes.iter().copied());
        }
        self.other_reads.extend(callee.other_reads.iter().copied());
        self.other_writes.extend(callee.other_writes.iter().copied());
        self.global_reads.extend(callee.global_reads.iter().copied());
        self.global_writes.extend(callee.global_writes.iter().copied());
        self.array_writes |= callee.array_writes;
        self.array_reads |= callee.array_reads;
        self.allocates |= callee.allocates;
    }

    /// True if the function writes no state at all (a *pure* observer).
    #[must_use]
    pub fn is_pure(&self) -> bool {
        self.this_writes.is_empty()
            && self.other_writes.is_empty()
            && self.global_writes.is_empty()
            && !self.array_writes
            && !self.allocates
    }

    /// Every field written, regardless of how it was reached.
    #[must_use]
    pub fn all_field_writes(&self) -> BTreeSet<FieldRef> {
        self.this_writes.union(&self.other_writes).copied().collect()
    }
}

/// Effects for every function: `direct[f]` is `f`'s own body only,
/// `transitive[f]` includes everything reachable through calls.
#[derive(Debug, Clone)]
pub struct EffectsMap {
    /// Per-function direct effects.
    pub direct: Vec<Effects>,
    /// Per-function transitive effects.
    pub transitive: Vec<Effects>,
}

impl EffectsMap {
    /// Compute effects for the whole program.
    #[must_use]
    pub fn build(hir: &Hir, callgraph: &CallGraph) -> Self {
        let n = hir.functions.len();
        let mut direct = Vec::with_capacity(n);
        for f in &hir.functions {
            let mut e = Effects::default();
            scan_stmts(&f.body, &mut e);
            direct.push(e);
        }
        // Fixpoint closure (graphs are tiny; iterate until stable).
        let mut transitive = direct.clone();
        loop {
            let mut changed = false;
            for i in 0..n {
                let mut acc = transitive[i].clone();
                // Re-scan calls with receiver information.
                let mut calls = Vec::new();
                collect_calls_with_receiver(&hir.functions[i].body, &mut calls);
                for (callee, recv_is_this) in calls {
                    let snapshot = transitive[callee.0].clone();
                    acc.absorb_call(&snapshot, recv_is_this);
                }
                if acc != transitive[i] {
                    transitive[i] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let _ = callgraph;
        EffectsMap { direct, transitive }
    }

    /// Transitive effects of a function.
    #[must_use]
    pub fn of(&self, f: FuncId) -> &Effects {
        &self.transitive[f.0]
    }
}

/// Calls in a body, with whether the receiver is syntactically `this`
/// (free-function calls count as non-`this`).
pub fn collect_calls_with_receiver(stmts: &[Stmt], out: &mut Vec<(FuncId, bool)>) {
    visit_exprs_stmts(stmts, &mut |e| match &e.kind {
        ExprKind::CallFn { func, .. } => out.push((*func, false)),
        ExprKind::CallMethod { obj, func, .. } => {
            out.push((*func, matches!(obj.kind, ExprKind::This)));
        }
        _ => {}
    });
}

fn scan_stmts(stmts: &[Stmt], e: &mut Effects) {
    for s in stmts {
        scan_stmt(s, e);
    }
}

fn scan_stmt(s: &Stmt, e: &mut Effects) {
    match s {
        Stmt::Assign { place, value } => {
            scan_expr(value, e);
            match place {
                Place::Local(_) => {}
                Place::Global(g) => {
                    e.global_writes.insert(g.0);
                }
                Place::Field { obj, class, field } => {
                    scan_expr(obj, e);
                    if matches!(obj.kind, ExprKind::This) {
                        e.this_writes.insert((*class, *field));
                    } else {
                        e.other_writes.insert((*class, *field));
                    }
                }
                Place::Index { arr, idx } => {
                    scan_expr(arr, e);
                    scan_expr(idx, e);
                    e.array_writes = true;
                }
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            scan_expr(cond, e);
            scan_stmts(then_branch, e);
            scan_stmts(else_branch, e);
        }
        Stmt::While { cond, body } => {
            scan_expr(cond, e);
            scan_stmts(body, e);
        }
        Stmt::CountedFor { start, bound, body, .. } => {
            scan_expr(start, e);
            scan_expr(bound, e);
            scan_stmts(body, e);
        }
        Stmt::Return(v) => {
            if let Some(v) = v {
                scan_expr(v, e);
            }
        }
        Stmt::Expr(x) => scan_expr(x, e),
        Stmt::Critical { lock_obj, body, .. } => {
            scan_expr(lock_obj, e);
            scan_stmts(body, e);
        }
    }
}

fn scan_expr(x: &Expr, e: &mut Effects) {
    match &x.kind {
        ExprKind::FieldGet { obj, class, field } => {
            scan_expr(obj, e);
            if matches!(obj.kind, ExprKind::This) {
                e.this_reads.insert((*class, *field));
            } else {
                e.other_reads.insert((*class, *field));
            }
        }
        ExprKind::Index { arr, idx } => {
            scan_expr(arr, e);
            scan_expr(idx, e);
            e.array_reads = true;
        }
        ExprKind::ArrayLen(a) => scan_expr(a, e),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, e);
            scan_expr(rhs, e);
        }
        ExprKind::Unary { expr, .. } | ExprKind::IntToDouble(expr) => scan_expr(expr, e),
        ExprKind::CallFn { args, .. } | ExprKind::CallExtern { args, .. } => {
            for a in args {
                scan_expr(a, e);
            }
        }
        ExprKind::CallMethod { obj, args, .. } => {
            scan_expr(obj, e);
            for a in args {
                scan_expr(a, e);
            }
        }
        ExprKind::Global(g) => {
            e.global_reads.insert(g.0);
        }
        ExprKind::New { .. } => e.allocates = true,
        ExprKind::NewArray { len, .. } => {
            scan_expr(len, e);
            e.allocates = true;
        }
        ExprKind::Int(_)
        | ExprKind::Double(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Local(_) => {}
    }
}

/// Visit every expression in a statement list (pre-order).
pub fn visit_exprs_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::Assign { place, value } => {
                match place {
                    Place::Field { obj, .. } => visit_exprs(obj, f),
                    Place::Index { arr, idx } => {
                        visit_exprs(arr, f);
                        visit_exprs(idx, f);
                    }
                    _ => {}
                }
                visit_exprs(value, f);
            }
            Stmt::If { cond, then_branch, else_branch } => {
                visit_exprs(cond, f);
                visit_exprs_stmts(then_branch, f);
                visit_exprs_stmts(else_branch, f);
            }
            Stmt::While { cond, body } => {
                visit_exprs(cond, f);
                visit_exprs_stmts(body, f);
            }
            Stmt::CountedFor { start, bound, body, .. } => {
                visit_exprs(start, f);
                visit_exprs(bound, f);
                visit_exprs_stmts(body, f);
            }
            Stmt::Return(Some(v)) => visit_exprs(v, f),
            Stmt::Return(None) => {}
            Stmt::Expr(x) => visit_exprs(x, f),
            Stmt::Critical { lock_obj, body, .. } => {
                visit_exprs(lock_obj, f);
                visit_exprs_stmts(body, f);
            }
        }
    }
}

/// Visit an expression and its children (pre-order).
pub fn visit_exprs(x: &Expr, f: &mut impl FnMut(&Expr)) {
    f(x);
    match &x.kind {
        ExprKind::FieldGet { obj, .. } => visit_exprs(obj, f),
        ExprKind::Index { arr, idx } => {
            visit_exprs(arr, f);
            visit_exprs(idx, f);
        }
        ExprKind::ArrayLen(a) => visit_exprs(a, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            visit_exprs(lhs, f);
            visit_exprs(rhs, f);
        }
        ExprKind::Unary { expr, .. } | ExprKind::IntToDouble(expr) => visit_exprs(expr, f),
        ExprKind::CallFn { args, .. } | ExprKind::CallExtern { args, .. } => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        ExprKind::CallMethod { obj, args, .. } => {
            visit_exprs(obj, f);
            for a in args {
                visit_exprs(a, f);
            }
        }
        ExprKind::NewArray { len, .. } => visit_exprs(len, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfb_lang::compile_source;

    #[test]
    fn direct_effects_classify_reads_and_writes() {
        let hir = compile_source(
            "class c { double x; double y; void m(c other) {
                 this.x = this.x + other.y;
             } }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let eff = EffectsMap::build(&hir, &cg);
        let m = hir.method_named(ClassId(0), "m").unwrap();
        let e = &eff.direct[m.0];
        assert!(e.this_writes.contains(&(ClassId(0), 0)));
        assert!(e.this_reads.contains(&(ClassId(0), 0)));
        assert!(e.other_reads.contains(&(ClassId(0), 1)));
        assert!(e.other_writes.is_empty());
    }

    #[test]
    fn transitive_effects_follow_this_calls() {
        let hir = compile_source(
            "class c { double x;
                 void inner() { this.x += 1.0; }
                 void outer() { this.inner(); }
                 void cross(c o) { o.inner(); }
             }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let eff = EffectsMap::build(&hir, &cg);
        let outer = hir.method_named(ClassId(0), "outer").unwrap();
        // `outer` calls `inner` on `this`, so the write stays this-relative.
        assert!(eff.of(outer).this_writes.contains(&(ClassId(0), 0)));
        // `cross` calls `inner` on another object: write becomes other-write.
        let cross = hir.method_named(ClassId(0), "cross").unwrap();
        assert!(eff.of(cross).other_writes.contains(&(ClassId(0), 0)));
        assert!(eff.of(cross).this_writes.is_empty());
    }

    #[test]
    fn purity_detection() {
        let hir = compile_source(
            "class c { double x;
                 double get() { return this.x; }
                 void set(double v) { this.x = v; }
             }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let eff = EffectsMap::build(&hir, &cg);
        assert!(eff.of(hir.method_named(ClassId(0), "get").unwrap()).is_pure());
        assert!(!eff.of(hir.method_named(ClassId(0), "set").unwrap()).is_pure());
    }

    #[test]
    fn globals_and_arrays_tracked() {
        let hir = compile_source(
            "int counter;
             void f(double[] a) { counter = counter + 1; a[0] = a[1]; }",
        )
        .unwrap();
        let cg = CallGraph::build(&hir);
        let eff = EffectsMap::build(&hir, &cg);
        let e = eff.of(hir.function_named("f").unwrap());
        assert!(e.global_writes.contains(&0));
        assert!(e.global_reads.contains(&0));
        assert!(e.array_writes);
        assert!(e.array_reads);
    }
}
