//! Commutativity analysis (§2 of the paper).
//!
//! The compiler parallelizes a loop when all of the *operations* in its
//! computation — the method invocations transitively reachable from the
//! loop body — commute: they produce the same final object state in either
//! execution order. The analysis has three parts:
//!
//! 1. **Separability / summarization** ([`summarize`]): each *update
//!    operation* is symbolically executed to produce, per receiver field, a
//!    symbolic expression for the field's new value in terms of the field's
//!    initial values ([`Sym::Init`]) and the invocation's inputs
//!    ([`Sym::Param`]). Operations whose field updates depend on control
//!    flow, or that write state other than their receiver, are rejected.
//! 2. **Update-form checking**: each update must be a commutative update
//!    `f ← f ⊕ e` with `⊕ ∈ {+, ×}` and `e` independent of every field any
//!    extent operation writes.
//! 3. **Pairwise symbolic testing** ([`commute`]): every pair of update
//!    operations on the same class (including an operation paired with a
//!    second instance of itself) is executed symbolically in both orders;
//!    the resulting states must have identical normal forms.

use crate::callgraph::CallGraph;
use crate::effects::{visit_exprs_stmts, EffectsMap, FieldRef};
use crate::symbolic::Sym;
use dynfb_lang::hir::{BinOp, ClassId, Expr, ExprKind, FuncId, Hir, Place, Stmt, Ty, UnOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The symbolic effect of one update operation on its receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSummary {
    /// The operation.
    pub func: FuncId,
    /// Receiver class.
    pub class: ClassId,
    /// `(field, new_value)`: symbolic new value per written field, in terms
    /// of `Init(field)` and `Param { inst: 0, .. }`.
    pub updates: Vec<(usize, Sym)>,
    /// Receiver fields read in branch conditions (must not intersect the
    /// extent's written set).
    pub cond_reads: BTreeSet<usize>,
    /// Fields of *other* objects read anywhere in the operation, as
    /// `(class, field)` pairs recovered from opaque `get:` tags.
    pub foreign_reads: BTreeSet<FieldRef>,
}

/// Why a loop could not be parallelized (or an operation summarized).
pub type Reason = String;

/// Outcome of analyzing a parallel-loop candidate.
#[derive(Debug, Clone)]
pub struct CommutativityReport {
    /// True if all extent operations provably commute.
    pub parallelizable: bool,
    /// Diagnostics explaining any rejection.
    pub reasons: Vec<Reason>,
    /// Functions in the extent (transitively callable from the loop body).
    pub extent: Vec<FuncId>,
    /// Update operations found in the extent.
    pub updaters: Vec<FuncId>,
    /// All `(class, field)` pairs written by extent operations.
    pub written: BTreeSet<FieldRef>,
}

/// Memoization table for [`summarize`].
pub type SummaryMemo = HashMap<FuncId, MemoEntry>;

/// An entry in the summarization memo.
#[derive(Debug, Clone)]
pub enum MemoEntry {
    /// Final result.
    Done(Result<OpSummary, Reason>),
    /// In-flight provisional summary (for recursive update operations,
    /// refined to a fixpoint).
    Provisional(OpSummary),
}

/// Summarize an update method: symbolically execute its body.
///
/// Recursive update operations (e.g. a tree walk invoking commutative
/// updates on `this` at the leaves) are handled by fixpoint iteration:
/// recursive calls first see an optimistic empty summary, which is then
/// refined until the per-field update classification stabilizes.
///
/// # Errors
///
/// Returns a human-readable reason when the method is not separable
/// (conditional field updates, writes outside the receiver, unanalyzable
/// constructs, non-commutative recursion, ...).
pub fn summarize(
    hir: &Hir,
    effects: &EffectsMap,
    func: FuncId,
    memo: &mut SummaryMemo,
) -> Result<OpSummary, Reason> {
    match memo.get(&func) {
        Some(MemoEntry::Done(r)) => return r.clone(),
        Some(MemoEntry::Provisional(s)) => return Ok(s.clone()),
        None => {}
    }
    let empty = OpSummary {
        func,
        class: hir.functions[func.0].class.unwrap_or(ClassId(0)),
        updates: Vec::new(),
        cond_reads: BTreeSet::new(),
        foreign_reads: BTreeSet::new(),
    };
    memo.insert(func, MemoEntry::Provisional(empty));
    let mut prev_sig: Option<Vec<(usize, Option<UpdateOp>)>> = None;
    for _ in 0..4 {
        let result = summarize_inner(hir, effects, func, memo);
        match result {
            Ok(s) => {
                let own: BTreeSet<usize> = s.updates.iter().map(|(f, _)| *f).collect();
                let sig: Vec<(usize, Option<UpdateOp>)> = s
                    .updates
                    .iter()
                    .map(|(f, e)| (*f, check_update_form(*f, e, &own).ok()))
                    .collect();
                if prev_sig.as_ref() == Some(&sig) {
                    memo.insert(func, MemoEntry::Done(Ok(s.clone())));
                    return Ok(s);
                }
                prev_sig = Some(sig);
                memo.insert(func, MemoEntry::Provisional(s));
            }
            Err(r) => {
                memo.insert(func, MemoEntry::Done(Err(r.clone())));
                return Err(r);
            }
        }
    }
    let r = Err(format!(
        "update operation `{}` did not stabilize under recursion",
        hir.functions[func.0].name
    ));
    memo.insert(func, MemoEntry::Done(r.clone()));
    r
}

fn summarize_inner(
    hir: &Hir,
    effects: &EffectsMap,
    func: FuncId,
    memo: &mut SummaryMemo,
) -> Result<OpSummary, Reason> {
    let f = &hir.functions[func.0];
    let name = f.qualified_name(&hir.classes);
    let class = f.class.ok_or_else(|| format!("`{name}` is not a method"))?;
    if f.ret != Ty::Void {
        return Err(format!("update operation `{name}` must return void"));
    }
    let mut exec = SymExec {
        hir,
        effects,
        memo,
        env: (0..f.locals.len())
            .map(|i| if i < f.num_params { Some(Sym::Param { inst: 0, slot: i }) } else { None })
            .collect(),
        state: BTreeMap::new(),
        cond_reads: BTreeSet::new(),
        foreign_reads: BTreeSet::new(),
        havoc: 0,
        name: name.clone(),
    };
    exec.stmts(&f.body)?;
    let updates = exec.state.into_iter().collect();
    Ok(OpSummary {
        func,
        class,
        updates,
        cond_reads: exec.cond_reads,
        foreign_reads: exec.foreign_reads,
    })
}

struct SymExec<'a> {
    hir: &'a Hir,
    effects: &'a EffectsMap,
    memo: &'a mut SummaryMemo,
    env: Vec<Option<Sym>>,
    state: BTreeMap<usize, Sym>,
    cond_reads: BTreeSet<usize>,
    foreign_reads: BTreeSet<FieldRef>,
    havoc: usize,
    name: String,
}

impl<'a> SymExec<'a> {
    fn fresh(&mut self) -> Sym {
        self.havoc += 1;
        Sym::Havoc(self.havoc)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), Reason> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Reason> {
        match s {
            Stmt::Assign { place, value } => {
                let v = self.eval(value)?;
                match place {
                    Place::Local(id) => {
                        self.env[id.0] = Some(v);
                        Ok(())
                    }
                    Place::Field { obj, field, .. } => {
                        if matches!(obj.kind, ExprKind::This) {
                            self.state.insert(*field, v);
                            Ok(())
                        } else {
                            Err(format!("`{}` writes a field of another object", self.name))
                        }
                    }
                    Place::Global(_) => Err(format!("`{}` writes a global variable", self.name)),
                    Place::Index { .. } => Err(format!("`{}` writes an array element", self.name)),
                }
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.branch_guard(cond, &[then_branch, else_branch])
            }
            Stmt::While { cond, body } => self.branch_guard(cond, &[body]),
            Stmt::CountedFor { var, start, bound, body } => {
                // Evaluate bounds (for read tracking), havoc the induction
                // variable, then treat like a branch.
                let _ = self.eval(start)?;
                let _ = self.eval(bound)?;
                self.env[var.0] = Some(self.fresh());
                self.branch_body(&[body])
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    let _ = self.eval(v)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                // Calls for effect.
                match &e.kind {
                    ExprKind::CallMethod { obj, func, args } => {
                        for a in args {
                            let _ = self.eval(a)?;
                        }
                        let callee_eff = self.effects.of(*func);
                        if callee_eff.is_pure() {
                            return Ok(());
                        }
                        if matches!(obj.kind, ExprKind::This) {
                            // Compose the callee's updates into our state.
                            let sub = summarize(self.hir, self.effects, *func, self.memo)?;
                            self.compose(sub, args)?;
                            Ok(())
                        } else {
                            // A sub-operation on another object: it is a
                            // separate operation in the extent; it does not
                            // change `this`'s state.
                            let _ = self.eval(obj)?;
                            Ok(())
                        }
                    }
                    ExprKind::CallFn { func, args } => {
                        for a in args {
                            let _ = self.eval(a)?;
                        }
                        if self.effects.of(*func).is_pure() {
                            Ok(())
                        } else {
                            Err(format!(
                                "`{}` calls impure free function `{}`",
                                self.name, self.hir.functions[func.0].name
                            ))
                        }
                    }
                    _ => {
                        let _ = self.eval(e)?;
                        Ok(())
                    }
                }
            }
            Stmt::Critical { body, .. } => self.stmts(body),
        }
    }

    /// Execute a branch construct: no receiver-field writes are allowed
    /// inside, and locals assigned within become unknowns.
    fn branch_guard(&mut self, cond: &Expr, bodies: &[&[Stmt]]) -> Result<(), Reason> {
        // Track this-field reads in the condition.
        let mut cond_fields = BTreeSet::new();
        collect_this_reads_expr(cond, &mut cond_fields);
        self.cond_reads.extend(cond_fields);
        let _ = self.eval(cond)?;
        self.branch_body(bodies)
    }

    fn branch_body(&mut self, bodies: &[&[Stmt]]) -> Result<(), Reason> {
        for body in bodies {
            if writes_this_fields(body) {
                return Err(format!(
                    "`{}` updates receiver fields under control flow (not separable)",
                    self.name
                ));
            }
            // Calls on `this` to update operations inside loops/branches are
            // the paper's Figure 1 pattern (`interactions` repeatedly
            // invoking `one_interaction` on `this`): each invocation is a
            // commutative update, so an unknown number of them composes to
            // a commutative update with an unknown operand.
            self.compose_iterated(body)?;
            // Record reads and havoc assigned locals.
            let mut fields = BTreeSet::new();
            collect_this_reads_stmts(body, &mut fields);
            self.cond_reads.extend(fields);
            let mut foreign = BTreeSet::new();
            collect_foreign_reads_stmts(body, &mut foreign);
            self.foreign_reads.extend(foreign);
            let mut assigned = Vec::new();
            collect_assigned_locals(body, &mut assigned);
            for l in assigned {
                self.env[l] = Some(self.fresh());
            }
        }
        Ok(())
    }

    /// Fold the effect of an *unknown number* of invocations of `this`-
    /// receiver update operations within a branch/loop body into the
    /// symbolic state: each commutative update `f ← f ⊕ e` becomes
    /// `f ← f ⊕ havoc`. Non-commutative callee updates are rejected.
    fn compose_iterated(&mut self, stmts: &[Stmt]) -> Result<(), Reason> {
        for s in stmts {
            match s {
                Stmt::Expr(e) => match &e.kind {
                    ExprKind::CallMethod { obj, func, .. } => {
                        if self.effects.of(*func).is_pure() {
                            continue;
                        }
                        if !matches!(obj.kind, ExprKind::This) {
                            continue; // a separate operation in the extent
                        }
                        let sub = summarize(self.hir, self.effects, *func, self.memo)?;
                        let own: BTreeSet<usize> = sub.updates.iter().map(|(f, _)| *f).collect();
                        self.cond_reads.extend(sub.cond_reads.iter().copied());
                        self.foreign_reads.extend(sub.foreign_reads.iter().copied());
                        for (f, expr) in &sub.updates {
                            match check_update_form(*f, expr, &own)? {
                                UpdateOp::Identity => {}
                                UpdateOp::Add => {
                                    let cur = self.state.get(f).cloned().unwrap_or(Sym::Init(*f));
                                    let h = self.fresh();
                                    self.state.insert(*f, Sym::add(cur, h));
                                }
                                UpdateOp::Mul => {
                                    let cur = self.state.get(f).cloned().unwrap_or(Sym::Init(*f));
                                    let h = self.fresh();
                                    self.state.insert(*f, Sym::mul(cur, h));
                                }
                            }
                        }
                    }
                    ExprKind::CallFn { func, .. } if !self.effects.of(*func).is_pure() => {
                        return Err(format!(
                            "`{}` conditionally calls impure free function `{}`",
                            self.name, self.hir.functions[func.0].name
                        ));
                    }
                    _ => {}
                },
                Stmt::If { then_branch, else_branch, .. } => {
                    self.compose_iterated(then_branch)?;
                    self.compose_iterated(else_branch)?;
                }
                Stmt::While { body, .. } | Stmt::CountedFor { body, .. } => {
                    self.compose_iterated(body)?;
                }
                Stmt::Critical { body, .. } => self.compose_iterated(body)?,
                _ => {}
            }
        }
        // Impure calls in *value* positions are still rejected: collect the
        // statement-level call expressions (handled above) by identity and
        // flag any other impure call.
        let mut stmt_calls: Vec<*const Expr> = Vec::new();
        fn collect_stmt_calls(stmts: &[Stmt], out: &mut Vec<*const Expr>) {
            for s in stmts {
                match s {
                    Stmt::Expr(e) => out.push(e as *const Expr),
                    Stmt::If { then_branch, else_branch, .. } => {
                        collect_stmt_calls(then_branch, out);
                        collect_stmt_calls(else_branch, out);
                    }
                    Stmt::While { body, .. }
                    | Stmt::CountedFor { body, .. }
                    | Stmt::Critical { body, .. } => collect_stmt_calls(body, out),
                    _ => {}
                }
            }
        }
        collect_stmt_calls(stmts, &mut stmt_calls);
        let mut bad: Option<String> = None;
        visit_exprs_stmts(stmts, &mut |x| {
            if bad.is_some() || stmt_calls.contains(&(x as *const Expr)) {
                return;
            }
            if let ExprKind::CallMethod { func, .. } | ExprKind::CallFn { func, .. } = &x.kind {
                if !self.effects.of(*func).is_pure() {
                    bad = Some(self.hir.functions[func.0].name.clone());
                }
            }
        });
        if let Some(name) = bad {
            return Err(format!(
                "`{}` uses the value of impure call `{name}` under control flow",
                self.name
            ));
        }
        Ok(())
    }

    /// Merge a `this`-receiver sub-call's summary into the current state,
    /// substituting actual arguments for the callee's parameters.
    fn compose(&mut self, sub: OpSummary, args: &[Expr]) -> Result<(), Reason> {
        let mut actuals = Vec::new();
        for a in args {
            actuals.push(self.eval(a)?);
        }
        self.cond_reads.extend(sub.cond_reads.iter().copied());
        self.foreign_reads.extend(sub.foreign_reads.iter().copied());
        let snapshot: Vec<(usize, Sym)> = sub
            .updates
            .iter()
            .map(|(f, expr)| {
                let with_args = substitute_params(expr, &actuals);
                // Substitute current state for Init references.
                let max_field = self.hir.classes.get(sub.class.0).map_or(0, |c| c.fields.len());
                let state_vec: Vec<Sym> = (0..max_field)
                    .map(|i| self.state.get(&i).cloned().unwrap_or(Sym::Init(i)))
                    .collect();
                (*f, with_args.substitute_init(&state_vec))
            })
            .collect();
        for (f, v) in snapshot {
            self.state.insert(f, v);
        }
        Ok(())
    }

    fn eval(&mut self, e: &Expr) -> Result<Sym, Reason> {
        Ok(match &e.kind {
            ExprKind::Int(v) => Sym::Int(*v),
            ExprKind::Double(v) => Sym::Double(crate::symbolic::Bits::from_f64(*v)),
            ExprKind::Bool(b) => Sym::Int(i64::from(*b)),
            ExprKind::Null => Sym::opaque("null", vec![]),
            ExprKind::This => Sym::opaque("this", vec![]),
            ExprKind::Local(id) => self
                .env
                .get(id.0)
                .cloned()
                .flatten()
                .ok_or_else(|| format!("`{}` reads an uninitialized local", self.name))?,
            ExprKind::Global(g) => Sym::opaque(format!("global:{}", g.0), vec![]),
            ExprKind::FieldGet { obj, class, field } => {
                if matches!(obj.kind, ExprKind::This) {
                    self.state.get(field).cloned().unwrap_or(Sym::Init(*field))
                } else {
                    self.foreign_reads.insert((*class, *field));
                    let o = self.eval(obj)?;
                    Sym::opaque(format!("get:{}.{}", class.0, field), vec![o])
                }
            }
            ExprKind::Index { arr, idx } => {
                let a = self.eval(arr)?;
                let i = self.eval(idx)?;
                Sym::opaque("index", vec![a, i])
            }
            ExprKind::ArrayLen(a) => {
                let a = self.eval(a)?;
                Sym::opaque("len", vec![a])
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                match op {
                    BinOp::Add => Sym::add(l, r),
                    BinOp::Sub => Sym::sub(l, r),
                    BinOp::Mul => Sym::mul(l, r),
                    BinOp::Div => Sym::opaque("div", vec![l, r]),
                    BinOp::Rem => Sym::opaque("rem", vec![l, r]),
                    BinOp::Eq => Sym::opaque("eq", vec![l, r]),
                    BinOp::Ne => Sym::opaque("ne", vec![l, r]),
                    // Note: lt(a,b) vs gt(b,a) are not identified; the
                    // analysis is conservative.
                    BinOp::Lt => Sym::opaque("lt", vec![l, r]),
                    BinOp::Le => Sym::opaque("le", vec![l, r]),
                    BinOp::Gt => Sym::opaque("gt", vec![l, r]),
                    BinOp::Ge => Sym::opaque("ge", vec![l, r]),
                    BinOp::And => Sym::opaque("and", vec![l, r]),
                    BinOp::Or => Sym::opaque("or", vec![l, r]),
                }
            }
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr)?;
                match op {
                    UnOp::Neg => Sym::neg(v),
                    UnOp::Not => Sym::opaque("not", vec![v]),
                }
            }
            ExprKind::IntToDouble(inner) => self.eval(inner)?,
            ExprKind::CallExtern { ext, args } => {
                let mut a = Vec::new();
                for x in args {
                    a.push(self.eval(x)?);
                }
                Sym::opaque(format!("extern:{}", self.hir.externs[ext.0].name), a)
            }
            ExprKind::CallFn { func, args } | ExprKind::CallMethod { func, args, .. } => {
                if !self.effects.of(*func).is_pure() {
                    return Err(format!(
                        "`{}` uses the value of impure call `{}`",
                        self.name, self.hir.functions[func.0].name
                    ));
                }
                let mut a = Vec::new();
                if let ExprKind::CallMethod { obj, .. } = &e.kind {
                    a.push(self.eval(obj)?);
                }
                for x in args {
                    a.push(self.eval(x)?);
                }
                Sym::opaque(format!("call:{}", func.0), a)
            }
            ExprKind::New { .. } | ExprKind::NewArray { .. } => {
                return Err(format!("`{}` allocates inside an operation", self.name));
            }
        })
    }
}

/// Rename an expression's inputs to a different operation instance.
#[must_use]
pub fn rename_instance(sym: &Sym, inst: usize) -> Sym {
    const HAVOC_STRIDE: usize = 1 << 20;
    match sym {
        Sym::Param { slot, .. } => Sym::Param { inst, slot: *slot },
        Sym::Havoc(n) => Sym::Havoc(n + inst * HAVOC_STRIDE),
        Sym::Add(ts) => Sym::Add(ts.iter().map(|t| rename_instance(t, inst)).collect()),
        Sym::Mul(ts) => Sym::Mul(ts.iter().map(|t| rename_instance(t, inst)).collect()),
        Sym::Opaque { tag, args } => Sym::Opaque {
            tag: tag.clone(),
            args: args.iter().map(|t| rename_instance(t, inst)).collect(),
        },
        leaf => leaf.clone(),
    }
}

fn substitute_params(sym: &Sym, actuals: &[Sym]) -> Sym {
    match sym {
        Sym::Param { inst: 0, slot } => actuals.get(*slot).cloned().unwrap_or_else(|| sym.clone()),
        Sym::Add(ts) => {
            Sym::Add(ts.iter().map(|t| substitute_params(t, actuals)).collect()).normalized()
        }
        Sym::Mul(ts) => {
            Sym::Mul(ts.iter().map(|t| substitute_params(t, actuals)).collect()).normalized()
        }
        Sym::Opaque { tag, args } => Sym::Opaque {
            tag: tag.clone(),
            args: args.iter().map(|t| substitute_params(t, actuals)).collect(),
        },
        leaf => leaf.clone(),
    }
}

/// Do two update operations on the same class commute? Executes both
/// orders symbolically and compares the final states.
#[must_use]
pub fn commute(a: &OpSummary, b: &OpSummary, num_fields: usize) -> bool {
    let init: Vec<Sym> = (0..num_fields).map(Sym::Init).collect();
    let a1 = instantiate(a, 1);
    let b2 = instantiate(b, 2);
    let ab = apply(&b2, &apply(&a1, &init));
    let ba = apply(&a1, &apply(&b2, &init));
    ab == ba
}

fn instantiate(s: &OpSummary, inst: usize) -> Vec<(usize, Sym)> {
    s.updates.iter().map(|(f, e)| (*f, rename_instance(e, inst))).collect()
}

fn apply(updates: &[(usize, Sym)], state: &[Sym]) -> Vec<Sym> {
    let mut next = state.to_vec();
    // Simultaneous update: all RHS evaluated against the incoming state.
    for (f, e) in updates {
        next[*f] = e.substitute_init(state);
    }
    next
}

/// The commutative update operator of a well-formed update expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `f ← f + e`
    Add,
    /// `f ← f × e`
    Mul,
    /// `f ← f` (no effective change)
    Identity,
}

/// Check that `expr` (the new value of field `field`) has the commutative
/// update form `Init(field) ⊕ e`, where the operand `e` may read the
/// receiver's *stable* fields (fields no extent operation writes,
/// enumerated by exclusion via `written_fields`) but not any written field.
///
/// # Errors
///
/// Returns a reason when the update is not in commutative form.
pub fn check_update_form(
    field: usize,
    expr: &Sym,
    written_fields: &BTreeSet<usize>,
) -> Result<UpdateOp, Reason> {
    if *expr == Sym::Init(field) {
        return Ok(UpdateOp::Identity);
    }
    let check_rest = |terms: &[Sym]| -> Result<(), Reason> {
        let mut selfs = 0;
        for t in terms {
            if *t == Sym::Init(field) {
                selfs += 1;
            } else if let Some(w) = written_fields.iter().find(|w| t.mentions_init(**w)) {
                return Err(format!(
                    "update operand for field {field} reads written field {w}: {t}"
                ));
            }
        }
        if selfs == 1 {
            Ok(())
        } else {
            Err(format!("field {field} appears {selfs} times in its own update"))
        }
    };
    match expr {
        Sym::Add(terms) => {
            check_rest(terms)?;
            Ok(UpdateOp::Add)
        }
        Sym::Mul(terms) => {
            check_rest(terms)?;
            Ok(UpdateOp::Mul)
        }
        other => {
            Err(format!("field {field} update is not a commutative update expression: {other}"))
        }
    }
}

/// Analyze the extent of a parallel-loop candidate.
#[must_use]
pub fn analyze_extent(
    hir: &Hir,
    callgraph: &CallGraph,
    effects: &EffectsMap,
    loop_body: &[Stmt],
) -> CommutativityReport {
    let mut reasons = Vec::new();

    // 1. The loop body itself must only write locals.
    let body_effects = scan_body(loop_body);
    if !body_effects.this_writes.is_empty() || !body_effects.other_writes.is_empty() {
        reasons.push("loop body writes object fields directly".to_string());
    }
    if !body_effects.global_writes.is_empty() {
        reasons.push("loop body writes globals".to_string());
    }
    if body_effects.array_writes {
        reasons.push("loop body writes array elements".to_string());
    }

    // 2. Collect the extent.
    let mut roots = Vec::new();
    crate::callgraph::collect_calls_stmts(loop_body, &mut roots);
    let extent = callgraph.reachable(&roots);

    // 3. Classify extent functions by their *direct* effects: functions
    // that directly update their receiver are summarized as operations;
    // functions whose writes happen only through sub-operation calls
    // (composite operations, like a pairwise loop invoking `add_force` on
    // other molecules) carry no state effect of their own — their
    // sub-operations are separately in the extent. Direct writes to
    // anything other than the receiver disqualify the loop.
    let mut memo = SummaryMemo::new();
    let mut summaries: Vec<OpSummary> = Vec::new();
    let mut updaters = Vec::new();
    let mut composites: Vec<FuncId> = Vec::new();
    for &f in &extent {
        let direct = &effects.direct[f.0];
        let func = &hir.functions[f.0];
        let name = func.qualified_name(&hir.classes);
        if !direct.other_writes.is_empty() {
            reasons.push(format!("operation `{name}` writes fields of other objects"));
            continue;
        }
        if !direct.global_writes.is_empty() {
            reasons.push(format!("operation `{name}` writes globals"));
            continue;
        }
        if direct.array_writes {
            reasons.push(format!("operation `{name}` writes array elements"));
            continue;
        }
        if direct.allocates {
            reasons.push(format!("operation `{name}` allocates"));
            continue;
        }
        if direct.this_writes.is_empty() {
            composites.push(f);
            continue;
        }
        match summarize(hir, effects, f, &mut memo) {
            Ok(s) => {
                updaters.push(f);
                summaries.push(s);
            }
            Err(r) => reasons.push(r),
        }
    }

    // 4. Written set.
    let mut written: BTreeSet<FieldRef> = BTreeSet::new();
    for s in &summaries {
        for (f, _) in &s.updates {
            written.insert((s.class, *f));
        }
    }

    // 5. Update forms and read checks.
    for s in &summaries {
        let name = hir.functions[s.func.0].qualified_name(&hir.classes);
        let class_written: BTreeSet<usize> =
            written.iter().filter(|(c, _)| *c == s.class).map(|(_, f)| *f).collect();
        for (f, e) in &s.updates {
            if let Err(r) = check_update_form(*f, e, &class_written) {
                reasons.push(format!("`{name}`: {r}"));
            }
            // Operand reads of written fields of other objects.
            for (c, rf) in &s.foreign_reads {
                if written.contains(&(*c, *rf)) {
                    reasons.push(format!(
                        "`{name}` reads field {rf} of class `{}`, which the extent writes",
                        hir.classes[c.0].name
                    ));
                }
            }
        }
        for f in &s.cond_reads {
            if written.contains(&(s.class, *f)) {
                reasons.push(format!(
                    "`{name}` branches on field `{}`, which the extent writes",
                    hir.classes[s.class.0].fields[*f].name
                ));
            }
        }
    }
    // Composite and observer extent functions must not read written fields.
    for &f in &composites {
        let direct = &effects.direct[f.0];
        let name = hir.functions[f.0].qualified_name(&hir.classes);
        let mut reads: Vec<FieldRef> = direct.other_reads.iter().copied().collect();
        reads.extend(direct.this_reads.iter().copied());
        for (c, rf) in reads {
            if written.contains(&(c, rf)) {
                reasons.push(format!(
                    "`{name}` reads a field the extent writes (class `{}`)",
                    hir.classes[c.0].name
                ));
            }
        }
    }
    // Loop-body reads of written fields.
    {
        let mut body_reads: BTreeSet<FieldRef> = BTreeSet::new();
        visit_exprs_stmts(loop_body, &mut |e| {
            if let ExprKind::FieldGet { class, field, .. } = &e.kind {
                body_reads.insert((*class, *field));
            }
        });
        for r in body_reads.intersection(&written) {
            reasons.push(format!(
                "loop body reads field {} of class `{}`, which the extent writes",
                r.1, hir.classes[r.0 .0].name
            ));
        }
    }

    // 6. Pairwise symbolic commutativity per class.
    for i in 0..summaries.len() {
        for j in i..summaries.len() {
            let (a, b) = (&summaries[i], &summaries[j]);
            if a.class != b.class {
                continue;
            }
            let n = hir.classes[a.class.0].fields.len();
            if !commute(a, b, n) {
                reasons.push(format!(
                    "operations `{}` and `{}` do not commute",
                    hir.functions[a.func.0].qualified_name(&hir.classes),
                    hir.functions[b.func.0].qualified_name(&hir.classes)
                ));
            }
        }
    }

    CommutativityReport { parallelizable: reasons.is_empty(), reasons, extent, updaters, written }
}

/// Write-effects of a bare statement list (reads are checked separately).
fn scan_body(body: &[Stmt]) -> crate::effects::Effects {
    let mut e = crate::effects::Effects::default();
    fn walk(stmts: &[Stmt], e: &mut crate::effects::Effects) {
        for s in stmts {
            match s {
                Stmt::Assign { place, .. } => match place {
                    Place::Local(_) => {}
                    Place::Global(g) => {
                        e.global_writes.insert(g.0);
                    }
                    Place::Field { obj, class, field } => {
                        if matches!(obj.kind, ExprKind::This) {
                            e.this_writes.insert((*class, *field));
                        } else {
                            e.other_writes.insert((*class, *field));
                        }
                    }
                    Place::Index { .. } => e.array_writes = true,
                },
                Stmt::If { then_branch, else_branch, .. } => {
                    walk(then_branch, e);
                    walk(else_branch, e);
                }
                Stmt::While { body, .. } => walk(body, e),
                Stmt::CountedFor { body, .. } => walk(body, e),
                Stmt::Critical { body, .. } => walk(body, e),
                Stmt::Return(_) | Stmt::Expr(_) => {}
            }
        }
    }
    walk(body, &mut e);
    e
}

fn writes_this_fields(stmts: &[Stmt]) -> bool {
    let e = scan_body(stmts);
    !e.this_writes.is_empty()
        || !e.other_writes.is_empty()
        || !e.global_writes.is_empty()
        || e.array_writes
}

fn collect_assigned_locals(stmts: &[Stmt], out: &mut Vec<usize>) {
    for s in stmts {
        match s {
            Stmt::Assign { place: Place::Local(l), .. } => out.push(l.0),
            Stmt::If { then_branch, else_branch, .. } => {
                collect_assigned_locals(then_branch, out);
                collect_assigned_locals(else_branch, out);
            }
            Stmt::While { body, .. }
            | Stmt::CountedFor { body, .. }
            | Stmt::Critical { body, .. } => collect_assigned_locals(body, out),
            _ => {}
        }
    }
}

fn collect_this_reads_expr(e: &Expr, out: &mut BTreeSet<usize>) {
    crate::effects::visit_exprs(e, &mut |x| {
        if let ExprKind::FieldGet { obj, field, .. } = &x.kind {
            if matches!(obj.kind, ExprKind::This) {
                out.insert(*field);
            }
        }
    });
}

fn collect_this_reads_stmts(stmts: &[Stmt], out: &mut BTreeSet<usize>) {
    visit_exprs_stmts(stmts, &mut |x| {
        if let ExprKind::FieldGet { obj, field, .. } = &x.kind {
            if matches!(obj.kind, ExprKind::This) {
                out.insert(*field);
            }
        }
    });
}

fn collect_foreign_reads_stmts(stmts: &[Stmt], out: &mut BTreeSet<FieldRef>) {
    visit_exprs_stmts(stmts, &mut |x| {
        if let ExprKind::FieldGet { obj, class, field } = &x.kind {
            if !matches!(obj.kind, ExprKind::This) {
                out.insert((*class, *field));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfb_lang::compile_source;

    fn setup(src: &str) -> (Hir, CallGraph, EffectsMap) {
        let hir = compile_source(src).unwrap();
        let cg = CallGraph::build(&hir);
        let eff = EffectsMap::build(&hir, &cg);
        (hir, cg, eff)
    }

    fn summarize_method(src: &str, class: &str, method: &str) -> Result<OpSummary, Reason> {
        let (hir, _cg, eff) = setup(src);
        let c = hir.class_named(class).unwrap();
        let m = hir.method_named(c, method).unwrap();
        summarize(&hir, &eff, m, &mut SummaryMemo::new())
    }

    #[test]
    fn sum_update_is_commutative_form() {
        let s = summarize_method(
            "extern double interact(double, double);
             class body { double pos; double sum;
                 void one(body b) {
                     double val = interact(this.pos, b.pos);
                     this.sum += val;
                 } }",
            "body",
            "one",
        )
        .unwrap();
        assert_eq!(s.updates.len(), 1);
        let (field, expr) = &s.updates[0];
        assert_eq!(*field, 1);
        let own: BTreeSet<usize> = s.updates.iter().map(|(f, _)| *f).collect();
        assert_eq!(check_update_form(*field, expr, &own), Ok(UpdateOp::Add));
    }

    #[test]
    fn overwrite_is_rejected() {
        let s = summarize_method(
            "class c { double x; void set(double v) { this.x = v; } }",
            "c",
            "set",
        )
        .unwrap();
        let (f, e) = &s.updates[0];
        let own: BTreeSet<usize> = s.updates.iter().map(|(f, _)| *f).collect();
        assert!(check_update_form(*f, e, &own).is_err());
    }

    #[test]
    fn conditional_update_is_not_separable() {
        let err = summarize_method(
            "class c { double x; void m(double v) { if (v > 0.0) { this.x += v; } } }",
            "c",
            "m",
        )
        .unwrap_err();
        assert!(err.contains("control flow"), "{err}");
    }

    #[test]
    fn same_op_instances_commute() {
        let s = summarize_method(
            "class c { double x; void add(double v) { this.x += v; } }",
            "c",
            "add",
        )
        .unwrap();
        assert!(commute(&s, &s, 1));
    }

    #[test]
    fn add_and_scale_do_not_commute() {
        let src = "class c { double x;
            void add(double v) { this.x += v; }
            void scale(double v) { this.x *= v; } }";
        let (hir, _cg, eff) = setup(src);
        let c = hir.class_named("c").unwrap();
        let mut memo = SummaryMemo::new();
        let add = summarize(&hir, &eff, hir.method_named(c, "add").unwrap(), &mut memo).unwrap();
        let scale =
            summarize(&hir, &eff, hir.method_named(c, "scale").unwrap(), &mut memo).unwrap();
        assert!(!commute(&add, &scale, 1));
        assert!(commute(&scale, &scale, 1));
    }

    #[test]
    fn updates_to_distinct_fields_commute() {
        let src = "class c { double x; double y;
            void ax(double v) { this.x += v; }
            void ay(double v) { this.y += v; } }";
        let (hir, _cg, eff) = setup(src);
        let c = hir.class_named("c").unwrap();
        let mut memo = SummaryMemo::new();
        let ax = summarize(&hir, &eff, hir.method_named(c, "ax").unwrap(), &mut memo).unwrap();
        let ay = summarize(&hir, &eff, hir.method_named(c, "ay").unwrap(), &mut memo).unwrap();
        assert!(commute(&ax, &ay, 2));
    }

    #[test]
    fn this_subcall_composes() {
        let s = summarize_method(
            "class c { double x;
                 void inner(double v) { this.x += v; }
                 void outer(double v) { this.inner(v * 2.0); } }",
            "c",
            "outer",
        )
        .unwrap();
        let (f, e) = &s.updates[0];
        let own: BTreeSet<usize> = s.updates.iter().map(|(f, _)| *f).collect();
        assert_eq!(check_update_form(*f, e, &own), Ok(UpdateOp::Add));
    }

    #[test]
    fn extent_analysis_accepts_figure_1() {
        let src = "extern double interact(double, double);
            class body { double pos; double sum;
                void one_interaction(body b) {
                    double val = interact(this.pos, b.pos);
                    this.sum += val;
                }
            }
            body[] bodies;
            void forces(int n) {
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        bodies[i].one_interaction(bodies[j]);
                    }
                }
            }";
        let (hir, cg, eff) = setup(src);
        let f = hir.function_named("forces").unwrap();
        let Stmt::CountedFor { body, .. } = &hir.functions[f.0].body[0] else { panic!() };
        let report = analyze_extent(&hir, &cg, &eff, body);
        assert!(report.parallelizable, "{:?}", report.reasons);
        assert_eq!(report.updaters.len(), 1);
    }

    #[test]
    fn extent_analysis_rejects_non_commuting() {
        let src = "class c { double x;
                void add(double v) { this.x += v; }
                void scale(double v) { this.x *= v; }
            }
            c[] objs;
            void work(int n) {
                for (int i = 0; i < n; i++) {
                    objs[i].add(1.0);
                    objs[i].scale(2.0);
                }
            }";
        let (hir, cg, eff) = setup(src);
        let f = hir.function_named("work").unwrap();
        let Stmt::CountedFor { body, .. } = &hir.functions[f.0].body[0] else { panic!() };
        let report = analyze_extent(&hir, &cg, &eff, body);
        assert!(!report.parallelizable);
        assert!(report.reasons.iter().any(|r| r.contains("do not commute")));
    }

    #[test]
    fn extent_analysis_rejects_reads_of_written_fields() {
        let src = "class c { double x;
                void add(double v) { this.x += v; }
                double peek() { return this.x; }
            }
            c[] objs;
            double total;
            void work(int n) {
                for (int i = 0; i < n; i++) {
                    objs[i].add(objs[0].peek());
                }
            }";
        let (hir, cg, eff) = setup(src);
        let f = hir.function_named("work").unwrap();
        let Stmt::CountedFor { body, .. } = &hir.functions[f.0].body[0] else { panic!() };
        let report = analyze_extent(&hir, &cg, &eff, body);
        assert!(!report.parallelizable, "{:?}", report.reasons);
    }
}
