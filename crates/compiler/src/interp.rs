//! The HIR interpreter: runs compiled programs on the simulated machine.
//!
//! Compiled code executes by tree-walking the (policy-transformed) HIR.
//! Every evaluated node charges a small, configurable cost into the
//! [`OpSink`], so computation cost is proportional to the work the
//! generated machine code would perform; critical regions emit lock
//! acquire/release steps against the per-object locks of the simulated
//! machine; `extern` functions dispatch to host (Rust) closures with their
//! own configurable costs — this is how applications get inputs and how
//! expensive numeric kernels (like the paper's `interact`) are modeled.

use dynfb_lang::hir::{BinOp, Class, Expr, ExprKind, Extern, Function, Place, Stmt, Ty, UnOp};
use dynfb_sim::{LockId, OpSink};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Object reference (heap index).
    Obj(usize),
    /// Array reference (heap index).
    Arr(usize),
    /// Null reference.
    Null,
}

impl Value {
    /// Default value for a type (zero / false / null).
    #[must_use]
    pub fn default_for(ty: &Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Double => Value::Double(0.0),
            Ty::Bool => Value::Bool(false),
            _ => Value::Null,
        }
    }

    /// As an integer.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-integers.
    #[inline]
    pub fn as_int(self) -> Result<i64, RuntimeError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(RuntimeError::new(format!("expected int, got {other:?}"))),
        }
    }

    /// As a float.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-floats.
    #[inline]
    pub fn as_double(self) -> Result<f64, RuntimeError> {
        match self {
            Value::Double(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            other => Err(RuntimeError::new(format!("expected double, got {other:?}"))),
        }
    }
}

/// A heap object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Class index.
    pub class: usize,
    /// Field values.
    pub fields: Vec<Value>,
}

/// The program heap: objects and arrays.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    /// Allocated objects (index = object id = lock id offset).
    pub objects: Vec<Object>,
    /// Allocated arrays.
    pub arrays: Vec<Vec<Value>>,
}

impl Heap {
    /// Allocate an object of a class (fields zeroed).
    pub fn alloc_object(&mut self, class_idx: usize, classes: &[Class]) -> usize {
        let fields = classes[class_idx].fields.iter().map(|f| Value::default_for(&f.ty)).collect();
        self.objects.push(Object { class: class_idx, fields });
        self.objects.len() - 1
    }

    /// Allocate an array of `len` default values.
    pub fn alloc_array(&mut self, elem: &Ty, len: usize) -> usize {
        self.arrays.push(vec![Value::default_for(elem); len]);
        self.arrays.len() - 1
    }
}

/// A runtime error (null dereference, division by zero, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Human-readable message.
    pub message: String,
}

impl RuntimeError {
    /// Create an error.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError { message: message.into() }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Implementation of a host-provided `extern` function.
///
/// Host functions must be `Send` so a [`CompiledApp`](crate::artifact::CompiledApp)
/// can be built on one thread and run on another (the bench engine farms
/// whole runs out to worker threads). Stateful hosts should own their state
/// (capture by value) rather than share `Rc` handles.
pub type HostImpl = Box<dyn FnMut(&[Value]) -> Value + Send>;

/// A host-implemented `extern` function.
pub struct HostFn {
    /// Cost charged per call (models the kernel's real execution time).
    pub cost: Duration,
    /// The implementation.
    pub call: HostImpl,
}

impl fmt::Debug for HostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostFn").field("cost", &self.cost).finish_non_exhaustive()
    }
}

/// Registry of host functions, keyed by extern name.
///
/// Host functions are stored densely; the name map is consulted only at
/// registration and link time. [`link`](HostRegistry::link) resolves every
/// program extern to its dense index once, so the per-call hot path is a
/// single slice access instead of a `String` clone plus hash lookup.
#[derive(Debug, Default)]
pub struct HostRegistry {
    fns: Vec<HostFn>,
    by_name: HashMap<String, usize>,
    /// Extern id → index into `fns`; `usize::MAX` marks an unimplemented
    /// extern. Rebuilt lazily whenever the registry changes.
    resolved: Vec<usize>,
}

/// Sentinel in [`HostRegistry::resolved`] for externs with no host.
const UNRESOLVED: usize = usize::MAX;

impl HostRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        HostRegistry::default()
    }

    /// Register a host function. Re-registering a name replaces the
    /// previous implementation.
    pub fn register(
        &mut self,
        name: &str,
        cost: Duration,
        call: impl FnMut(&[Value]) -> Value + Send + 'static,
    ) {
        let f = HostFn { cost, call: Box::new(call) };
        match self.by_name.get(name) {
            Some(&i) => self.fns[i] = f,
            None => {
                self.by_name.insert(name.to_string(), self.fns.len());
                self.fns.push(f);
            }
        }
        // Any change invalidates the link table; it is rebuilt on demand.
        self.resolved.clear();
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Resolve every extern of a program to its dense host-fn index. Called
    /// once at compile/link time; extern calls afterwards are index lookups.
    pub fn link(&mut self, externs: &[Extern]) {
        self.resolved = externs
            .iter()
            .map(|e| self.by_name.get(&e.name).copied().unwrap_or(UNRESOLVED))
            .collect();
    }

    /// Fetch the host function for extern `ext`, linking lazily if the
    /// registry changed (or was never linked) since the last call.
    ///
    /// # Errors
    ///
    /// Returns a runtime error when the extern has no host implementation.
    pub fn dispatch(
        &mut self,
        ext: usize,
        externs: &[Extern],
    ) -> Result<&mut HostFn, RuntimeError> {
        if self.resolved.len() != externs.len() {
            self.link(externs);
        }
        let idx = self.resolved[ext];
        if idx == UNRESOLVED {
            return Err(RuntimeError::new(format!(
                "extern `{}` has no host implementation",
                externs[ext].name
            )));
        }
        Ok(&mut self.fns[idx])
    }
}

/// The cost model for interpreted code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost per evaluated HIR node (ALU op, field access, ...).
    pub node: Duration,
    /// Default cost of an extern call whose host function sets no cost.
    pub extern_default: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { node: Duration::from_nanos(8), extern_default: Duration::from_nanos(60) }
    }
}

/// Mutable program state shared by all sections of a compiled application.
#[derive(Debug)]
pub struct ProgramEnv {
    /// Class metadata.
    pub classes: Vec<Class>,
    /// Extern signatures.
    pub externs: Vec<Extern>,
    /// Global variable values.
    pub globals: Vec<Value>,
    /// The heap.
    pub heap: Heap,
    /// Host functions.
    pub host: HostRegistry,
}

/// Everything needed to execute code: the environment plus output sink.
pub struct Interp<'a> {
    /// Program state.
    pub env: &'a mut ProgramEnv,
    /// Function table to dispatch calls against (one policy version).
    pub funcs: &'a [Function],
    /// Cost model.
    pub cost: CostModel,
    /// Destination for compute/acquire/release steps.
    pub sink: &'a mut OpSink,
    /// First lock of the per-object lock pool.
    pub lock_base: LockId,
    /// Size of the lock pool (max objects).
    pub lock_capacity: usize,
    /// Remaining evaluation steps (guards against runaway loops).
    pub fuel: u64,
}

enum Flow {
    Normal,
    Return(Value),
}

impl<'a> Interp<'a> {
    fn charge(&mut self) -> Result<(), RuntimeError> {
        // Fuel is checked *before* charging: an exhausted run's sink holds
        // exactly one node cost per unit of fuel actually consumed. The
        // batched tiers bisect their block debits at the same boundary, so
        // all tiers agree on the partial sink contents at exhaustion.
        if self.fuel == 0 {
            return Err(RuntimeError::new("evaluation fuel exhausted (runaway loop?)"));
        }
        self.fuel -= 1;
        self.sink.compute(self.cost.node);
        Ok(())
    }

    fn lock_for(&self, obj: usize) -> Result<LockId, RuntimeError> {
        if obj >= self.lock_capacity {
            return Err(RuntimeError::new(format!(
                "object {obj} exceeds the lock pool capacity {} (raise max_objects)",
                self.lock_capacity
            )));
        }
        Ok(self.lock_base.offset(obj))
    }

    /// Call function `func` with an optional receiver.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error from the callee.
    pub fn call(
        &mut self,
        func: usize,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.charge()?;
        let f = &self.funcs[func];
        debug_assert_eq!(args.len(), f.num_params, "arity of `{}`", f.name);
        let mut locals: Vec<Value> = f.locals.iter().map(|l| Value::default_for(&l.ty)).collect();
        locals[..args.len()].copy_from_slice(&args);
        let mut frame = Frame { locals, this };
        // Reborrow the function table independently of `self` so the body
        // can be walked while `self` is mutated for accounting.
        let funcs: &'a [Function] = self.funcs;
        let body = &funcs[func].body;
        match self.stmts(body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    /// Execute a bare statement list (a parallel-loop body) with a
    /// prepared frame.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn exec_body(
        &mut self,
        body: &[Stmt],
        locals: Vec<Value>,
        this: Option<Value>,
    ) -> Result<Vec<Value>, RuntimeError> {
        let mut frame = Frame { locals, this };
        self.stmts(body, &mut frame)?;
        Ok(frame.locals)
    }

    fn stmts(&mut self, stmts: &[Stmt], frame: &mut Frame) -> Result<Flow, RuntimeError> {
        for s in stmts {
            if let Flow::Return(v) = self.stmt(s, frame)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<Flow, RuntimeError> {
        self.charge()?;
        match s {
            Stmt::Assign { place, value } => {
                let v = self.eval(value, frame)?;
                match place {
                    Place::Local(l) => frame.locals[l.0] = v,
                    Place::Global(g) => self.env.globals[g.0] = v,
                    Place::Field { obj, field, .. } => {
                        let o = self.eval(obj, frame)?;
                        let Value::Obj(id) = o else {
                            return Err(RuntimeError::new("field write on null/non-object"));
                        };
                        self.env.heap.objects[id].fields[*field] = v;
                    }
                    Place::Index { arr, idx } => {
                        let a = self.eval(arr, frame)?;
                        let i = self.eval(idx, frame)?.as_int()?;
                        let Value::Arr(id) = a else {
                            return Err(RuntimeError::new("index write on null/non-array"));
                        };
                        let arr = &mut self.env.heap.arrays[id];
                        let len = arr.len();
                        *arr.get_mut(usize::try_from(i).unwrap_or(usize::MAX)).ok_or_else(
                            || RuntimeError::new(format!("index {i} out of bounds ({len})")),
                        )? = v;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = self.eval(cond, frame)?;
                if matches!(c, Value::Bool(true)) {
                    self.stmts(then_branch, frame)
                } else {
                    self.stmts(else_branch, frame)
                }
            }
            Stmt::While { cond, body } => loop {
                self.charge()?;
                let c = self.eval(cond, frame)?;
                if !matches!(c, Value::Bool(true)) {
                    return Ok(Flow::Normal);
                }
                if let Flow::Return(v) = self.stmts(body, frame)? {
                    return Ok(Flow::Return(v));
                }
            },
            Stmt::CountedFor { var, start, bound, body } => {
                let start = self.eval(start, frame)?.as_int()?;
                let bound = self.eval(bound, frame)?.as_int()?;
                let mut i = start;
                while i < bound {
                    self.charge()?;
                    frame.locals[var.0] = Value::Int(i);
                    if let Flow::Return(v) = self.stmts(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                    i += 1;
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(v) => {
                let v = match v {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Critical { lock_obj, body, .. } => {
                let o = self.eval(lock_obj, frame)?;
                let Value::Obj(id) = o else {
                    return Err(RuntimeError::new("critical region on null/non-object"));
                };
                let lock = self.lock_for(id)?;
                self.sink.acquire(lock);
                let flow = self.stmts(body, frame)?;
                self.sink.release(lock);
                Ok(flow)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Result<Value, RuntimeError> {
        self.charge()?;
        Ok(match &e.kind {
            ExprKind::Int(v) => Value::Int(*v),
            ExprKind::Double(v) => Value::Double(*v),
            ExprKind::Bool(v) => Value::Bool(*v),
            ExprKind::Null => Value::Null,
            ExprKind::This => {
                frame.this.ok_or_else(|| RuntimeError::new("`this` outside method"))?
            }
            ExprKind::Local(l) => frame.locals[l.0],
            ExprKind::Global(g) => self.env.globals[g.0],
            ExprKind::FieldGet { obj, field, .. } => {
                let o = self.eval(obj, frame)?;
                let Value::Obj(id) = o else {
                    return Err(RuntimeError::new("field read on null/non-object"));
                };
                self.env.heap.objects[id].fields[*field]
            }
            ExprKind::Index { arr, idx } => {
                let a = self.eval(arr, frame)?;
                let i = self.eval(idx, frame)?.as_int()?;
                let Value::Arr(id) = a else {
                    return Err(RuntimeError::new("index read on null/non-array"));
                };
                let arr = &self.env.heap.arrays[id];
                *arr.get(usize::try_from(i).unwrap_or(usize::MAX)).ok_or_else(|| {
                    RuntimeError::new(format!("index {i} out of bounds ({})", arr.len()))
                })?
            }
            ExprKind::ArrayLen(a) => {
                let a = self.eval(a, frame)?;
                let Value::Arr(id) = a else {
                    return Err(RuntimeError::new("length of null/non-array"));
                };
                Value::Int(self.env.heap.arrays[id].len() as i64)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, frame)?;
                let r = self.eval(rhs, frame)?;
                binary_op(*op, l, r)?
            }
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr, frame)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Double(x) => Value::Double(-x),
                        _ => return Err(RuntimeError::new("negating non-number")),
                    },
                    UnOp::Not => match v {
                        Value::Bool(b) => Value::Bool(!b),
                        _ => return Err(RuntimeError::new("`!` on non-bool")),
                    },
                }
            }
            ExprKind::IntToDouble(inner) => {
                let v = self.eval(inner, frame)?;
                Value::Double(v.as_int()? as f64)
            }
            ExprKind::CallFn { func, args } => {
                let argv = self.eval_args(args, frame)?;
                self.call(func.0, None, argv)?
            }
            ExprKind::CallMethod { obj, func, args } => {
                let o = self.eval(obj, frame)?;
                if o == Value::Null {
                    return Err(RuntimeError::new(format!(
                        "method `{}` on null",
                        self.funcs[func.0].name
                    )));
                }
                let argv = self.eval_args(args, frame)?;
                self.call(func.0, Some(o), argv)?
            }
            ExprKind::CallExtern { ext, args } => {
                let argv = self.eval_args(args, frame)?;
                let ProgramEnv { host, externs, .. } = &mut *self.env;
                let host_fn = host.dispatch(ext.0, externs)?;
                let cost =
                    if host_fn.cost.is_zero() { self.cost.extern_default } else { host_fn.cost };
                self.sink.compute(cost);
                (host_fn.call)(&argv)
            }
            ExprKind::New { class } => {
                let id = self.env.heap.alloc_object(class.0, &self.env.classes);
                Value::Obj(id)
            }
            ExprKind::NewArray { elem, len } => {
                let n = self.eval(len, frame)?.as_int()?;
                if n < 0 {
                    return Err(RuntimeError::new("negative array length"));
                }
                let id = self.env.heap.alloc_array(elem, n as usize);
                Value::Arr(id)
            }
        })
    }

    fn eval_args(&mut self, args: &[Expr], frame: &mut Frame) -> Result<Vec<Value>, RuntimeError> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            out.push(self.eval(a, frame)?);
        }
        Ok(out)
    }
}

/// Apply a binary operator to two values. Shared by the tree-walker and
/// the bytecode VM so both tiers have identical numeric semantics and
/// error messages.
#[inline]
pub(crate) fn binary_op(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use Value::{Bool, Double, Int};
    Ok(match (op, l, r) {
        (BinOp::Add, Int(a), Int(b)) => Int(a.wrapping_add(b)),
        (BinOp::Sub, Int(a), Int(b)) => Int(a.wrapping_sub(b)),
        (BinOp::Mul, Int(a), Int(b)) => Int(a.wrapping_mul(b)),
        (BinOp::Div, Int(a), Int(b)) => {
            if b == 0 {
                return Err(RuntimeError::new("integer division by zero"));
            }
            Int(a.wrapping_div(b))
        }
        (BinOp::Rem, Int(a), Int(b)) => {
            if b == 0 {
                return Err(RuntimeError::new("integer remainder by zero"));
            }
            Int(a.wrapping_rem(b))
        }
        (BinOp::Add, Double(a), Double(b)) => Double(a + b),
        (BinOp::Sub, Double(a), Double(b)) => Double(a - b),
        (BinOp::Mul, Double(a), Double(b)) => Double(a * b),
        (BinOp::Div, Double(a), Double(b)) => Double(a / b),
        (BinOp::Lt, Int(a), Int(b)) => Bool(a < b),
        (BinOp::Le, Int(a), Int(b)) => Bool(a <= b),
        (BinOp::Gt, Int(a), Int(b)) => Bool(a > b),
        (BinOp::Ge, Int(a), Int(b)) => Bool(a >= b),
        (BinOp::Lt, Double(a), Double(b)) => Bool(a < b),
        (BinOp::Le, Double(a), Double(b)) => Bool(a <= b),
        (BinOp::Gt, Double(a), Double(b)) => Bool(a > b),
        (BinOp::Ge, Double(a), Double(b)) => Bool(a >= b),
        (BinOp::Eq, a, b) => Bool(a == b),
        (BinOp::Ne, a, b) => Bool(a != b),
        (BinOp::And, Bool(a), Bool(b)) => Bool(a && b),
        (BinOp::Or, Bool(a), Bool(b)) => Bool(a || b),
        (op, l, r) => {
            return Err(RuntimeError::new(format!(
                "type error in binary op {op:?} on {l:?}, {r:?}"
            )))
        }
    })
}

struct Frame {
    locals: Vec<Value>,
    this: Option<Value>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfb_lang::compile_source;

    fn lock_base(n: usize) -> LockId {
        let mut m = dynfb_sim::Machine::new(dynfb_sim::MachineConfig::default());
        m.add_locks(n)
    }

    fn run_fn(src: &str, func: &str, args: Vec<Value>) -> (Value, ProgramEnv, OpSink) {
        let hir = compile_source(src).unwrap();
        let mut env = ProgramEnv {
            classes: hir.classes.clone(),
            externs: hir.externs.clone(),
            globals: hir.globals.iter().map(|g| Value::default_for(&g.ty)).collect(),
            heap: Heap::default(),
            host: HostRegistry::new(),
        };
        env.host.register("hostadd", Duration::from_nanos(100), |args| {
            Value::Double(args[0].as_double().unwrap() + args[1].as_double().unwrap())
        });
        let mut sink = OpSink::default();
        let f = hir.function_named(func).unwrap();
        let v = {
            let mut interp = Interp {
                env: &mut env,
                funcs: &hir.functions,
                cost: CostModel::default(),
                sink: &mut sink,
                lock_base: lock_base(1024),
                lock_capacity: 1024,
                fuel: 10_000_000,
            };
            interp.call(f.0, None, args).unwrap()
        };
        (v, env, sink)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (v, _, _) = run_fn(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }",
            "fib",
            vec![Value::Int(10)],
        );
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn loops_and_arrays() {
        let (v, _, _) = run_fn(
            "double sum(int n) {
                 double[] a = new double[n];
                 for (int i = 0; i < n; i++) { a[i] = i * 2; }
                 double total = 0.0;
                 for (int i = 0; i < n; i++) { total += a[i]; }
                 return total;
             }",
            "sum",
            vec![Value::Int(10)],
        );
        assert_eq!(v, Value::Double(90.0));
    }

    #[test]
    fn objects_and_methods() {
        let (v, _, _) = run_fn(
            "class counter { int value; void add(int n) { this.value += n; } }
             int test() {
                 counter c = new counter();
                 c.add(4); c.add(5);
                 return c.value;
             }",
            "test",
            vec![],
        );
        assert_eq!(v, Value::Int(9));
    }

    #[test]
    fn extern_calls_dispatch_to_host() {
        let (v, _, sink) = run_fn(
            "extern double hostadd(double, double);
             double test() { return hostadd(1.5, 2.5); }",
            "test",
            vec![],
        );
        assert_eq!(v, Value::Double(4.0));
        let _ = sink;
    }

    #[test]
    fn runtime_errors_are_reported() {
        let hir = compile_source(
            "class c { int x; } int bad(c o) { return o.x; } int div(int a) { return a / 0; }",
        )
        .unwrap();
        let mut env = ProgramEnv {
            classes: hir.classes.clone(),
            externs: vec![],
            globals: vec![],
            heap: Heap::default(),
            host: HostRegistry::new(),
        };
        let mut sink = OpSink::default();
        let mut interp = Interp {
            env: &mut env,
            funcs: &hir.functions,
            cost: CostModel::default(),
            sink: &mut sink,
            lock_base: lock_base(16),
            lock_capacity: 16,
            fuel: 1_000_000,
        };
        let bad = hir.function_named("bad").unwrap();
        let err = interp.call(bad.0, None, vec![Value::Null]).unwrap_err();
        assert!(err.message.contains("null"));
        let div = hir.function_named("div").unwrap();
        let err = interp.call(div.0, None, vec![Value::Int(3)]).unwrap_err();
        assert!(err.message.contains("division by zero"));
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let hir = compile_source("void spin() { while (true) { } }").unwrap();
        let mut env = ProgramEnv {
            classes: vec![],
            externs: vec![],
            globals: vec![],
            heap: Heap::default(),
            host: HostRegistry::new(),
        };
        let mut sink = OpSink::default();
        let mut interp = Interp {
            env: &mut env,
            funcs: &hir.functions,
            cost: CostModel::default(),
            sink: &mut sink,
            lock_base: lock_base(1),
            lock_capacity: 1,
            fuel: 10_000,
        };
        let err = interp.call(0, None, vec![]).unwrap_err();
        assert!(err.message.contains("fuel"));
    }
}
