//! Robustness properties of the front end: the lexer and parser must never
//! panic, valid constructs round-trip through analysis, and diagnostics
//! carry positions.
//!
//! Inputs are generated with the repository's own deterministic PRNG
//! (`dynfb_core::rng::SplitMix64`), so every failure reproduces from the
//! fixed seeds below.

use dynfb_core::rng::SplitMix64;
use dynfb_lang::{compile_source, lexer::lex, parse};

const CASES: u64 = 256;

/// A random string of up to `max_len` characters, mixing ASCII (printable
/// and control), language punctuation, and multi-byte unicode — the kind of
/// soup a fuzzer would feed the front end.
fn gen_string(g: &mut SplitMix64, max_len: usize) -> String {
    let len = g.gen_index(max_len + 1);
    let mut s = String::new();
    for _ in 0..len {
        let c = match g.gen_index(8) {
            0 => char::from(g.gen_range(0x20, 0x7f) as u8), // printable ASCII
            1 => char::from(g.gen_range(0, 0x20) as u8),    // control chars
            2 => ['{', '}', '(', ')', ';', '+', '=', '.', '"', '/'][g.gen_index(10)],
            3 => ['λ', '∞', '€', '🦀', '\u{200b}', 'Ω'][g.gen_index(6)],
            _ => char::from(g.gen_range(b'a' as u64, b'z' as u64 + 1) as u8),
        };
        s.push(c);
    }
    s
}

/// The lexer never panics, on any input.
#[test]
fn lexer_never_panics() {
    let mut g = SplitMix64::new(0x1A_0001);
    for _ in 0..CASES {
        let input = gen_string(&mut g, 200);
        let _ = lex(&input);
    }
}

/// The parser never panics, on any input (errors are returned).
#[test]
fn parser_never_panics() {
    let mut g = SplitMix64::new(0x1A_0002);
    for _ in 0..CASES {
        let input = gen_string(&mut g, 200);
        let _ = parse(&input);
    }
}

/// Full front end never panics on inputs built from language-ish fragments
/// (much denser in near-valid programs than raw strings).
#[test]
fn sema_never_panics_on_fragment_soup() {
    const FRAGMENTS: [&str; 10] = [
        "class c { int x; }",
        "void f() { }",
        "int g(int n) { return n + 1; }",
        "double h(double v) { return v * 2.0; }",
        "{ int y = 0; y++; }",
        "if (true) { } else { }",
        "for (int i = 0; i < 3; i++) { }",
        "x = y;",
        "}{",
        "this.q +=",
    ];
    let mut g = SplitMix64::new(0x1A_0003);
    for _ in 0..CASES {
        let n = g.gen_index(8);
        let parts: Vec<&str> = (0..n).map(|_| FRAGMENTS[g.gen_index(FRAGMENTS.len())]).collect();
        let source = parts.join("\n");
        let _ = compile_source(&source);
    }
}

/// Integer literals lex to their value.
#[test]
fn integers_lex_exactly() {
    let mut g = SplitMix64::new(0x1A_0004);
    for _ in 0..CASES {
        let v = g.gen_range_i64(0, i64::MAX / 2);
        let toks = lex(&v.to_string()).unwrap();
        assert!(matches!(toks[0].tok, dynfb_lang::token::Tok::Int(x) if x == v));
    }
}

/// Identifiers lex as identifiers (keywords excluded).
#[test]
fn identifiers_lex_exactly() {
    let mut g = SplitMix64::new(0x1A_0005);
    let first = "abcdefghijklmnopqrstuvwxyz_";
    let rest = "abcdefghijklmnopqrstuvwxyz0123456789_";
    for _ in 0..CASES {
        let mut name = String::new();
        name.push(first.as_bytes()[g.gen_index(first.len())] as char);
        for _ in 0..g.gen_index(11) {
            name.push(rest.as_bytes()[g.gen_index(rest.len())] as char);
        }
        if dynfb_lang::token::Kw::lookup(&name).is_some() {
            continue; // keyword: not an identifier, skip this case
        }
        let toks = lex(&name).unwrap();
        assert!(
            matches!(&toks[0].tok, dynfb_lang::token::Tok::Ident(s) if *s == name),
            "{name}: {:?}",
            toks[0]
        );
    }
}

/// Well-formed arithmetic over declared variables always compiles, and the
/// printer renders it without panicking.
#[test]
fn arithmetic_programs_compile() {
    let mut g = SplitMix64::new(0x1A_0006);
    for _ in 0..CASES {
        let n_ops = g.gen_index(5) + 1;
        let ops: Vec<&str> = (0..n_ops).map(|_| ["+", "-", "*"][g.gen_index(3)]).collect();
        let expr = ops
            .iter()
            .enumerate()
            .fold("1".to_string(), |acc, (i, op)| format!("({acc} {op} {})", i + 2));
        let src = format!("int f() {{ return {expr}; }}");
        let hir = compile_source(&src).expect("valid arithmetic");
        let text = dynfb_lang::printer::print_program(&hir);
        assert!(text.contains("return"));
    }
}
