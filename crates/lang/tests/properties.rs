//! Robustness properties of the front end: the lexer and parser must never
//! panic, valid constructs round-trip through analysis, and diagnostics
//! carry positions.
//!
//! Inputs are generated with the repository's own deterministic PRNG
//! (`dynfb_core::rng::SplitMix64`), so every failure reproduces from the
//! fixed seeds below.

use dynfb_core::rng::SplitMix64;
use dynfb_lang::{compile_source, lexer::lex, parse};

const CASES: u64 = 256;

/// A random string of up to `max_len` characters, mixing ASCII (printable
/// and control), language punctuation, and multi-byte unicode — the kind of
/// soup a fuzzer would feed the front end.
fn gen_string(g: &mut SplitMix64, max_len: usize) -> String {
    let len = g.gen_index(max_len + 1);
    let mut s = String::new();
    for _ in 0..len {
        let c = match g.gen_index(8) {
            0 => char::from(g.gen_range(0x20, 0x7f) as u8), // printable ASCII
            1 => char::from(g.gen_range(0, 0x20) as u8),    // control chars
            2 => ['{', '}', '(', ')', ';', '+', '=', '.', '"', '/'][g.gen_index(10)],
            3 => ['λ', '∞', '€', '🦀', '\u{200b}', 'Ω'][g.gen_index(6)],
            _ => char::from(g.gen_range(b'a' as u64, b'z' as u64 + 1) as u8),
        };
        s.push(c);
    }
    s
}

/// The lexer never panics, on any input.
#[test]
fn lexer_never_panics() {
    let mut g = SplitMix64::new(0x1A_0001);
    for _ in 0..CASES {
        let input = gen_string(&mut g, 200);
        let _ = lex(&input);
    }
}

/// The parser never panics, on any input (errors are returned).
#[test]
fn parser_never_panics() {
    let mut g = SplitMix64::new(0x1A_0002);
    for _ in 0..CASES {
        let input = gen_string(&mut g, 200);
        let _ = parse(&input);
    }
}

/// Full front end never panics on inputs built from language-ish fragments
/// (much denser in near-valid programs than raw strings).
#[test]
fn sema_never_panics_on_fragment_soup() {
    const FRAGMENTS: [&str; 10] = [
        "class c { int x; }",
        "void f() { }",
        "int g(int n) { return n + 1; }",
        "double h(double v) { return v * 2.0; }",
        "{ int y = 0; y++; }",
        "if (true) { } else { }",
        "for (int i = 0; i < 3; i++) { }",
        "x = y;",
        "}{",
        "this.q +=",
    ];
    let mut g = SplitMix64::new(0x1A_0003);
    for _ in 0..CASES {
        let n = g.gen_index(8);
        let parts: Vec<&str> = (0..n).map(|_| FRAGMENTS[g.gen_index(FRAGMENTS.len())]).collect();
        let source = parts.join("\n");
        let _ = compile_source(&source);
    }
}

/// Integer literals lex to their value.
#[test]
fn integers_lex_exactly() {
    let mut g = SplitMix64::new(0x1A_0004);
    for _ in 0..CASES {
        let v = g.gen_range_i64(0, i64::MAX / 2);
        let toks = lex(&v.to_string()).unwrap();
        assert!(matches!(toks[0].tok, dynfb_lang::token::Tok::Int(x) if x == v));
    }
}

/// Identifiers lex as identifiers (keywords excluded).
#[test]
fn identifiers_lex_exactly() {
    let mut g = SplitMix64::new(0x1A_0005);
    let first = "abcdefghijklmnopqrstuvwxyz_";
    let rest = "abcdefghijklmnopqrstuvwxyz0123456789_";
    for _ in 0..CASES {
        let mut name = String::new();
        name.push(first.as_bytes()[g.gen_index(first.len())] as char);
        for _ in 0..g.gen_index(11) {
            name.push(rest.as_bytes()[g.gen_index(rest.len())] as char);
        }
        if dynfb_lang::token::Kw::lookup(&name).is_some() {
            continue; // keyword: not an identifier, skip this case
        }
        let toks = lex(&name).unwrap();
        assert!(
            matches!(&toks[0].tok, dynfb_lang::token::Tok::Ident(s) if *s == name),
            "{name}: {:?}",
            toks[0]
        );
    }
}

/// Well-formed arithmetic over declared variables always compiles, and the
/// printer renders it without panicking.
#[test]
fn arithmetic_programs_compile() {
    let mut g = SplitMix64::new(0x1A_0006);
    for _ in 0..CASES {
        let n_ops = g.gen_index(5) + 1;
        let ops: Vec<&str> = (0..n_ops).map(|_| ["+", "-", "*"][g.gen_index(3)]).collect();
        let expr = ops
            .iter()
            .enumerate()
            .fold("1".to_string(), |acc, (i, op)| format!("({acc} {op} {})", i + 2));
        let src = format!("int f() {{ return {expr}; }}");
        let hir = compile_source(&src).expect("valid arithmetic");
        let text = dynfb_lang::printer::print_program(&hir);
        assert!(text.contains("return"));
    }
}

/// Generate a random valid program: free functions over `int` with
/// locals, arithmetic, conditionals, and loops — the constructs the
/// printer has to render back into parseable surface syntax.
fn gen_program(g: &mut SplitMix64) -> String {
    fn expr(g: &mut SplitMix64, vars: &[String], depth: usize) -> String {
        if depth == 0 || g.chance(0.4) {
            if !vars.is_empty() && g.chance(0.5) {
                vars[g.gen_index(vars.len())].clone()
            } else {
                g.gen_index(100).to_string()
            }
        } else {
            let op = ["+", "-", "*"][g.gen_index(3)];
            format!("({} {op} {})", expr(g, vars, depth - 1), expr(g, vars, depth - 1))
        }
    }
    fn stmts(g: &mut SplitMix64, vars: &mut Vec<String>, depth: usize, out: &mut String) {
        for _ in 0..g.gen_index(4) {
            match g.gen_index(4) {
                0 => {
                    let name = format!("x{}", vars.len());
                    let init = expr(g, vars, 2);
                    out.push_str(&format!("int {name} = {init};\n"));
                    vars.push(name);
                }
                1 if !vars.is_empty() => {
                    let v = vars[g.gen_index(vars.len())].clone();
                    let rhs = expr(g, vars, 2);
                    out.push_str(&format!("{v} = {rhs};\n"));
                }
                2 if depth > 0 => {
                    let (a, b) = (expr(g, vars, 1), expr(g, vars, 1));
                    out.push_str(&format!("if ({a} < {b}) {{\n"));
                    let mut inner = vars.clone();
                    stmts(g, &mut inner, depth - 1, out);
                    if g.chance(0.5) {
                        out.push_str("} else {\n");
                        let mut inner = vars.clone();
                        stmts(g, &mut inner, depth - 1, out);
                    }
                    out.push_str("}\n");
                }
                3 if depth > 0 => {
                    let n = format!("k{}", vars.len());
                    out.push_str(&format!("for (int {n} = 0; {n} < 3; {n} = {n} + 1) {{\n"));
                    let mut inner = vars.clone();
                    inner.push(n);
                    stmts(g, &mut inner, depth - 1, out);
                    out.push_str("}\n");
                }
                _ => {}
            }
        }
    }
    let mut src = String::new();
    for f in 0..1 + g.gen_index(3) {
        let params = ["", "int a", "int a, int b"][g.gen_index(3)];
        let mut vars: Vec<String> =
            params.split(", ").filter(|p| !p.is_empty()).map(|p| p[4..].to_string()).collect();
        src.push_str(&format!("int f{f}({params}) {{\n"));
        stmts(&mut *g, &mut vars, 2, &mut src);
        src.push_str(&format!("return {};\n}}\n", expr(g, &vars, 2)));
    }
    src
}

/// Pretty-printed programs re-parse, and printing the re-parsed program
/// reproduces the text exactly (the printer is a fixpoint of
/// print ∘ compile). Guards both directions: the printer emits valid
/// surface syntax, and the front end preserves what it read.
#[test]
fn printer_roundtrip_reaches_fixpoint() {
    let mut g = SplitMix64::new(0x1A_0007);
    for case in 0..CASES {
        let src = gen_program(&mut g);
        let hir = compile_source(&src)
            .unwrap_or_else(|e| panic!("case {case}: generated program rejected: {e}\n{src}"));
        let printed = dynfb_lang::printer::print_program(&hir);
        let rehir = compile_source(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printer output rejected: {e}\n--- printed ---\n{printed}")
        });
        let reprinted = dynfb_lang::printer::print_program(&rehir);
        assert_eq!(printed, reprinted, "case {case}: printer not a fixpoint\n{src}");
    }
}

/// The lexer never panics on arbitrary *byte* strings — including invalid
/// UTF-8 sequences, which reach it via lossy decoding.
#[test]
fn lexer_never_panics_on_arbitrary_bytes() {
    let mut g = SplitMix64::new(0x1A_0008);
    for _ in 0..CASES {
        let len = g.gen_index(256);
        let bytes: Vec<u8> = (0..len).map(|_| g.gen_index(256) as u8).collect();
        let input = String::from_utf8_lossy(&bytes);
        let _ = lex(&input);
        let _ = parse(&input);
    }
}
