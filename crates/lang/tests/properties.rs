//! Robustness properties of the front end: the lexer and parser must never
//! panic, valid constructs round-trip through analysis, and diagnostics
//! carry positions.

use dynfb_lang::{compile_source, lexer::lex, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics, on any input.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// The parser never panics, on any input (errors are returned).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Full front end never panics on inputs built from language-ish
    /// fragments (much denser in near-valid programs than raw strings).
    #[test]
    fn sema_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("class c { int x; }"),
                Just("void f() { }"),
                Just("int g(int n) { return n + 1; }"),
                Just("double h(double v) { return v * 2.0; }"),
                Just("{ int y = 0; y++; }"),
                Just("if (true) { } else { }"),
                Just("for (int i = 0; i < 3; i++) { }"),
                Just("x = y;"),
                Just("}{"),
                Just("this.q +="),
            ],
            0..8,
        )
    ) {
        let source = parts.join("\n");
        let _ = compile_source(&source);
    }

    /// Integer literals lex to their value.
    #[test]
    fn integers_lex_exactly(v in 0i64..i64::MAX / 2) {
        let toks = lex(&v.to_string()).unwrap();
        assert!(matches!(toks[0].tok, dynfb_lang::token::Tok::Int(x) if x == v));
    }

    /// Identifiers lex as identifiers (keywords excluded).
    #[test]
    fn identifiers_lex_exactly(name in "[a-z_][a-z0-9_]{0,10}") {
        prop_assume!(dynfb_lang::token::Kw::from_str(&name).is_none());
        let toks = lex(&name).unwrap();
        assert!(
            matches!(&toks[0].tok, dynfb_lang::token::Tok::Ident(s) if *s == name),
            "{name}: {:?}",
            toks[0]
        );
    }

    /// Well-formed arithmetic over declared variables always compiles, and
    /// the printer renders it without panicking.
    #[test]
    fn arithmetic_programs_compile(
        ops in proptest::collection::vec(prop_oneof![Just("+"), Just("-"), Just("*")], 1..6)
    ) {
        let expr = ops
            .iter()
            .enumerate()
            .fold("1".to_string(), |acc, (i, op)| format!("({acc} {op} {})", i + 2));
        let src = format!("int f() {{ return {expr}; }}");
        let hir = compile_source(&src).expect("valid arithmetic");
        let text = dynfb_lang::printer::print_program(&hir);
        prop_assert!(text.contains("return"));
    }
}
