//! # dynfb-lang — the object-based mini language
//!
//! The paper's compiler consumes serial, object-based C++ programs and
//! parallelizes them with commutativity analysis. This crate is the front
//! end of our from-scratch reimplementation of that pipeline: a small,
//! C++-flavoured object language with classes, methods, loops, object
//! references, heap arrays, and host-implemented `extern` functions.
//!
//! Pipeline: [`parser::parse`] → [`sema::analyze`] → [`hir::Hir`], or in
//! one step, [`sema::compile_source`]. The back end — automatic
//! parallelization, lock insertion, and the synchronization optimization
//! policies — lives in the `dynfb-compiler` crate and operates on the HIR.
//!
//! ```
//! let hir = dynfb_lang::compile_source(r#"
//!     class counter {
//!         int value;
//!         void add(int n) { this.value += n; }
//!     }
//! "#)?;
//! assert_eq!(hir.classes.len(), 1);
//! # Ok::<(), dynfb_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod token;

pub use error::LangError;
pub use parser::parse;
pub use sema::{analyze, compile_source};
