//! The lexer: source text → token stream.

use crate::error::LangError;
use crate::token::{Kw, Punct, Span, Tok, Token};

/// Tokenize a complete source file.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters or malformed literals.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), line: 1, col: 1 }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, span });
                return Ok(out);
            };
            let tok = if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else if c.is_ascii_digit() {
                self.number(span)?
            } else {
                self.punct(span)?
            };
            out.push(Token { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Possible comment: clone-free lookahead via a cheap copy
                    // of the iterator state is not available, so peek after
                    // consuming only when it is a comment starter.
                    let mut it = self.chars.clone();
                    it.next();
                    match it.peek() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            let start = self.span();
                            self.bump();
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.eat('/') {
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(LangError::lex(start, "unterminated block comment"));
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Kw::lookup(&s) {
            Some(kw) => Tok::Kw(kw),
            None => Tok::Ident(s),
        }
    }

    fn number(&mut self, span: Span) -> Result<Tok, LangError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    s.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        let mut is_double = false;
        if self.peek() == Some('.') {
            // Only a fractional part if a digit follows (else it's `.` punct,
            // e.g. method call on an integer is not supported anyway).
            let mut it = self.chars.clone();
            it.next();
            if it.peek().is_some_and(char::is_ascii_digit) {
                is_double = true;
                s.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_double = true;
            s.push('e');
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                s.push(self.bump().unwrap());
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if is_double {
            s.parse::<f64>()
                .map(Tok::Double)
                .map_err(|_| LangError::lex(span, format!("invalid float literal `{s}`")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| LangError::lex(span, format!("invalid integer literal `{s}`")))
        }
    }

    fn punct(&mut self, span: Span) -> Result<Tok, LangError> {
        let c = self.bump().expect("peeked");
        use Punct::*;
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            '.' => Dot,
            '+' => {
                if self.eat('=') {
                    PlusAssign
                } else if self.eat('+') {
                    PlusPlus
                } else {
                    Plus
                }
            }
            '-' => {
                if self.eat('=') {
                    MinusAssign
                } else if self.eat('-') {
                    MinusMinus
                } else if self.eat('>') {
                    Arrow
                } else {
                    Minus
                }
            }
            '*' => {
                if self.eat('=') {
                    StarAssign
                } else {
                    Star
                }
            }
            '/' => {
                if self.eat('=') {
                    SlashAssign
                } else {
                    Slash
                }
            }
            '%' => Percent,
            '=' => {
                if self.eat('=') {
                    Eq
                } else {
                    Assign
                }
            }
            '!' => {
                if self.eat('=') {
                    Ne
                } else {
                    Not
                }
            }
            '<' => {
                if self.eat('=') {
                    Le
                } else {
                    Lt
                }
            }
            '>' => {
                if self.eat('=') {
                    Ge
                } else {
                    Gt
                }
            }
            '&' => {
                if self.eat('&') {
                    AndAnd
                } else {
                    Amp
                }
            }
            '|' => {
                if self.eat('|') {
                    OrOr
                } else {
                    return Err(LangError::lex(span, "single `|` is not an operator"));
                }
            }
            other => {
                return Err(LangError::lex(span, format!("unexpected character `{other}`")));
            }
        };
        Ok(Tok::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        assert_eq!(
            toks("class body_2 double"),
            vec![Tok::Kw(Kw::Class), Tok::Ident("body_2".into()), Tok::Kw(Kw::Double), Tok::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2"),
            vec![Tok::Int(42), Tok::Double(3.5), Tok::Double(1000.0), Tok::Double(0.025), Tok::Eof]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            toks("+= -> ++ == <= && ||"),
            vec![
                Tok::Punct(Punct::PlusAssign),
                Tok::Punct(Punct::Arrow),
                Tok::Punct(Punct::PlusPlus),
                Tok::Punct(Punct::Eq),
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::AndAnd),
                Tok::Punct(Punct::OrOr),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a // line\n b /* block\n still */ c"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a # b").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn integer_then_dot_method_like() {
        // `1.x` must lex as Int(1), Dot, Ident(x): the dot is only part of a
        // number when followed by a digit.
        assert_eq!(
            toks("1.x"),
            vec![Tok::Int(1), Tok::Punct(Punct::Dot), Tok::Ident("x".into()), Tok::Eof]
        );
    }
}
