//! A pretty-printer for the HIR: renders analyzed (and transformed) code
//! back to readable surface syntax. Critical regions — which only the
//! parallelizing compiler inserts — are rendered as
//! `synchronized (obj) { ... }` blocks, making the policy transformations
//! (the paper's Figure 1 → Figure 2) directly visible.

use crate::hir::{BinOp, Expr, ExprKind, Function, Hir, Place, Stmt, Ty, UnOp};
use std::fmt::Write as _;

/// Render one function as source-like text.
#[must_use]
pub fn print_function(hir: &Hir, func: &Function) -> String {
    print_function_in(hir, &hir.functions, func)
}

/// Render one function against an explicit function table (for transformed
/// code whose call targets include generated clones that are not in the
/// original program).
#[must_use]
pub fn print_function_in(hir: &Hir, table: &[Function], func: &Function) -> String {
    let mut p = Printer { hir, table, func, out: String::new(), indent: 0 };
    let params: Vec<String> = (0..func.num_params)
        .map(|i| format!("{} {}", ty(hir, &func.locals[i].ty), func.locals[i].name))
        .collect();
    let _ = writeln!(
        p.out,
        "{} {}({}) {{",
        ty(hir, &func.ret),
        func.qualified_name(&hir.classes),
        params.join(", ")
    );
    p.indent = 1;
    // The HIR flattens lexical scopes into a slot table, erasing declaration
    // sites. Re-introduce them by declaring every non-parameter local up
    // front — except counted-loop induction variables, which the `for`
    // header declares — so the printed text is itself a valid program.
    let mut loop_vars = Vec::new();
    collect_loop_vars(&func.body, &mut loop_vars);
    for (i, local) in func.locals.iter().enumerate().skip(func.num_params) {
        if !loop_vars.contains(&i) {
            p.line(&format!("{} {};", ty(hir, &local.ty), local.name));
        }
    }
    p.stmts(&func.body);
    p.out.push_str("}\n");
    p.out
}

/// Render every function of a program.
#[must_use]
pub fn print_program(hir: &Hir) -> String {
    let mut out = String::new();
    for f in &hir.functions {
        out.push_str(&print_function(hir, f));
        out.push('\n');
    }
    out
}

/// Slot indices of every `CountedFor` induction variable in `stmts`.
fn collect_loop_vars(stmts: &[Stmt], out: &mut Vec<usize>) {
    for s in stmts {
        match s {
            Stmt::CountedFor { var, body, .. } => {
                out.push(var.0);
                collect_loop_vars(body, out);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_loop_vars(then_branch, out);
                collect_loop_vars(else_branch, out);
            }
            Stmt::While { body, .. } | Stmt::Critical { body, .. } => {
                collect_loop_vars(body, out);
            }
            Stmt::Assign { .. } | Stmt::Return(_) | Stmt::Expr(_) => {}
        }
    }
}

fn ty(hir: &Hir, t: &Ty) -> String {
    match t {
        Ty::Int => "int".to_string(),
        Ty::Double => "double".to_string(),
        Ty::Bool => "bool".to_string(),
        Ty::Void => "void".to_string(),
        Ty::Object(c) => hir.classes[c.0].name.clone(),
        Ty::Array(inner) => format!("{}[]", ty(hir, inner)),
        Ty::Null => "null".to_string(),
    }
}

struct Printer<'a> {
    hir: &'a Hir,
    table: &'a [Function],
    func: &'a Function,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { place, value } => {
                let text = format!("{} = {};", self.place(place), self.expr(value));
                self.line(&text);
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let text = format!("if ({}) {{", self.expr(cond));
                self.line(&text);
                self.indent += 1;
                self.stmts(then_branch);
                self.indent -= 1;
                if else_branch.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmts(else_branch);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::While { cond, body } => {
                let text = format!("while ({}) {{", self.expr(cond));
                self.line(&text);
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::CountedFor { var, start, bound, body } => {
                let v = &self.func.locals[var.0].name;
                let text = format!(
                    "for (int {v} = {}; {v} < {}; {v}++) {{",
                    self.expr(start),
                    self.expr(bound)
                );
                self.line(&text);
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Return(None) => self.line("return;"),
            Stmt::Return(Some(e)) => {
                let text = format!("return {};", self.expr(e));
                self.line(&text);
            }
            Stmt::Expr(e) => {
                let text = format!("{};", self.expr(e));
                self.line(&text);
            }
            Stmt::Critical { lock_obj, body, .. } => {
                let text = format!("synchronized ({}) {{", self.expr(lock_obj));
                self.line(&text);
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    fn place(&self, p: &Place) -> String {
        match p {
            Place::Local(l) => self.func.locals[l.0].name.clone(),
            Place::Global(g) => self.hir.globals[g.0].name.clone(),
            Place::Field { obj, class, field } => {
                format!("{}.{}", self.expr(obj), self.hir.classes[class.0].fields[*field].name)
            }
            Place::Index { arr, idx } => format!("{}[{}]", self.expr(arr), self.expr(idx)),
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match &e.kind {
            ExprKind::Int(v) => v.to_string(),
            ExprKind::Double(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            ExprKind::Bool(v) => v.to_string(),
            ExprKind::Null => "null".to_string(),
            ExprKind::This => "this".to_string(),
            ExprKind::Local(l) => self.func.locals[l.0].name.clone(),
            ExprKind::Global(g) => self.hir.globals[g.0].name.clone(),
            ExprKind::FieldGet { obj, class, field } => {
                format!("{}.{}", self.expr(obj), self.hir.classes[class.0].fields[*field].name)
            }
            ExprKind::Index { arr, idx } => {
                format!("{}[{}]", self.expr(arr), self.expr(idx))
            }
            ExprKind::ArrayLen(a) => format!("{}.length", self.expr(a)),
            ExprKind::Binary { op, lhs, rhs } => {
                format!("({} {} {})", self.expr(lhs), binop(*op), self.expr(rhs))
            }
            ExprKind::Unary { op, expr } => match op {
                UnOp::Neg => format!("-{}", self.expr(expr)),
                UnOp::Not => format!("!{}", self.expr(expr)),
            },
            ExprKind::IntToDouble(inner) => format!("(double){}", self.expr(inner)),
            ExprKind::CallFn { func, args } => {
                format!("{}({})", self.callee_name(*func), self.args(args))
            }
            ExprKind::CallMethod { obj, func, args } => {
                format!("{}.{}({})", self.expr(obj), self.callee_name(*func), self.args(args))
            }
            ExprKind::CallExtern { ext, args } => {
                format!("{}({})", self.hir.externs[ext.0].name, self.args(args))
            }
            ExprKind::New { class } => format!("new {}()", self.hir.classes[class.0].name),
            ExprKind::NewArray { elem, len } => {
                format!("new {}[{}]", ty(self.hir, elem), self.expr(len))
            }
        }
    }

    fn callee_name(&self, f: crate::hir::FuncId) -> String {
        self.table.get(f.0).map_or_else(|| format!("fn#{}", f.0), |func| func.name.clone())
    }

    fn args(&self, args: &[Expr]) -> String {
        args.iter().map(|a| self.expr(a)).collect::<Vec<_>>().join(", ")
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn prints_figure_1_shape() {
        let hir = compile_source(
            "extern double interact(double, double);
             class body { double pos; double sum;
                 void one(body b) {
                     double val = interact(this.pos, b.pos);
                     this.sum += val;
                 } }",
        )
        .unwrap();
        let text = print_program(&hir);
        assert!(text.contains("void body::one(body b) {"));
        assert!(text.contains("val = interact(this.pos, b.pos);"));
        assert!(text.contains("this.sum = (this.sum + val);"));
    }

    #[test]
    fn prints_loops_and_branches() {
        let hir = compile_source(
            "int f(int n) {
                 int total = 0;
                 for (int i = 0; i < n; i++) {
                     if (i % 2 == 0) { total += i; } else { total -= 1; }
                 }
                 while (total > 100) { total = total / 2; }
                 return total;
             }",
        )
        .unwrap();
        let text = print_program(&hir);
        assert!(text.contains("for (int i = 0; i < n; i++) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("while ((total > 100)) {"));
        assert!(text.contains("return total;"));
    }

    #[test]
    fn printing_is_stable() {
        let hir = compile_source("class c { double x; void m(double v) { this.x += v * 2.0; } }")
            .unwrap();
        assert_eq!(print_program(&hir), print_program(&hir));
    }
}
