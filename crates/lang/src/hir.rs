//! The typed, resolved intermediate representation.
//!
//! Semantic analysis lowers the [`crate::ast`] into this HIR: names are
//! resolved to indices, every expression carries its type, locals are
//! flattened into per-function slot tables, compound assignments are
//! desugared, and canonical counted loops (`for (int i = s; i < b; i++)`)
//! are recognized structurally — the form the parallelizing compiler in
//! `dynfb-compiler` looks for.
//!
//! The HIR also contains one node the *front end never produces*:
//! [`Stmt::Critical`], a structured critical region protected by an object's
//! implicit lock. The parallelizing compiler inserts these (default lock
//! placement) and its synchronization optimization policies transform them
//! (merge, loop hoist, interprocedural lift).

pub use crate::ast::{BinOp, UnOp};
use std::fmt;

/// Index of a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

/// Index of a function (free functions and methods share one table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub usize);

/// Index of an extern (host) function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExternId(pub usize);

/// Index of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub usize);

/// Index of a local slot within a function (parameters come first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub usize);

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
    /// No value.
    Void,
    /// Reference to an object of the given class.
    Object(ClassId),
    /// Reference to a heap array.
    Array(Box<Ty>),
    /// The type of `null` (assignable to any reference type).
    Null,
}

impl Ty {
    /// True for `int` and `double`.
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Int | Ty::Double)
    }

    /// True for object, array, and null types.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        matches!(self, Ty::Object(_) | Ty::Array(_) | Ty::Null)
    }

    /// Whether a value of type `self` can be assigned from `from`
    /// (identical, `int → double` widening, or `null` into a reference).
    #[must_use]
    pub fn accepts(&self, from: &Ty) -> bool {
        self == from
            || (*self == Ty::Double && *from == Ty::Int)
            || (self.is_reference() && *from == Ty::Null)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Double => write!(f, "double"),
            Ty::Bool => write!(f, "bool"),
            Ty::Void => write!(f, "void"),
            Ty::Object(c) => write!(f, "class#{}", c.0),
            Ty::Array(t) => write!(f, "{t}[]"),
            Ty::Null => write!(f, "null"),
        }
    }
}

/// A class: its fields (each object also carries an implicit lock).
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Fields, in declaration order.
    pub fields: Vec<Field>,
}

/// A field of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

/// A host-implemented function.
#[derive(Debug, Clone, PartialEq)]
pub struct Extern {
    /// Name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
}

/// A local slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Local {
    /// Source name (synthetic locals get `$`-prefixed names).
    pub name: String,
    /// Type.
    pub ty: Ty,
}

/// A function or method.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// `Some` if this is a method of the class.
    pub class: Option<ClassId>,
    /// Number of parameters (the first `num_params` locals).
    pub num_params: usize,
    /// All local slots (parameters first).
    pub locals: Vec<Local>,
    /// Return type.
    pub ret: Ty,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Qualified name for diagnostics (`class::method` or `function`).
    #[must_use]
    pub fn qualified_name(&self, classes: &[Class]) -> String {
        match self.class {
            Some(c) => format!("{}::{}", classes[c.0].name, self.name),
            None => self.name.clone(),
        }
    }
}

/// The whole program, typed and resolved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hir {
    /// Classes.
    pub classes: Vec<Class>,
    /// Functions and methods.
    pub functions: Vec<Function>,
    /// Extern functions.
    pub externs: Vec<Extern>,
    /// Globals.
    pub globals: Vec<Global>,
}

impl Hir {
    /// Look up a free function by name.
    #[must_use]
    pub fn function_named(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.class.is_none() && f.name == name).map(FuncId)
    }

    /// Look up a method by class and name.
    #[must_use]
    pub fn method_named(&self, class: ClassId, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.class == Some(class) && f.name == name).map(FuncId)
    }

    /// Look up a class by name.
    #[must_use]
    pub fn class_named(&self, name: &str) -> Option<ClassId> {
        self.classes.iter().position(|c| c.name == name).map(ClassId)
    }

    /// Look up a global by name.
    #[must_use]
    pub fn global_named(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(GlobalId)
    }
}

/// An l-value.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// A local slot.
    Local(LocalId),
    /// A global variable.
    Global(GlobalId),
    /// A field of an object.
    Field {
        /// Object expression.
        obj: Box<Expr>,
        /// The object's class.
        class: ClassId,
        /// Field index within the class.
        field: usize,
    },
    /// An array element.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `place = value`.
    Assign {
        /// Target.
        place: Place,
        /// Value.
        value: Expr,
    },
    /// `if`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch.
        else_branch: Vec<Stmt>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Canonical counted loop `for (var = start; var < bound; var++)`.
    /// This is the loop shape the parallelizer considers.
    CountedFor {
        /// Induction variable slot.
        var: LocalId,
        /// Start value.
        start: Expr,
        /// Exclusive bound.
        bound: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// Expression statement (a call).
    Expr(Expr),
    /// A critical region on `lock_obj`'s implicit lock. Inserted by the
    /// parallelizing compiler, never by the front end.
    Critical {
        /// Expression yielding the object whose lock protects the region.
        lock_obj: Expr,
        /// Protected statements.
        body: Vec<Stmt>,
        /// Names of the source-level default regions this region descends
        /// from (`"{function}#{k}"`, assigned at lock placement).
        /// Coalescing transformations concatenate constituents, so a
        /// merged/hoisted/lifted region keeps its full provenance.
        regions: Vec<String>,
    },
}

/// An expression together with its type.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression.
    pub kind: ExprKind,
    /// Its type.
    pub ty: Ty,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `this` (methods only).
    This,
    /// A local slot.
    Local(LocalId),
    /// A global.
    Global(GlobalId),
    /// Field read.
    FieldGet {
        /// Object expression.
        obj: Box<Expr>,
        /// The object's class.
        class: ClassId,
        /// Field index.
        field: usize,
    },
    /// Array element read.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
    },
    /// Array length (`a.length`).
    ArrayLen(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Implicit `int → double` widening.
    IntToDouble(Box<Expr>),
    /// Free function call.
    CallFn {
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call.
    CallMethod {
        /// Receiver.
        obj: Box<Expr>,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Extern (host) call.
    CallExtern {
        /// Callee.
        ext: ExternId,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Object allocation.
    New {
        /// Class.
        class: ClassId,
    },
    /// Array allocation.
    NewArray {
        /// Element type.
        elem: Ty,
        /// Length.
        len: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for an integer literal expression.
    #[must_use]
    pub fn int(v: i64) -> Expr {
        Expr { kind: ExprKind::Int(v), ty: Ty::Int }
    }

    /// Shorthand for a local-slot read.
    #[must_use]
    pub fn local(id: LocalId, ty: Ty) -> Expr {
        Expr { kind: ExprKind::Local(id), ty }
    }

    /// Shorthand for `this`.
    #[must_use]
    pub fn this(class: ClassId) -> Expr {
        Expr { kind: ExprKind::This, ty: Ty::Object(class) }
    }
}

/// Count the HIR nodes of a function body — the code-size metric used for
/// the Table 1 reproduction (a node is roughly an emitted instruction).
#[must_use]
pub fn body_size(stmts: &[Stmt]) -> usize {
    stmts.iter().map(stmt_size).sum()
}

fn stmt_size(s: &Stmt) -> usize {
    match s {
        Stmt::Assign { place, value } => 1 + place_size(place) + expr_size(value),
        Stmt::If { cond, then_branch, else_branch } => {
            1 + expr_size(cond) + body_size(then_branch) + body_size(else_branch)
        }
        Stmt::While { cond, body } => 1 + expr_size(cond) + body_size(body),
        Stmt::CountedFor { start, bound, body, .. } => {
            2 + expr_size(start) + expr_size(bound) + body_size(body)
        }
        Stmt::Return(e) => 1 + e.as_ref().map_or(0, expr_size),
        Stmt::Expr(e) => expr_size(e),
        Stmt::Critical { lock_obj, body, .. } => 2 + expr_size(lock_obj) + body_size(body),
    }
}

fn place_size(p: &Place) -> usize {
    match p {
        Place::Local(_) | Place::Global(_) => 1,
        Place::Field { obj, .. } => 1 + expr_size(obj),
        Place::Index { arr, idx } => 1 + expr_size(arr) + expr_size(idx),
    }
}

fn expr_size(e: &Expr) -> usize {
    match &e.kind {
        ExprKind::Int(_)
        | ExprKind::Double(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Local(_)
        | ExprKind::Global(_)
        | ExprKind::New { .. } => 1,
        ExprKind::FieldGet { obj, .. } => 1 + expr_size(obj),
        ExprKind::Index { arr, idx } => 1 + expr_size(arr) + expr_size(idx),
        ExprKind::ArrayLen(a) => 1 + expr_size(a),
        ExprKind::Binary { lhs, rhs, .. } => 1 + expr_size(lhs) + expr_size(rhs),
        ExprKind::Unary { expr, .. } | ExprKind::IntToDouble(expr) => 1 + expr_size(expr),
        ExprKind::CallFn { args, .. } => 1 + args.iter().map(expr_size).sum::<usize>(),
        ExprKind::CallMethod { obj, args, .. } => {
            1 + expr_size(obj) + args.iter().map(expr_size).sum::<usize>()
        }
        ExprKind::CallExtern { args, .. } => 1 + args.iter().map(expr_size).sum::<usize>(),
        ExprKind::NewArray { len, .. } => 1 + expr_size(len),
    }
}
