//! The abstract syntax tree produced by the parser.
//!
//! The surface language is a small, C++-flavoured object-based language —
//! the same shape as the programs the paper's compiler consumes (compare
//! Figure 1 of the paper):
//!
//! ```text
//! extern double interact(double, double);
//!
//! class body {
//!     double pos;
//!     double sum;
//!
//!     void one_interaction(body b) {
//!         double val = interact(this.pos, b.pos);
//!         this.sum += val;
//!     }
//!
//!     void interactions(body[] bodies, int n) {
//!         for (int i = 0; i < n; i++) {
//!             this.one_interaction(bodies[i]);
//!         }
//!     }
//! }
//! ```
//!
//! Both `.` and `->` are accepted for member access, and `&expr` is allowed
//! and ignored (all object values are references).

use crate::token::Span;

/// A complete source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Host-implemented functions.
    pub externs: Vec<ExternDecl>,
    /// Class declarations.
    pub classes: Vec<ClassDecl>,
    /// Global variables.
    pub globals: Vec<GlobalDecl>,
    /// Free functions.
    pub functions: Vec<FuncDecl>,
}

/// `extern double interact(double, double);`
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Function name.
    pub name: String,
    /// Parameter types (names optional in the source, dropped).
    pub params: Vec<TypeExpr>,
    /// Return type.
    pub ret: TypeExpr,
    /// Source position.
    pub span: Span,
}

/// A class: fields plus methods. Every object implicitly carries a mutual
/// exclusion lock (the paper's compiler augments each object with one).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Methods.
    pub methods: Vec<FuncDecl>,
    /// Source position.
    pub span: Span,
}

/// One field of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Source position.
    pub span: Span,
}

/// A global variable declaration, e.g. `body[] bodies;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: TypeExpr,
    /// Source position.
    pub span: Span,
}

/// A function or method.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Return type.
    pub ret: TypeExpr,
    /// Body.
    pub body: Block,
    /// Source position.
    pub span: Span,
}

/// A parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
    /// Source position.
    pub span: Span,
}

/// A syntactic type.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `double`
    Double,
    /// `bool`
    Bool,
    /// `void`
    Void,
    /// A class reference (`body`, `body*` — the `*` is accepted and
    /// ignored: object values are always references).
    Named(String),
    /// `T[]` — a heap array.
    Array(Box<TypeExpr>),
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Source position.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `double x = e;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `lhs = rhs;` or `lhs op= rhs;`
    Assign {
        /// Assignment target (must be an l-value).
        target: Expr,
        /// `Some(op)` for compound assignment (`+=` etc.).
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) s else s`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Else branch.
        else_branch: Option<Block>,
    },
    /// `while (c) s`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for (init; cond; step) s`
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Loop step.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Block,
    },
    /// `return e;`
    Return(Option<Expr>),
    /// An expression evaluated for its effects (a call).
    Expr(Expr),
    /// A nested block.
    Block(Block),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// Source position.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// `this`
    This,
    /// A variable reference (local, parameter, or global).
    Var(String),
    /// `obj.field` / `obj->field`
    Field {
        /// Object expression.
        object: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// `arr[i]`
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `obj.m(args)` — a method call.
    MethodCall {
        /// Receiver.
        object: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `f(args)` — a free function or extern call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C()` — allocate an object (fields zero/null initialized).
    New {
        /// Class name.
        class: String,
    },
    /// `new T[n]` — allocate an array.
    NewArray {
        /// Element type.
        elem: TypeExpr,
        /// Length.
        len: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for `+` and `*` — the associative-commutative operators the
    /// commutativity analysis recognizes in update expressions.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul)
    }

    /// True for comparison operators.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}
