//! Recursive-descent parser: tokens → [`Program`].

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Kw, Punct, Span, Tok, Token};

/// Parse a complete source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(LangError::parse(self.span(), format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if *self.peek() == Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                Err(LangError::parse(self.span(), format!("expected identifier, found {other}")))
            }
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(program),
                Tok::Kw(Kw::Extern) => program.externs.push(self.extern_decl()?),
                Tok::Kw(Kw::Class) => program.classes.push(self.class_decl()?),
                _ => {
                    // `type ident (` → function; `type ident ;` → global.
                    let span = self.span();
                    let ty = self.type_expr()?;
                    let name = self.ident()?;
                    if *self.peek() == Tok::Punct(Punct::LParen) {
                        program.functions.push(self.func_rest(name, ty, span)?);
                    } else {
                        self.expect_punct(Punct::Semi)?;
                        program.globals.push(GlobalDecl { name, ty, span });
                    }
                }
            }
        }
    }

    fn extern_decl(&mut self) -> Result<ExternDecl, LangError> {
        let span = self.span();
        self.bump(); // extern
        let ret = self.type_expr()?;
        let name = self.ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let ty = self.type_expr()?;
                // Parameter names are optional in extern declarations.
                if matches!(self.peek(), Tok::Ident(_)) {
                    self.bump();
                }
                params.push(ty);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;
        Ok(ExternDecl { name, params, ret, span })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, LangError> {
        let span = self.span();
        self.bump(); // class
        let name = self.ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let mspan = self.span();
            let ty = self.type_expr()?;
            let mname = self.ident()?;
            if *self.peek() == Tok::Punct(Punct::LParen) {
                methods.push(self.func_rest(mname, ty, mspan)?);
            } else {
                fields.push(FieldDecl { name: mname, ty: ty.clone(), span: mspan });
                while self.eat_punct(Punct::Comma) {
                    let fname = self.ident()?;
                    fields.push(FieldDecl { name: fname, ty: ty.clone(), span: mspan });
                }
                self.expect_punct(Punct::Semi)?;
            }
        }
        // Optional trailing `;` after the class body, C++ style.
        self.eat_punct(Punct::Semi);
        Ok(ClassDecl { name, fields, methods, span })
    }

    fn func_rest(
        &mut self,
        name: String,
        ret: TypeExpr,
        span: Span,
    ) -> Result<FuncDecl, LangError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let pspan = self.span();
                let ty = self.type_expr()?;
                let pname = self.ident()?;
                params.push(ParamDecl { name: pname, ty, span: pspan });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        let body = self.block()?;
        Ok(FuncDecl { name, params, ret, body, span })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        let base = match self.peek().clone() {
            Tok::Kw(Kw::Int) => {
                self.bump();
                TypeExpr::Int
            }
            Tok::Kw(Kw::Double) => {
                self.bump();
                TypeExpr::Double
            }
            Tok::Kw(Kw::Bool) => {
                self.bump();
                TypeExpr::Bool
            }
            Tok::Kw(Kw::Void) => {
                self.bump();
                TypeExpr::Void
            }
            Tok::Ident(name) => {
                self.bump();
                TypeExpr::Named(name)
            }
            other => {
                return Err(LangError::parse(self.span(), format!("expected type, found {other}")))
            }
        };
        let mut ty = base;
        loop {
            if self.eat_punct(Punct::Star) {
                // `body*` — pointers are reference semantics anyway.
                continue;
            }
            if *self.peek() == Tok::Punct(Punct::LBracket)
                && *self.peek_at(1) == Tok::Punct(Punct::RBracket)
            {
                self.bump();
                self.bump();
                ty = TypeExpr::Array(Box::new(ty));
                continue;
            }
            break;
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    /// A statement used as a branch body: either a block or a single
    /// statement wrapped in one.
    fn branch(&mut self) -> Result<Block, LangError> {
        if *self.peek() == Tok::Punct(Punct::LBrace) {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Punct(Punct::LBrace) => {
                let b = self.block()?;
                Ok(Stmt { kind: StmtKind::Block(b), span })
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_branch = self.branch()?;
                let else_branch = if self.eat_kw(Kw::Else) { Some(self.branch()?) } else { None };
                Ok(Stmt { kind: StmtKind::If { cond, then_branch, else_branch }, span })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.branch()?;
                Ok(Stmt { kind: StmtKind::While { cond, body }, span })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::Semi)?;
                let cond =
                    if *self.peek() == Tok::Punct(Punct::Semi) { None } else { Some(self.expr()?) };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.branch()?;
                Ok(Stmt { kind: StmtKind::For { init, cond, step, body }, span })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value =
                    if *self.peek() == Tok::Punct(Punct::Semi) { None } else { Some(self.expr()?) };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { kind: StmtKind::Return(value), span })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// True if the upcoming tokens start a variable declaration.
    fn at_var_decl(&self) -> bool {
        match self.peek() {
            Tok::Kw(Kw::Int | Kw::Double | Kw::Bool) => true,
            Tok::Ident(_) => match self.peek_at(1) {
                // `body b ...`
                Tok::Ident(_) => true,
                // `body* b ...`
                Tok::Punct(Punct::Star) => matches!(self.peek_at(2), Tok::Ident(_)),
                // `body[] b ...` (vs indexing `arr[i]`)
                Tok::Punct(Punct::LBracket) => *self.peek_at(2) == Tok::Punct(Punct::RBracket),
                _ => false,
            },
            _ => false,
        }
    }

    /// A declaration, assignment, increment, or expression — without the
    /// trailing semicolon (shared by plain statements and `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        if self.at_var_decl() {
            let ty = self.type_expr()?;
            let name = self.ident()?;
            let init = if self.eat_punct(Punct::Assign) { Some(self.expr()?) } else { None };
            return Ok(Stmt { kind: StmtKind::VarDecl { name, ty, init }, span });
        }
        let target = self.expr()?;
        let one = Expr { kind: ExprKind::Int(1), span };
        let kind = match self.peek() {
            Tok::Punct(Punct::Assign) => {
                self.bump();
                StmtKind::Assign { target, op: None, value: self.expr()? }
            }
            Tok::Punct(Punct::PlusAssign) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Add), value: self.expr()? }
            }
            Tok::Punct(Punct::MinusAssign) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Sub), value: self.expr()? }
            }
            Tok::Punct(Punct::StarAssign) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Mul), value: self.expr()? }
            }
            Tok::Punct(Punct::SlashAssign) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Div), value: self.expr()? }
            }
            Tok::Punct(Punct::PlusPlus) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Add), value: one }
            }
            Tok::Punct(Punct::MinusMinus) => {
                self.bump();
                StmtKind::Assign { target, op: Some(BinOp::Sub), value: one }
            }
            _ => StmtKind::Expr(target),
        };
        Ok(Stmt { kind, span })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct(Punct::OrOr) => (BinOp::Or, 1),
                Tok::Punct(Punct::AndAnd) => (BinOp::And, 2),
                Tok::Punct(Punct::Eq) => (BinOp::Eq, 3),
                Tok::Punct(Punct::Ne) => (BinOp::Ne, 3),
                Tok::Punct(Punct::Lt) => (BinOp::Lt, 4),
                Tok::Punct(Punct::Le) => (BinOp::Le, 4),
                Tok::Punct(Punct::Gt) => (BinOp::Gt, 4),
                Tok::Punct(Punct::Ge) => (BinOp::Ge, 4),
                Tok::Punct(Punct::Plus) => (BinOp::Add, 5),
                Tok::Punct(Punct::Minus) => (BinOp::Sub, 5),
                Tok::Punct(Punct::Star) => (BinOp::Mul, 6),
                Tok::Punct(Punct::Slash) => (BinOp::Div, 6),
                Tok::Punct(Punct::Percent) => (BinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek() {
            Tok::Punct(Punct::Minus) => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary { op: UnOp::Neg, expr: Box::new(inner) }, span })
            }
            Tok::Punct(Punct::Not) => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary { op: UnOp::Not, expr: Box::new(inner) }, span })
            }
            Tok::Punct(Punct::Amp) => {
                // `&b[i]` — address-of is a no-op (reference semantics).
                self.bump();
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary()?;
        loop {
            let span = self.span();
            if self.eat_punct(Punct::Dot) || self.eat_punct(Punct::Arrow) {
                let name = self.ident()?;
                if *self.peek() == Tok::Punct(Punct::LParen) {
                    let args = self.args()?;
                    expr = Expr {
                        kind: ExprKind::MethodCall { object: Box::new(expr), method: name, args },
                        span,
                    };
                } else {
                    expr = Expr {
                        kind: ExprKind::Field { object: Box::new(expr), field: name },
                        span,
                    };
                }
            } else if self.eat_punct(Punct::LBracket) {
                let index = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                expr = Expr {
                    kind: ExprKind::Index { array: Box::new(expr), index: Box::new(index) },
                    span,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                ExprKind::Int(v)
            }
            Tok::Double(v) => {
                self.bump();
                ExprKind::Double(v)
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                ExprKind::Bool(true)
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                ExprKind::Bool(false)
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                ExprKind::Null
            }
            Tok::Kw(Kw::This) => {
                self.bump();
                ExprKind::This
            }
            Tok::Kw(Kw::New) => {
                self.bump();
                let ty = self.type_expr()?;
                if self.eat_punct(Punct::LBracket) {
                    let len = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    ExprKind::NewArray { elem: ty, len: Box::new(len) }
                } else {
                    // `new C()` or `new C`.
                    if *self.peek() == Tok::Punct(Punct::LParen) {
                        self.bump();
                        self.expect_punct(Punct::RParen)?;
                    }
                    match ty {
                        TypeExpr::Named(class) => ExprKind::New { class },
                        other => {
                            return Err(LangError::parse(
                                span,
                                format!("`new` requires a class type, found {other:?}"),
                            ))
                        }
                    }
                }
            }
            Tok::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(inner);
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::Punct(Punct::LParen) {
                    let args = self.args()?;
                    ExprKind::Call { name, args }
                } else {
                    ExprKind::Var(name)
                }
            }
            other => {
                return Err(LangError::parse(span, format!("expected expression, found {other}")))
            }
        };
        Ok(Expr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure_1() {
        let src = r#"
            extern double interact(double, double);
            class body {
                double pos;
                double sum;
                void one_interaction(body* b) {
                    double val = interact(this->pos, b->pos);
                    this->sum += val;
                }
                void interactions(body[] b, int n) {
                    for (int i = 0; i < n; i++) {
                        this->one_interaction(&b[i]);
                    }
                }
            };
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.externs.len(), 1);
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[1].name, "interactions");
    }

    #[test]
    fn parses_globals_and_functions() {
        let src = "body[] bodies; int n; void main() { n = 4; }";
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parses_comma_separated_fields() {
        let p = parse("class v { double x, y, z; }").unwrap();
        assert_eq!(p.classes[0].fields.len(), 3);
        assert!(p.classes[0].fields.iter().all(|f| f.ty == TypeExpr::Double));
    }

    #[test]
    fn distinguishes_decl_from_index_assignment() {
        let src = "void f(double[] a) { double[] b = a; a[0] = 1.0; }";
        let p = parse(src).unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body.stmts[0].kind, StmtKind::VarDecl { .. }));
        assert!(matches!(body.stmts[1].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn parses_new_expressions() {
        let src = "class c { int x; } void f() { c obj = new c(); double[] a = new double[10]; }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.stmts.len(), 2);
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("void f() { int x = 1 + 2 * 3; }").unwrap();
        let StmtKind::VarDecl { init: Some(e), .. } = &p.functions[0].body.stmts[0].kind else {
            panic!("expected decl");
        };
        let ExprKind::Binary { op: BinOp::Add, rhs, .. } = &e.kind else {
            panic!("expected + at top, got {:?}", e.kind);
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_if_else_and_while() {
        let src = "void f(int n) { if (n > 0) { n = 1; } else n = 2; while (n < 10) n++; }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.stmts.len(), 2);
    }

    #[test]
    fn increment_is_compound_assign_sugar() {
        let p = parse("void f(int i) { i++; }").unwrap();
        let StmtKind::Assign { op: Some(BinOp::Add), value, .. } =
            &p.functions[0].body.stmts[0].kind
        else {
            panic!("expected assign");
        };
        assert!(matches!(value.kind, ExprKind::Int(1)));
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = parse("void f() { int = 3; }").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("expected identifier"));
    }

    #[test]
    fn method_call_chains() {
        let p = parse("void f(body b) { b.child().compute(1, 2); }").unwrap();
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[0].kind else { panic!() };
        assert!(matches!(e.kind, ExprKind::MethodCall { ref method, .. } if method == "compute"));
    }
}
