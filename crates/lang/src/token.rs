//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Double(v) => write!(f, "double `{v}`"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Reserved words.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub enum Kw { $($variant),* }

        impl Kw {
            /// Look up a keyword by its spelling.
            #[must_use]
            pub fn lookup(s: &str) -> Option<Kw> {
                match s {
                    $($text => Some(Kw::$variant),)*
                    _ => None,
                }
            }

            /// The keyword's spelling.
            #[must_use]
            pub fn text(self) -> &'static str {
                match self {
                    $(Kw::$variant => $text),*
                }
            }
        }

        impl fmt::Display for Kw {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.text())
            }
        }
    };
}

keywords! {
    Class => "class",
    Extern => "extern",
    Int => "int",
    Double => "double",
    Bool => "bool",
    Void => "void",
    If => "if",
    Else => "else",
    While => "while",
    For => "for",
    Return => "return",
    New => "new",
    Null => "null",
    This => "this",
    True => "true",
    False => "false",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Operators and punctuation.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub enum Punct { $($variant),* }

        impl Punct {
            /// The punctuation's spelling.
            #[must_use]
            pub fn text(self) -> &'static str {
                match self {
                    $(Punct::$variant => $text),*
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.text())
            }
        }
    };
}

puncts! {
    LParen => "(",
    RParen => ")",
    LBrace => "{",
    RBrace => "}",
    LBracket => "[",
    RBracket => "]",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    Arrow => "->",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    Assign => "=",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    PlusPlus => "++",
    MinusMinus => "--",
    Eq => "==",
    Ne => "!=",
    Lt => "<",
    Le => "<=",
    Gt => ">",
    Ge => ">=",
    AndAnd => "&&",
    OrOr => "||",
    Not => "!",
    Amp => "&",
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it begins.
    pub span: Span,
}
