//! Semantic analysis: AST → typed [`Hir`].
//!
//! Resolves names, checks types (with implicit `int → double` widening),
//! flattens lexical scopes into per-function local slot tables, desugars
//! compound assignment and `++`/`--`, and recognizes canonical counted
//! loops (`for (int i = s; i < b; i++)`) structurally.

use crate::ast;
use crate::error::LangError;
use crate::hir::*;
use crate::token::Span;
use std::collections::HashMap;

/// Analyze a parsed program.
///
/// # Errors
///
/// Returns the first semantic error (unknown names, type mismatches,
/// duplicate definitions, misuse of `this`, ...).
pub fn analyze(program: &ast::Program) -> Result<Hir, LangError> {
    let mut sema = Sema::default();
    sema.collect(program)?;
    sema.lower_bodies(program)?;
    Ok(sema.hir)
}

/// Convenience: parse and analyze in one step.
///
/// # Errors
///
/// Returns the first front-end error of any stage.
pub fn compile_source(source: &str) -> Result<Hir, LangError> {
    let ast = crate::parser::parse(source)?;
    analyze(&ast)
}

#[derive(Default)]
struct Sema {
    hir: Hir,
    class_ids: HashMap<String, ClassId>,
    global_ids: HashMap<String, GlobalId>,
    extern_ids: HashMap<String, ExternId>,
    free_fn_ids: HashMap<String, FuncId>,
    method_ids: HashMap<(ClassId, String), FuncId>,
    /// AST source for each function body, in `hir.functions` order.
    bodies: Vec<(Option<ClassId>, ast::Block)>,
}

impl Sema {
    fn resolve_ty(&self, ty: &ast::TypeExpr, span: Span) -> Result<Ty, LangError> {
        Ok(match ty {
            ast::TypeExpr::Int => Ty::Int,
            ast::TypeExpr::Double => Ty::Double,
            ast::TypeExpr::Bool => Ty::Bool,
            ast::TypeExpr::Void => Ty::Void,
            ast::TypeExpr::Named(name) => {
                let id = self
                    .class_ids
                    .get(name)
                    .ok_or_else(|| LangError::sema(span, format!("unknown class `{name}`")))?;
                Ty::Object(*id)
            }
            ast::TypeExpr::Array(inner) => Ty::Array(Box::new(self.resolve_ty(inner, span)?)),
        })
    }

    fn collect(&mut self, program: &ast::Program) -> Result<(), LangError> {
        // Classes first (so field/param types can refer to any class).
        for c in &program.classes {
            if self.class_ids.contains_key(&c.name) {
                return Err(LangError::sema(c.span, format!("duplicate class `{}`", c.name)));
            }
            let id = ClassId(self.hir.classes.len());
            self.class_ids.insert(c.name.clone(), id);
            self.hir.classes.push(Class { name: c.name.clone(), fields: Vec::new() });
        }
        for c in &program.classes {
            let id = self.class_ids[&c.name];
            let mut fields = Vec::new();
            for f in &c.fields {
                if fields.iter().any(|x: &Field| x.name == f.name) {
                    return Err(LangError::sema(f.span, format!("duplicate field `{}`", f.name)));
                }
                let ty = self.resolve_ty(&f.ty, f.span)?;
                if ty == Ty::Void {
                    return Err(LangError::sema(f.span, "field cannot have type void"));
                }
                fields.push(Field { name: f.name.clone(), ty });
            }
            self.hir.classes[id.0].fields = fields;
        }
        for e in &program.externs {
            if self.extern_ids.contains_key(&e.name) {
                return Err(LangError::sema(e.span, format!("duplicate extern `{}`", e.name)));
            }
            let params = e
                .params
                .iter()
                .map(|t| self.resolve_ty(t, e.span))
                .collect::<Result<Vec<_>, _>>()?;
            let ret = self.resolve_ty(&e.ret, e.span)?;
            let id = ExternId(self.hir.externs.len());
            self.extern_ids.insert(e.name.clone(), id);
            self.hir.externs.push(Extern { name: e.name.clone(), params, ret });
        }
        for g in &program.globals {
            if self.global_ids.contains_key(&g.name) {
                return Err(LangError::sema(g.span, format!("duplicate global `{}`", g.name)));
            }
            let ty = self.resolve_ty(&g.ty, g.span)?;
            if ty == Ty::Void {
                return Err(LangError::sema(g.span, "global cannot have type void"));
            }
            let id = GlobalId(self.hir.globals.len());
            self.global_ids.insert(g.name.clone(), id);
            self.hir.globals.push(Global { name: g.name.clone(), ty });
        }
        // Function and method signatures.
        for f in &program.functions {
            self.collect_function(f, None)?;
        }
        for c in &program.classes {
            let cid = self.class_ids[&c.name];
            for m in &c.methods {
                self.collect_function(m, Some(cid))?;
            }
        }
        Ok(())
    }

    fn collect_function(
        &mut self,
        f: &ast::FuncDecl,
        class: Option<ClassId>,
    ) -> Result<(), LangError> {
        let id = FuncId(self.hir.functions.len());
        match class {
            None => {
                if self.free_fn_ids.contains_key(&f.name) {
                    return Err(LangError::sema(
                        f.span,
                        format!("duplicate function `{}`", f.name),
                    ));
                }
                self.free_fn_ids.insert(f.name.clone(), id);
            }
            Some(c) => {
                let key = (c, f.name.clone());
                if self.method_ids.contains_key(&key) {
                    return Err(LangError::sema(f.span, format!("duplicate method `{}`", f.name)));
                }
                self.method_ids.insert(key, id);
            }
        }
        let mut locals = Vec::new();
        for p in &f.params {
            let ty = self.resolve_ty(&p.ty, p.span)?;
            if ty == Ty::Void {
                return Err(LangError::sema(p.span, "parameter cannot have type void"));
            }
            locals.push(Local { name: p.name.clone(), ty });
        }
        let ret = self.resolve_ty(&f.ret, f.span)?;
        self.hir.functions.push(Function {
            name: f.name.clone(),
            class,
            num_params: f.params.len(),
            locals,
            ret,
            body: Vec::new(),
        });
        self.bodies.push((class, f.body.clone()));
        Ok(())
    }

    fn lower_bodies(&mut self, _program: &ast::Program) -> Result<(), LangError> {
        let bodies = std::mem::take(&mut self.bodies);
        for (idx, (class, body)) in bodies.into_iter().enumerate() {
            let func = FuncId(idx);
            let mut ctx = FuncCtx { sema: self, func, class, scopes: vec![HashMap::new()] };
            // Parameters are the outermost scope.
            for (i, l) in ctx.sema.hir.functions[func.0].locals.iter().enumerate() {
                ctx.scopes[0].insert(l.name.clone(), LocalId(i));
            }
            let mut out = Vec::new();
            ctx.lower_block(&body, &mut out)?;
            self.hir.functions[func.0].body = out;
        }
        Ok(())
    }
}

struct FuncCtx<'a> {
    sema: &'a mut Sema,
    func: FuncId,
    class: Option<ClassId>,
    scopes: Vec<HashMap<String, LocalId>>,
}

impl<'a> FuncCtx<'a> {
    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Ty) -> LocalId {
        let f = &mut self.sema.hir.functions[self.func.0];
        let id = LocalId(f.locals.len());
        f.locals.push(Local { name: name.to_string(), ty });
        self.scopes.last_mut().expect("scope").insert(name.to_string(), id);
        id
    }

    fn local_ty(&self, id: LocalId) -> Ty {
        self.sema.hir.functions[self.func.0].locals[id.0].ty.clone()
    }

    fn lower_block(&mut self, block: &ast::Block, out: &mut Vec<Stmt>) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in &block.stmts {
            self.lower_stmt(s, out)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &ast::Stmt, out: &mut Vec<Stmt>) -> Result<(), LangError> {
        let span = stmt.span;
        match &stmt.kind {
            ast::StmtKind::VarDecl { name, ty, init } => {
                let ty = self.sema.resolve_ty(ty, span)?;
                if ty == Ty::Void {
                    return Err(LangError::sema(span, "variable cannot have type void"));
                }
                let init = match init {
                    Some(e) => Some(self.lower_coerce(e, &ty, span)?),
                    None => None,
                };
                let id = self.declare(name, ty);
                if let Some(value) = init {
                    out.push(Stmt::Assign { place: Place::Local(id), value });
                }
                Ok(())
            }
            ast::StmtKind::Assign { target, op, value } => {
                let (place, pty) = self.lower_place(target)?;
                let rhs = self.lower_expr_owned(value)?;
                let value = match op {
                    None => self.coerce(rhs, &pty, span)?,
                    Some(op) => {
                        // Desugar `p op= v` into `p = p op v`, keeping the
                        // textbook update-expression shape the commutativity
                        // analysis looks for.
                        let read = self.place_to_expr(&place, &pty);
                        let combined = self.binary(*op, read, rhs, span)?;
                        self.coerce(combined, &pty, span)?
                    }
                };
                out.push(Stmt::Assign { place, value });
                Ok(())
            }
            ast::StmtKind::If { cond, then_branch, else_branch } => {
                let cond = self.lower_expr_owned(cond)?;
                if cond.ty != Ty::Bool {
                    return Err(LangError::sema(span, "if condition must be bool"));
                }
                let mut t = Vec::new();
                self.lower_block(then_branch, &mut t)?;
                let mut e = Vec::new();
                if let Some(b) = else_branch {
                    self.lower_block(b, &mut e)?;
                }
                out.push(Stmt::If { cond, then_branch: t, else_branch: e });
                Ok(())
            }
            ast::StmtKind::While { cond, body } => {
                let cond = self.lower_expr_owned(cond)?;
                if cond.ty != Ty::Bool {
                    return Err(LangError::sema(span, "while condition must be bool"));
                }
                let mut b = Vec::new();
                self.lower_block(body, &mut b)?;
                out.push(Stmt::While { cond, body: b });
                Ok(())
            }
            ast::StmtKind::For { init, cond, step, body } => {
                self.lower_for(span, init.as_deref(), cond.as_ref(), step.as_deref(), body, out)
            }
            ast::StmtKind::Return(value) => {
                let ret_ty = self.sema.hir.functions[self.func.0].ret.clone();
                let value = match value {
                    Some(e) => {
                        if ret_ty == Ty::Void {
                            return Err(LangError::sema(span, "void function returns a value"));
                        }
                        Some(self.lower_coerce(e, &ret_ty, span)?)
                    }
                    None => {
                        if ret_ty != Ty::Void {
                            return Err(LangError::sema(
                                span,
                                "non-void function must return a value",
                            ));
                        }
                        None
                    }
                };
                out.push(Stmt::Return(value));
                Ok(())
            }
            ast::StmtKind::Expr(e) => {
                let e = self.lower_expr_owned(e)?;
                out.push(Stmt::Expr(e));
                Ok(())
            }
            ast::StmtKind::Block(b) => self.lower_block(b, out),
        }
    }

    /// Recognize the canonical counted loop or desugar to `while`.
    fn lower_for(
        &mut self,
        span: Span,
        init: Option<&ast::Stmt>,
        cond: Option<&ast::Expr>,
        step: Option<&ast::Stmt>,
        body: &ast::Block,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LangError> {
        // Canonical: for (int i = start; i < bound; i++)
        let canonical = (|| -> Option<(&str, &ast::Expr, &ast::Expr)> {
            let ast::StmtKind::VarDecl { name, ty: ast::TypeExpr::Int, init: Some(start) } =
                &init?.kind
            else {
                return None;
            };
            let ast::ExprKind::Binary { op: ast::BinOp::Lt, lhs, rhs } = &cond?.kind else {
                return None;
            };
            let ast::ExprKind::Var(cv) = &lhs.kind else {
                return None;
            };
            if cv != name {
                return None;
            }
            let ast::StmtKind::Assign { target, op: Some(ast::BinOp::Add), value } = &step?.kind
            else {
                return None;
            };
            let ast::ExprKind::Var(sv) = &target.kind else {
                return None;
            };
            let ast::ExprKind::Int(1) = value.kind else {
                return None;
            };
            if sv != name {
                return None;
            }
            Some((name, start, rhs))
        })();

        if let Some((name, start, bound)) = canonical {
            let start = self.lower_coerce(start, &Ty::Int, span)?;
            self.scopes.push(HashMap::new());
            let var = self.declare(name, Ty::Int);
            let bound = self.lower_coerce(bound, &Ty::Int, span)?;
            let mut b = Vec::new();
            self.lower_block(body, &mut b)?;
            self.scopes.pop();
            out.push(Stmt::CountedFor { var, start, bound, body: b });
            return Ok(());
        }

        // General form: { init; while (cond) { body; step; } }
        self.scopes.push(HashMap::new());
        if let Some(i) = init {
            self.lower_stmt(i, out)?;
        }
        let cond = match cond {
            Some(c) => {
                let c = self.lower_expr_owned(c)?;
                if c.ty != Ty::Bool {
                    return Err(LangError::sema(span, "for condition must be bool"));
                }
                c
            }
            None => Expr { kind: ExprKind::Bool(true), ty: Ty::Bool },
        };
        let mut b = Vec::new();
        self.lower_block(body, &mut b)?;
        if let Some(s) = step {
            self.lower_stmt(s, &mut b)?;
        }
        self.scopes.pop();
        out.push(Stmt::While { cond, body: b });
        Ok(())
    }

    fn place_to_expr(&self, place: &Place, ty: &Ty) -> Expr {
        let kind = match place {
            Place::Local(id) => ExprKind::Local(*id),
            Place::Global(id) => ExprKind::Global(*id),
            Place::Field { obj, class, field } => {
                ExprKind::FieldGet { obj: obj.clone(), class: *class, field: *field }
            }
            Place::Index { arr, idx } => ExprKind::Index { arr: arr.clone(), idx: idx.clone() },
        };
        Expr { kind, ty: ty.clone() }
    }

    fn lower_place(&mut self, e: &ast::Expr) -> Result<(Place, Ty), LangError> {
        let span = e.span;
        match &e.kind {
            ast::ExprKind::Var(name) => {
                if let Some(id) = self.lookup(name) {
                    let ty = self.local_ty(id);
                    Ok((Place::Local(id), ty))
                } else if let Some(id) = self.sema.global_ids.get(name) {
                    let ty = self.sema.hir.globals[id.0].ty.clone();
                    Ok((Place::Global(*id), ty))
                } else {
                    Err(LangError::sema(span, format!("unknown variable `{name}`")))
                }
            }
            ast::ExprKind::Field { object, field } => {
                let obj = self.lower_expr_owned(object)?;
                let Ty::Object(class) = obj.ty.clone() else {
                    return Err(LangError::sema(span, "field assignment on non-object"));
                };
                let idx = self.field_index(class, field, span)?;
                let ty = self.sema.hir.classes[class.0].fields[idx].ty.clone();
                Ok((Place::Field { obj: Box::new(obj), class, field: idx }, ty))
            }
            ast::ExprKind::Index { array, index } => {
                let arr = self.lower_expr_owned(array)?;
                let Ty::Array(elem) = arr.ty.clone() else {
                    return Err(LangError::sema(span, "indexing a non-array"));
                };
                let idx = self.lower_coerce(index, &Ty::Int, span)?;
                Ok((Place::Index { arr: Box::new(arr), idx: Box::new(idx) }, *elem))
            }
            _ => Err(LangError::sema(span, "expression is not assignable")),
        }
    }

    fn field_index(&self, class: ClassId, field: &str, span: Span) -> Result<usize, LangError> {
        self.sema.hir.classes[class.0].fields.iter().position(|f| f.name == field).ok_or_else(
            || {
                LangError::sema(
                    span,
                    format!(
                        "class `{}` has no field `{field}`",
                        self.sema.hir.classes[class.0].name
                    ),
                )
            },
        )
    }

    /// Lower an AST expression and coerce it to `want` in one step.
    fn lower_coerce(&mut self, e: &ast::Expr, want: &Ty, span: Span) -> Result<Expr, LangError> {
        let lowered = self.lower_expr_owned(e)?;
        self.coerce(lowered, want, span)
    }

    fn coerce(&self, e: Expr, want: &Ty, span: Span) -> Result<Expr, LangError> {
        if &e.ty == want {
            return Ok(e);
        }
        if *want == Ty::Double && e.ty == Ty::Int {
            return Ok(Expr { kind: ExprKind::IntToDouble(Box::new(e)), ty: Ty::Double });
        }
        if want.is_reference() && e.ty == Ty::Null {
            return Ok(Expr { kind: ExprKind::Null, ty: want.clone() });
        }
        Err(LangError::sema(span, format!("expected `{want}`, found `{}`", e.ty)))
    }

    fn binary(&self, op: ast::BinOp, lhs: Expr, rhs: Expr, span: Span) -> Result<Expr, LangError> {
        use ast::BinOp::*;
        match op {
            Add | Sub | Mul | Div => {
                if !lhs.ty.is_numeric() || !rhs.ty.is_numeric() {
                    return Err(LangError::sema(span, "arithmetic on non-numeric operands"));
                }
                let (lhs, rhs, ty) = if lhs.ty == Ty::Double || rhs.ty == Ty::Double {
                    (
                        self.coerce(lhs, &Ty::Double, span)?,
                        self.coerce(rhs, &Ty::Double, span)?,
                        Ty::Double,
                    )
                } else {
                    (lhs, rhs, Ty::Int)
                };
                Ok(Expr {
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    ty,
                })
            }
            Rem => {
                if lhs.ty != Ty::Int || rhs.ty != Ty::Int {
                    return Err(LangError::sema(span, "`%` requires int operands"));
                }
                Ok(Expr {
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    ty: Ty::Int,
                })
            }
            Lt | Le | Gt | Ge => {
                if !lhs.ty.is_numeric() || !rhs.ty.is_numeric() {
                    return Err(LangError::sema(span, "comparison on non-numeric operands"));
                }
                let (lhs, rhs) = if lhs.ty == Ty::Double || rhs.ty == Ty::Double {
                    (self.coerce(lhs, &Ty::Double, span)?, self.coerce(rhs, &Ty::Double, span)?)
                } else {
                    (lhs, rhs)
                };
                Ok(Expr {
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    ty: Ty::Bool,
                })
            }
            Eq | Ne => {
                let ok = (lhs.ty.is_numeric() && rhs.ty.is_numeric())
                    || lhs.ty == rhs.ty
                    || (lhs.ty.is_reference() && rhs.ty.is_reference());
                if !ok {
                    return Err(LangError::sema(span, "incomparable operand types"));
                }
                let (lhs, rhs) = if lhs.ty == Ty::Double || rhs.ty == Ty::Double {
                    (self.coerce(lhs, &Ty::Double, span)?, self.coerce(rhs, &Ty::Double, span)?)
                } else {
                    (lhs, rhs)
                };
                Ok(Expr {
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    ty: Ty::Bool,
                })
            }
            And | Or => {
                if lhs.ty != Ty::Bool || rhs.ty != Ty::Bool {
                    return Err(LangError::sema(span, "logical operator on non-bool operands"));
                }
                Ok(Expr {
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    ty: Ty::Bool,
                })
            }
        }
    }

    fn lower_expr_owned(&mut self, e: &ast::Expr) -> Result<Expr, LangError> {
        let span = e.span;
        match &e.kind {
            ast::ExprKind::Int(v) => Ok(Expr { kind: ExprKind::Int(*v), ty: Ty::Int }),
            ast::ExprKind::Double(v) => Ok(Expr { kind: ExprKind::Double(*v), ty: Ty::Double }),
            ast::ExprKind::Bool(v) => Ok(Expr { kind: ExprKind::Bool(*v), ty: Ty::Bool }),
            ast::ExprKind::Null => Ok(Expr { kind: ExprKind::Null, ty: Ty::Null }),
            ast::ExprKind::This => {
                let class = self
                    .class
                    .ok_or_else(|| LangError::sema(span, "`this` outside of a method"))?;
                Ok(Expr::this(class))
            }
            ast::ExprKind::Var(name) => {
                if let Some(id) = self.lookup(name) {
                    let ty = self.local_ty(id);
                    Ok(Expr { kind: ExprKind::Local(id), ty })
                } else if let Some(id) = self.sema.global_ids.get(name) {
                    let ty = self.sema.hir.globals[id.0].ty.clone();
                    Ok(Expr { kind: ExprKind::Global(*id), ty })
                } else {
                    Err(LangError::sema(span, format!("unknown variable `{name}`")))
                }
            }
            ast::ExprKind::Field { object, field } => {
                let obj = self.lower_expr_owned(object)?;
                if let Ty::Array(_) = obj.ty {
                    if field == "length" {
                        return Ok(Expr { kind: ExprKind::ArrayLen(Box::new(obj)), ty: Ty::Int });
                    }
                }
                let Ty::Object(class) = obj.ty.clone() else {
                    return Err(LangError::sema(
                        span,
                        format!("field `{field}` on non-object `{}`", obj.ty),
                    ));
                };
                let idx = self.field_index(class, field, span)?;
                let ty = self.sema.hir.classes[class.0].fields[idx].ty.clone();
                Ok(Expr { kind: ExprKind::FieldGet { obj: Box::new(obj), class, field: idx }, ty })
            }
            ast::ExprKind::Index { array, index } => {
                let arr = self.lower_expr_owned(array)?;
                let Ty::Array(elem) = arr.ty.clone() else {
                    return Err(LangError::sema(span, "indexing a non-array"));
                };
                let idx = self.lower_coerce(index, &Ty::Int, span)?;
                Ok(Expr {
                    kind: ExprKind::Index { arr: Box::new(arr), idx: Box::new(idx) },
                    ty: *elem,
                })
            }
            ast::ExprKind::Binary { op, lhs, rhs } => {
                let lhs = self.lower_expr_owned(lhs)?;
                let rhs = self.lower_expr_owned(rhs)?;
                self.binary(*op, lhs, rhs, span)
            }
            ast::ExprKind::Unary { op, expr } => {
                let inner = self.lower_expr_owned(expr)?;
                match op {
                    ast::UnOp::Neg => {
                        if !inner.ty.is_numeric() {
                            return Err(LangError::sema(span, "negating a non-numeric value"));
                        }
                        let ty = inner.ty.clone();
                        Ok(Expr { kind: ExprKind::Unary { op: *op, expr: Box::new(inner) }, ty })
                    }
                    ast::UnOp::Not => {
                        if inner.ty != Ty::Bool {
                            return Err(LangError::sema(span, "`!` on non-bool value"));
                        }
                        Ok(Expr {
                            kind: ExprKind::Unary { op: *op, expr: Box::new(inner) },
                            ty: Ty::Bool,
                        })
                    }
                }
            }
            ast::ExprKind::MethodCall { object, method, args } => {
                let obj = self.lower_expr_owned(object)?;
                let Ty::Object(class) = obj.ty.clone() else {
                    return Err(LangError::sema(span, "method call on non-object"));
                };
                let func = self.sema.method_ids.get(&(class, method.clone())).copied().ok_or_else(
                    || {
                        LangError::sema(
                            span,
                            format!(
                                "class `{}` has no method `{method}`",
                                self.sema.hir.classes[class.0].name
                            ),
                        )
                    },
                )?;
                let args = self.check_args(func, args, span)?;
                let ret = self.sema.hir.functions[func.0].ret.clone();
                Ok(Expr { kind: ExprKind::CallMethod { obj: Box::new(obj), func, args }, ty: ret })
            }
            ast::ExprKind::Call { name, args } => {
                if let Some(func) = self.sema.free_fn_ids.get(name).copied() {
                    let args = self.check_args(func, args, span)?;
                    let ret = self.sema.hir.functions[func.0].ret.clone();
                    Ok(Expr { kind: ExprKind::CallFn { func, args }, ty: ret })
                } else if let Some(ext) = self.sema.extern_ids.get(name).copied() {
                    let sig = self.sema.hir.externs[ext.0].clone();
                    if sig.params.len() != args.len() {
                        return Err(LangError::sema(
                            span,
                            format!(
                                "extern `{name}` expects {} arguments, got {}",
                                sig.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    let mut lowered = Vec::new();
                    for (a, want) in args.iter().zip(&sig.params) {
                        lowered.push(self.lower_coerce(a, want, span)?);
                    }
                    Ok(Expr { kind: ExprKind::CallExtern { ext, args: lowered }, ty: sig.ret })
                } else {
                    Err(LangError::sema(span, format!("unknown function `{name}`")))
                }
            }
            ast::ExprKind::New { class } => {
                let id = self
                    .sema
                    .class_ids
                    .get(class)
                    .copied()
                    .ok_or_else(|| LangError::sema(span, format!("unknown class `{class}`")))?;
                Ok(Expr { kind: ExprKind::New { class: id }, ty: Ty::Object(id) })
            }
            ast::ExprKind::NewArray { elem, len } => {
                let elem = self.sema.resolve_ty(elem, span)?;
                if elem == Ty::Void {
                    return Err(LangError::sema(span, "array of void"));
                }
                let len = self.lower_coerce(len, &Ty::Int, span)?;
                Ok(Expr {
                    kind: ExprKind::NewArray { elem: elem.clone(), len: Box::new(len) },
                    ty: Ty::Array(Box::new(elem)),
                })
            }
        }
    }

    fn check_args(
        &mut self,
        func: FuncId,
        args: &[ast::Expr],
        span: Span,
    ) -> Result<Vec<Expr>, LangError> {
        let (n, name) = {
            let f = &self.sema.hir.functions[func.0];
            (f.num_params, f.name.clone())
        };
        if n != args.len() {
            return Err(LangError::sema(
                span,
                format!("`{name}` expects {n} arguments, got {}", args.len()),
            ));
        }
        let mut out = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let want = self.sema.hir.functions[func.0].locals[i].ty.clone();
            out.push(self.lower_coerce(a, &want, span)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Hir {
        compile_source(src).unwrap_or_else(|e| panic!("{e}"))
    }

    fn err(src: &str) -> LangError {
        compile_source(src).unwrap_err()
    }

    #[test]
    fn lowers_figure_1() {
        let hir = ok(r#"
            extern double interact(double, double);
            class body {
                double pos; double sum;
                void one_interaction(body b) {
                    double val = interact(this.pos, b.pos);
                    this.sum += val;
                }
                void interactions(body[] b, int n) {
                    for (int i = 0; i < n; i++) { this.one_interaction(b[i]); }
                }
            }
        "#);
        assert_eq!(hir.classes.len(), 1);
        assert_eq!(hir.functions.len(), 2);
        let interactions = &hir.functions[hir.method_named(ClassId(0), "interactions").unwrap().0];
        assert!(matches!(interactions.body[0], Stmt::CountedFor { .. }));
        // Compound assignment desugars to `sum = sum + val`.
        let one = &hir.functions[hir.method_named(ClassId(0), "one_interaction").unwrap().0];
        let Stmt::Assign { place: Place::Field { .. }, value } = &one.body[1] else {
            panic!("expected field assign, got {:?}", one.body[1]);
        };
        assert!(matches!(value.kind, ExprKind::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn int_widens_to_double() {
        let hir = ok("void f() { double x = 1; x = x + 2; }");
        let f = &hir.functions[0];
        let Stmt::Assign { value, .. } = &f.body[0] else { panic!() };
        assert!(matches!(value.kind, ExprKind::IntToDouble(_)));
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(err("void f() { x = 1; }").message.contains("unknown variable"));
        assert!(err("void f() { g(); }").message.contains("unknown function"));
        assert!(err("void f(foo x) { }").message.contains("unknown class"));
    }

    #[test]
    fn rejects_type_errors() {
        assert!(err("void f() { int x = true; }").message.contains("expected `int`"));
        assert!(err("void f() { if (1) { } }").message.contains("must be bool"));
        assert!(err("void f() { bool b = 1 % 2.0; }").message.contains("int operands"));
    }

    #[test]
    fn rejects_this_outside_method() {
        assert!(err("class c { int x; } void f() { int y = this.x; }")
            .message
            .contains("`this` outside"));
    }

    #[test]
    fn non_canonical_for_desugars_to_while() {
        let hir = ok("void f(int n) { for (int i = 0; i < n; i += 2) { n = n - 1; } }");
        // init assignment + while
        assert!(matches!(hir.functions[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn array_length_is_supported() {
        let hir = ok("void f(double[] a) { int n = a.length; }");
        let Stmt::Assign { value, .. } = &hir.functions[0].body[0] else { panic!() };
        assert!(matches!(value.kind, ExprKind::ArrayLen(_)));
    }

    #[test]
    fn null_coerces_to_references() {
        ok("class c { c next; } void f() { c x = null; x = new c(); x.next = null; }");
    }

    #[test]
    fn scoping_allows_shadowing_in_nested_blocks() {
        ok("void f() { int x = 1; { double x = 2.0; x = 3.0; } x = 4; }");
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(err("class c { int x; } class c { int y; }").message.contains("duplicate class"));
        assert!(err("void f() {} void f() {}").message.contains("duplicate function"));
        assert!(err("class c { int x; int x; }").message.contains("duplicate field"));
    }

    #[test]
    fn externs_type_checked() {
        assert!(err("extern double sqrt(double); void f() { double x = sqrt(1.0, 2.0); }")
            .message
            .contains("expects 1 arguments"));
    }
}
