//! Diagnostics for the mini language.

use crate::token::Span;
use std::fmt;

/// Which compilation stage produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis (name resolution, type checking).
    Sema,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
        })
    }
}

/// A front-end error with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Producing stage.
    pub stage: Stage,
    /// Source position.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// A lexer error.
    #[must_use]
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        LangError { stage: Stage::Lex, span, message: message.into() }
    }

    /// A parser error.
    #[must_use]
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError { stage: Stage::Parse, span, message: message.into() }
    }

    /// A semantic error.
    #[must_use]
    pub fn sema(span: Span, message: impl Into<String>) -> Self {
        LangError { stage: Stage::Sema, span, message: message.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.stage, self.span, self.message)
    }
}

impl std::error::Error for LangError {}
