//! Deterministic, seeded fault injection for the simulated machine.
//!
//! Real machines do not execute in the steady state the paper's sampling
//! phases measure: other jobs steal processors, lock home nodes saturate,
//! timers drift, and stragglers stretch barriers. Each of those
//! perturbations can flip which synchronization policy is best *mid-run* —
//! exactly the situation dynamic feedback's periodic resampling (§4.4) is
//! designed to survive. This module injects such perturbations into the
//! discrete-event machine, deterministically:
//!
//! * a [`FaultPlan`] is a set of [`FaultEvent`]s, each a [`FaultKind`]
//!   active during a virtual-time [`Window`];
//! * every query on a plan is a *pure function* of (plan, coordinates,
//!   virtual time) — no hidden state — so a faulted simulation is exactly
//!   as reproducible as an unfaulted one: the same plan and workload give
//!   bit-identical statistics on every run;
//! * per-event randomness (timer jitter) is derived with the stateless
//!   [`mix64`] hash of (plan seed, processor, read number), so outcomes do
//!   not depend on event interleaving.
//!
//! Attach a plan to a machine with [`Machine::set_fault_plan`], or to a
//! whole runtime execution through [`RunConfig::faults`].
//!
//! [`Machine::set_fault_plan`]: crate::machine::Machine::set_fault_plan
//! [`RunConfig::faults`]: crate::runtime::RunConfig::faults

use crate::time::SimTime;
use dynfb_core::rng::{mix64, SplitMix64};
use std::fmt;
use std::time::Duration;

/// A half-open window of virtual time (`start` inclusive, `end` exclusive)
/// during which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant the fault is active.
    pub start: SimTime,
    /// First instant the fault is no longer active.
    pub end: SimTime,
}

impl Window {
    /// A window from `start` to `end` after simulation start.
    #[must_use]
    pub fn new(start: Duration, end: Duration) -> Self {
        Window { start: SimTime::ZERO + start, end: SimTime::ZERO + end }
    }

    /// A window covering the entire run.
    #[must_use]
    pub fn always() -> Self {
        Window { start: SimTime::ZERO, end: SimTime::from_nanos(u64::MAX) }
    }

    /// Whether the window is active at `t`.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the overlap between this window and `[0, until)`.
    #[must_use]
    pub fn elapsed_within(&self, until: SimTime) -> Duration {
        let clipped = until.min(self.end);
        clipped.saturating_since(self.start)
    }
}

/// Which processors (or locks) a fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Every processor / lock.
    All,
    /// Only the listed indices.
    Only(Vec<usize>),
}

impl Target {
    /// Whether index `i` is targeted.
    #[must_use]
    pub fn matches(&self, i: usize) -> bool {
        match self {
            Target::All => true,
            Target::Only(set) => set.contains(&i),
        }
    }
}

/// One kind of environment perturbation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The targeted processors run computation `factor`× slower (a
    /// co-scheduled job stealing cycles, thermal throttling, a slow node).
    /// Lock-held computation stretches too, so a policy that holds locks
    /// across long computations suffers disproportionately.
    Slowdown {
        /// Processors affected.
        procs: Target,
        /// Multiplier on compute durations (≥ 1).
        factor: f64,
    },
    /// A contention storm on the targeted locks: acquire/release cost
    /// `cost_factor`× more (saturated home node), and each release leaves
    /// the lock unavailable for an extra `extra_hold` (the holder is
    /// preempted just before releasing). Only contended acquires observe
    /// the dead time — an uncontended lock has nobody spinning to notice.
    ContentionStorm {
        /// Locks affected.
        locks: Target,
        /// Multiplier on acquire/release costs (≥ 1).
        cost_factor: f64,
        /// Extra unavailability after each release.
        extra_hold: Duration,
    },
    /// The timer observed by [`ProcCtx::read_timer`] drifts by `ppm`
    /// parts-per-million of the time spent inside the window (positive:
    /// fast; negative: slow — at −1 000 000 the observed clock freezes,
    /// which starves interval-expiry detection and exercises the runtime's
    /// stuck-sampling watchdog).
    ///
    /// [`ProcCtx::read_timer`]: crate::process::ProcCtx::read_timer
    TimerDrift {
        /// Drift rate in parts per million (|ppm| ≤ 1 000 000).
        ppm: i64,
    },
    /// Each timer read inside the window observes an additional pseudo-random
    /// offset in `[0, max]`, derived statelessly from the plan seed, the
    /// processor, and the read ordinal. Consecutive reads can appear to go
    /// backwards, so interval logic must tolerate non-monotone clocks.
    TimerJitter {
        /// Maximum jitter magnitude.
        max: Duration,
    },
    /// The targeted processors arrive `delay` late at every barrier inside
    /// the window (page fault or interrupt at the worst moment); everyone
    /// else waits, since a barrier releases only after the last arrival.
    BarrierStraggler {
        /// Processors affected.
        procs: Target,
        /// Extra delay before the barrier arrival registers.
        delay: Duration,
    },
    /// Crash-stop failure: the targeted processors permanently stop
    /// executing at the window's *start* instant — possibly while holding a
    /// lock. The machine observes the death at the processor's next
    /// scheduling point at or after that instant, recovers any orphaned
    /// locks with a deterministic abort-and-release protocol, and shrinks
    /// every barrier's rendezvous size so survivors are not stranded.
    /// (The window's end is ignored: crash-stop is forever.)
    ProcCrash {
        /// Processors affected.
        procs: Target,
    },
    /// Transient hang: the targeted processors execute nothing while the
    /// window is active (an OS preemption, a page-fault storm), resuming
    /// exactly where they left off at the window's end. Stalled time is
    /// charged to no account — a hung processor executes no application
    /// code — but everyone waiting on its locks or barriers feels it.
    ProcStall {
        /// Processors affected.
        procs: Target,
    },
}

/// A [`FaultKind`] active during a [`Window`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault is active.
    pub window: Window,
    /// What the fault does.
    pub kind: FaultKind,
}

/// Why a fault plan was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// Index of the offending event within the plan.
    pub event: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault event {}: {}", self.event, self.reason)
    }
}

impl std::error::Error for FaultPlanError {}

/// Largest accepted slowdown / cost multiplier.
const MAX_FACTOR: f64 = 1e6;
/// Largest accepted extra hold / jitter / straggler delay.
const MAX_EXTRA: Duration = Duration::from_secs(10);
/// Latest accepted crash onset (window start of a [`FaultKind::ProcCrash`]).
/// A crash scheduled beyond any plausible run horizon is almost certainly a
/// unit mistake, and would silently never fire.
const MAX_ONSET: Duration = Duration::from_secs(3600);

/// A deterministic, seeded set of environment perturbations.
///
/// The default plan is empty (no faults); an empty plan leaves every
/// simulation result bit-identical to a machine without fault support.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan whose jitter streams are derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Builder-style: add an event.
    #[must_use]
    pub fn with_event(mut self, window: Window, kind: FaultKind) -> Self {
        self.push(window, kind);
        self
    }

    /// Add an event.
    pub fn push(&mut self, window: Window, kind: FaultKind) {
        self.events.push(FaultEvent { window, kind });
    }

    /// The plan's events.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The seed the plan's jitter streams are derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event for semantic validity: non-empty windows, finite
    /// multipliers in `[1, 10^6]`, bounded delays, |ppm| ≤ 10^6, and
    /// non-empty explicit target sets.
    ///
    /// # Errors
    ///
    /// Returns the first offending event and the reason.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let err = |event: usize, reason: String| Err(FaultPlanError { event, reason });
        let check_factor = |event: usize, what: &str, f: f64| {
            if !f.is_finite() || !(1.0..=MAX_FACTOR).contains(&f) {
                return err(
                    event,
                    format!("{what} must be a finite factor in [1, {MAX_FACTOR}], got {f}"),
                );
            }
            Ok(())
        };
        let check_extra = |event: usize, what: &str, d: Duration| {
            if d > MAX_EXTRA {
                return err(event, format!("{what} {d:?} exceeds the {MAX_EXTRA:?} sanity bound"));
            }
            Ok(())
        };
        let check_target = |event: usize, what: &str, t: &Target| {
            if matches!(t, Target::Only(set) if set.is_empty()) {
                return err(event, format!("{what} target list is empty (use Target::All?)"));
            }
            Ok(())
        };
        for (i, e) in self.events.iter().enumerate() {
            if e.window.start >= e.window.end {
                return err(i, format!("empty window [{}, {})", e.window.start, e.window.end));
            }
            match &e.kind {
                FaultKind::Slowdown { procs, factor } => {
                    check_target(i, "slowdown", procs)?;
                    check_factor(i, "slowdown factor", *factor)?;
                }
                FaultKind::ContentionStorm { locks, cost_factor, extra_hold } => {
                    check_target(i, "contention storm", locks)?;
                    check_factor(i, "contention cost factor", *cost_factor)?;
                    check_extra(i, "contention extra hold", *extra_hold)?;
                }
                FaultKind::TimerDrift { ppm } => {
                    if ppm.unsigned_abs() > 1_000_000 {
                        return err(i, format!("timer drift {ppm} ppm exceeds ±1000000"));
                    }
                }
                FaultKind::TimerJitter { max } => {
                    check_extra(i, "timer jitter", *max)?;
                }
                FaultKind::BarrierStraggler { procs, delay } => {
                    check_target(i, "barrier straggler", procs)?;
                    check_extra(i, "straggler delay", *delay)?;
                }
                FaultKind::ProcCrash { procs } => {
                    check_target(i, "crash", procs)?;
                    if e.window.start > SimTime::ZERO + MAX_ONSET {
                        return err(
                            i,
                            format!(
                                "crash onset {} is beyond the {MAX_ONSET:?} sanity bound",
                                e.window.start
                            ),
                        );
                    }
                }
                FaultKind::ProcStall { procs } => {
                    check_target(i, "stall", procs)?;
                    let len = e.window.end.saturating_since(e.window.start);
                    if len > MAX_EXTRA {
                        return err(
                            i,
                            format!(
                                "stall window length {len:?} exceeds the \
                                 {MAX_EXTRA:?} sanity bound"
                            ),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Multiplier on compute durations for `proc` at `t` (product of all
    /// active slowdowns; 1.0 when none apply).
    #[must_use]
    pub fn compute_factor(&self, proc: usize, t: SimTime) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultKind::Slowdown { procs, factor: f } = &e.kind {
                if e.window.contains(t) && procs.matches(proc) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// Multiplier on acquire/release costs for `lock` at `t`.
    #[must_use]
    pub fn lock_cost_factor(&self, lock: usize, t: SimTime) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultKind::ContentionStorm { locks, cost_factor, .. } = &e.kind {
                if e.window.contains(t) && locks.matches(lock) {
                    factor *= cost_factor;
                }
            }
        }
        factor
    }

    /// Extra unavailability after a release of `lock` at `t` (sum of all
    /// active storms).
    #[must_use]
    pub fn extra_hold(&self, lock: usize, t: SimTime) -> Duration {
        let mut extra = Duration::ZERO;
        for e in &self.events {
            if let FaultKind::ContentionStorm { locks, extra_hold, .. } = &e.kind {
                if e.window.contains(t) && locks.matches(lock) {
                    extra += *extra_hold;
                }
            }
        }
        extra
    }

    /// Extra delay before `proc`'s arrival at a barrier at `t` registers.
    #[must_use]
    pub fn barrier_delay(&self, proc: usize, t: SimTime) -> Duration {
        let mut delay = Duration::ZERO;
        for e in &self.events {
            if let FaultKind::BarrierStraggler { procs, delay: d } = &e.kind {
                if e.window.contains(t) && procs.matches(proc) {
                    delay += *d;
                }
            }
        }
        delay
    }

    /// The instant `proc` crash-stops, if any [`FaultKind::ProcCrash`]
    /// targets it: the earliest matching window's start. Pure in
    /// (plan, proc) — the machine observes the death at the processor's
    /// next scheduling point at or after this instant.
    #[must_use]
    pub fn crash_at(&self, proc: usize) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::ProcCrash { procs } if procs.matches(proc) => Some(e.window.start),
                _ => None,
            })
            .min()
    }

    /// If `proc` is stalled at `t`, the instant it resumes: the latest end
    /// among all active [`FaultKind::ProcStall`] windows (strictly after
    /// `t`, since windows are half-open). `None` when the processor is
    /// free to run.
    #[must_use]
    pub fn stall_until(&self, proc: usize, t: SimTime) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::ProcStall { procs } if procs.matches(proc) && e.window.contains(t) => {
                    Some(e.window.end)
                }
                _ => None,
            })
            .max()
    }

    /// The virtual time a timer read observes: `real` distorted by every
    /// active drift and jitter fault. Pure in (plan, proc, read ordinal,
    /// real time); with drift or jitter the result may be *non-monotone*
    /// across consecutive reads.
    #[must_use]
    pub fn observed_time(&self, proc: usize, read_no: u64, real: SimTime) -> SimTime {
        if self.events.is_empty() {
            return real;
        }
        let mut observed = i128::from(real.as_nanos());
        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                FaultKind::TimerDrift { ppm } => {
                    // Drift accrues over the time spent inside the window.
                    let inside = e.window.elapsed_within(real).as_nanos() as i128;
                    observed += inside * i128::from(*ppm) / 1_000_000;
                }
                FaultKind::TimerJitter { max } if e.window.contains(real) && !max.is_zero() => {
                    let max_ns = u64::try_from(max.as_nanos()).unwrap_or(u64::MAX);
                    let r = mix64(&[self.seed, i as u64, proc as u64, read_no]);
                    observed += i128::from(r % (max_ns + 1));
                }
                _ => {}
            }
        }
        SimTime::from_nanos(u64::try_from(observed.max(0)).unwrap_or(u64::MAX))
    }

    /// Generate a random (but valid and fully reproducible) plan: `events`
    /// faults of random kinds, windows, targets, and magnitudes drawn from
    /// `profile` via a [`SplitMix64`] stream seeded with `seed`.
    #[must_use]
    pub fn random(seed: u64, profile: &ChaosProfile) -> FaultPlan {
        let mut g = SplitMix64::new(seed);
        let mut plan = FaultPlan::new(seed);
        let horizon_ns = u64::try_from(profile.horizon.as_nanos()).unwrap_or(u64::MAX).max(2);
        for _ in 0..profile.events {
            let a = g.gen_range(0, horizon_ns - 1);
            let b = g.gen_range(a + 1, horizon_ns);
            let mut window =
                Window { start: SimTime::from_nanos(a), end: SimTime::from_nanos(b + 1) };
            let target = |g: &mut SplitMix64, n: usize| {
                if n == 0 || g.chance(0.3) {
                    Target::All
                } else {
                    let picks = g.gen_index(n) + 1;
                    let mut set: Vec<usize> = (0..picks).map(|_| g.gen_index(n)).collect();
                    set.sort_unstable();
                    set.dedup();
                    Target::Only(set)
                }
            };
            // Crash-stop a *single* processor: a random plan that kills the
            // whole machine at once tells us nothing about recovery.
            let one_proc = |g: &mut SplitMix64| {
                if profile.procs == 0 {
                    Target::All
                } else {
                    Target::Only(vec![g.gen_index(profile.procs)])
                }
            };
            let kind = match g.gen_index(7) {
                0 => FaultKind::Slowdown {
                    procs: target(&mut g, profile.procs),
                    factor: g.gen_f64(2.0, 10.0),
                },
                1 => FaultKind::ContentionStorm {
                    locks: target(&mut g, profile.locks),
                    cost_factor: g.gen_f64(2.0, 10.0),
                    extra_hold: Duration::from_nanos(g.gen_range(0, 20_000)),
                },
                2 => FaultKind::TimerDrift { ppm: g.gen_range_i64(-500_000, 500_001) },
                3 => FaultKind::TimerJitter { max: Duration::from_nanos(g.gen_range(1, 50_000)) },
                4 => FaultKind::BarrierStraggler {
                    procs: target(&mut g, profile.procs),
                    delay: Duration::from_nanos(g.gen_range(1, 200_000)),
                },
                5 => {
                    // Keep the onset within the validation bound even for
                    // horizons longer than MAX_ONSET.
                    let onset_cap = u64::try_from(MAX_ONSET.as_nanos()).unwrap_or(u64::MAX);
                    let start = a.min(onset_cap);
                    window = Window {
                        start: SimTime::from_nanos(start),
                        end: SimTime::from_nanos(b.max(start) + 1),
                    };
                    FaultKind::ProcCrash { procs: one_proc(&mut g) }
                }
                _ => {
                    // Clamp the stall to the MAX_EXTRA validation bound.
                    let stall_cap = u64::try_from(MAX_EXTRA.as_nanos()).unwrap_or(u64::MAX);
                    window = Window {
                        start: SimTime::from_nanos(a),
                        end: SimTime::from_nanos((b + 1).min(a.saturating_add(stall_cap))),
                    };
                    FaultKind::ProcStall { procs: one_proc(&mut g) }
                }
            };
            plan.push(window, kind);
        }
        plan
    }
}

/// Shape parameters for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Virtual-time horizon within which fault windows are placed.
    pub horizon: Duration,
    /// Number of processors (for targeting).
    pub procs: usize,
    /// Number of locks (for targeting).
    pub locks: usize,
    /// How many fault events to generate.
    pub events: usize,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile { horizon: Duration::from_millis(100), procs: 8, locks: 16, events: 4 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + us(n)
    }

    #[test]
    fn windows_are_half_open() {
        let w = Window::new(us(10), us(20));
        assert!(!w.contains(at(9)));
        assert!(w.contains(at(10)));
        assert!(w.contains(at(19)));
        assert!(!w.contains(at(20)));
        assert_eq!(w.elapsed_within(at(5)), Duration::ZERO);
        assert_eq!(w.elapsed_within(at(15)), us(5));
        assert_eq!(w.elapsed_within(at(50)), us(10));
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.compute_factor(0, at(1)), 1.0);
        assert_eq!(p.lock_cost_factor(3, at(1)), 1.0);
        assert_eq!(p.extra_hold(3, at(1)), Duration::ZERO);
        assert_eq!(p.barrier_delay(2, at(1)), Duration::ZERO);
        assert_eq!(p.observed_time(0, 1, at(42)), at(42));
        p.validate().unwrap();
    }

    #[test]
    fn overlapping_slowdowns_compose_multiplicatively() {
        let p = FaultPlan::new(1)
            .with_event(
                Window::new(us(0), us(100)),
                FaultKind::Slowdown { procs: Target::All, factor: 2.0 },
            )
            .with_event(
                Window::new(us(50), us(100)),
                FaultKind::Slowdown { procs: Target::Only(vec![1]), factor: 3.0 },
            );
        assert_eq!(p.compute_factor(0, at(60)), 2.0);
        assert_eq!(p.compute_factor(1, at(60)), 6.0);
        assert_eq!(p.compute_factor(1, at(10)), 2.0);
        assert_eq!(p.compute_factor(1, at(100)), 1.0);
    }

    #[test]
    fn storms_inflate_costs_and_hold_times() {
        let p = FaultPlan::new(1).with_event(
            Window::new(us(0), us(50)),
            FaultKind::ContentionStorm {
                locks: Target::Only(vec![2]),
                cost_factor: 4.0,
                extra_hold: us(7),
            },
        );
        assert_eq!(p.lock_cost_factor(2, at(10)), 4.0);
        assert_eq!(p.lock_cost_factor(1, at(10)), 1.0);
        assert_eq!(p.extra_hold(2, at(10)), us(7));
        assert_eq!(p.extra_hold(2, at(60)), Duration::ZERO);
    }

    #[test]
    fn drift_accrues_only_inside_the_window() {
        let p = FaultPlan::new(1)
            .with_event(Window::new(us(100), us(200)), FaultKind::TimerDrift { ppm: 500_000 });
        // Before the window: exact.
        assert_eq!(p.observed_time(0, 1, at(50)), at(50));
        // Halfway through: 50 µs inside × 0.5 = 25 µs fast.
        assert_eq!(p.observed_time(0, 2, at(150)), at(175));
        // After: drift capped at the window's 100 µs × 0.5.
        assert_eq!(p.observed_time(0, 3, at(300)), at(350));
    }

    #[test]
    fn full_negative_drift_freezes_the_clock() {
        let p = FaultPlan::new(1)
            .with_event(Window::new(us(0), us(1000)), FaultKind::TimerDrift { ppm: -1_000_000 });
        assert_eq!(p.observed_time(0, 1, at(10)), at(0));
        assert_eq!(p.observed_time(0, 2, at(999)), at(0));
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_seed_sensitive() {
        let max = us(9);
        let mk = |seed| {
            FaultPlan::new(seed).with_event(Window::always(), FaultKind::TimerJitter { max })
        };
        let p = mk(1);
        let mut distinct = false;
        for read_no in 0..64 {
            let t = p.observed_time(3, read_no, at(1000));
            assert!(t >= at(1000) && t <= at(1009), "{t}");
            assert_eq!(t, p.observed_time(3, read_no, at(1000)), "deterministic");
            distinct |= t != p.observed_time(3, read_no + 1, at(1000));
        }
        assert!(distinct, "jitter must vary across reads");
        let q = mk(2);
        let differs =
            (0..64).any(|r| p.observed_time(3, r, at(1000)) != q.observed_time(3, r, at(1000)));
        assert!(differs, "different seeds give different jitter");
    }

    #[test]
    fn validate_rejects_bad_events() {
        let bad = |kind: FaultKind| {
            FaultPlan::new(0).with_event(Window::new(us(0), us(1)), kind).validate().unwrap_err()
        };
        assert!(bad(FaultKind::Slowdown { procs: Target::All, factor: f64::NAN })
            .reason
            .contains("finite"));
        bad(FaultKind::Slowdown { procs: Target::All, factor: 0.5 });
        bad(FaultKind::Slowdown { procs: Target::Only(vec![]), factor: 2.0 });
        bad(FaultKind::ContentionStorm {
            locks: Target::All,
            cost_factor: f64::INFINITY,
            extra_hold: Duration::ZERO,
        });
        bad(FaultKind::ContentionStorm {
            locks: Target::All,
            cost_factor: 2.0,
            extra_hold: Duration::from_secs(3600),
        });
        bad(FaultKind::TimerDrift { ppm: 2_000_000 });
        bad(FaultKind::BarrierStraggler { procs: Target::All, delay: Duration::from_secs(11) });
        bad(FaultKind::ProcCrash { procs: Target::Only(vec![]) });
        bad(FaultKind::ProcStall { procs: Target::Only(vec![]) });
        // Empty window.
        let e = FaultPlan::new(0)
            .with_event(Window::new(us(5), us(5)), FaultKind::TimerDrift { ppm: 0 })
            .validate()
            .unwrap_err();
        assert!(e.reason.contains("empty window"), "{e}");
        assert_eq!(e.event, 0);
    }

    #[test]
    fn crash_onset_beyond_the_bound_is_rejected() {
        let e = FaultPlan::new(0)
            .with_event(
                Window::new(Duration::from_secs(3601), Duration::from_secs(3602)),
                FaultKind::ProcCrash { procs: Target::All },
            )
            .validate()
            .unwrap_err();
        assert!(e.reason.contains("crash onset"), "{e}");
        assert_eq!(e.event, 0);
        // At the bound is still fine.
        FaultPlan::new(0)
            .with_event(
                Window::new(Duration::from_secs(3600), Duration::from_secs(3601)),
                FaultKind::ProcCrash { procs: Target::All },
            )
            .validate()
            .unwrap();
    }

    #[test]
    fn overlong_stall_window_is_rejected() {
        let e = FaultPlan::new(0)
            .with_event(Window::always(), FaultKind::ProcStall { procs: Target::All })
            .validate()
            .unwrap_err();
        assert!(e.reason.contains("stall window length"), "{e}");
        let e = FaultPlan::new(0)
            .with_event(
                Window::new(us(0), Duration::from_secs(11)),
                FaultKind::ProcStall { procs: Target::All },
            )
            .validate()
            .unwrap_err();
        assert!(e.reason.contains("stall window length"), "{e}");
        // A stall of exactly the bound passes.
        FaultPlan::new(0)
            .with_event(
                Window::new(us(0), Duration::from_secs(10)),
                FaultKind::ProcStall { procs: Target::All },
            )
            .validate()
            .unwrap();
    }

    #[test]
    fn crash_at_is_the_earliest_matching_onset() {
        let p = FaultPlan::new(0)
            .with_event(
                Window::new(us(50), us(60)),
                FaultKind::ProcCrash { procs: Target::Only(vec![1]) },
            )
            .with_event(
                Window::new(us(20), us(30)),
                FaultKind::ProcCrash { procs: Target::Only(vec![1, 2]) },
            );
        assert_eq!(p.crash_at(1), Some(at(20)));
        assert_eq!(p.crash_at(2), Some(at(20)));
        assert_eq!(p.crash_at(0), None);
        assert_eq!(FaultPlan::default().crash_at(0), None);
    }

    #[test]
    fn stall_until_is_the_latest_active_window_end() {
        let p = FaultPlan::new(0)
            .with_event(
                Window::new(us(10), us(40)),
                FaultKind::ProcStall { procs: Target::Only(vec![3]) },
            )
            .with_event(Window::new(us(30), us(90)), FaultKind::ProcStall { procs: Target::All });
        assert_eq!(p.stall_until(3, at(5)), None, "before any window");
        assert_eq!(p.stall_until(3, at(15)), Some(at(40)), "only the first is active");
        assert_eq!(p.stall_until(3, at(35)), Some(at(90)), "overlap resolves to the later end");
        assert_eq!(p.stall_until(0, at(35)), Some(at(90)), "All matches every proc");
        assert_eq!(p.stall_until(3, at(90)), None, "half-open: free at the end instant");
    }

    #[test]
    fn random_plans_cover_the_failure_kinds() {
        // Across a modest seed sweep the generator must produce both new
        // kinds (each arm is 1-in-7 per event).
        let profile = ChaosProfile::default();
        let mut saw_crash = false;
        let mut saw_stall = false;
        for seed in 0..64 {
            for e in FaultPlan::random(seed, &profile).events() {
                match &e.kind {
                    FaultKind::ProcCrash { .. } => saw_crash = true,
                    FaultKind::ProcStall { .. } => saw_stall = true,
                    _ => {}
                }
            }
        }
        assert!(saw_crash, "no ProcCrash generated in 64 seeds");
        assert!(saw_stall, "no ProcStall generated in 64 seeds");
    }

    #[test]
    fn random_plans_are_valid_and_reproducible() {
        let profile = ChaosProfile::default();
        for seed in 0..32 {
            let p = FaultPlan::random(seed, &profile);
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(p, FaultPlan::random(seed, &profile));
            assert_eq!(p.events().len(), profile.events);
        }
        assert_ne!(FaultPlan::random(1, &profile), FaultPlan::random(2, &profile));
    }
}
