//! # dynfb-sim — a deterministic simulated shared-memory multiprocessor
//!
//! The paper evaluated dynamic feedback on a 16-processor Stanford DASH
//! machine. This crate substitutes a *discrete-event simulation* of such a
//! machine: virtual processors execute [`Process`]es that compute, acquire
//! and release spin locks, wait at barriers, and read a timer — with the
//! same accounting the paper's instrumentation performs:
//!
//! * **locking overhead**: successful acquire/release pairs × their cost,
//! * **waiting overhead**: failed acquire attempts × their cost (a waiter
//!   spins until the holder releases; the engine computes the equivalent
//!   number of failed attempts analytically),
//! * **execution time**: all time a processor spends executing application
//!   code, including the overheads above.
//!
//! Simulation is fully deterministic (events at equal times are ordered by
//! insertion sequence), so every experiment in this repository is exactly
//! reproducible, and processor counts from 1 to any N can be swept on a
//! single-core host.
//!
//! The [`runtime`] module implements the paper's generated-code runtime on
//! top of the engine: alternating serial/parallel sections, multi-version
//! parallel loops, timer polling at iteration boundaries, and synchronous
//! policy switching driven by the `dynfb-core` controller.

#![warn(missing_docs)]

pub mod config;
pub mod faults;
pub mod machine;
pub mod process;
pub mod runtime;
pub mod stats;
pub mod time;

pub use config::{MachineConfig, MachineConfigError};
pub use faults::{ChaosProfile, FaultEvent, FaultKind, FaultPlan, FaultPlanError, Target, Window};
pub use machine::{LockUsage, Machine, SimError};
pub use process::{BarrierId, LockId, ProcCtx, ProcId, Process, Step};
pub use runtime::{
    run_app, run_app_flight_recorded, run_app_journaled, run_app_metered, run_app_observed,
    run_app_ref, run_app_traced, AppReport, OpSink, PlanEntry, RunConfig, RunMode, SampleRecord,
    SectionExecution, SectionKind, SimApp,
};
pub use stats::{MachineStats, ProcStats};
pub use time::SimTime;
