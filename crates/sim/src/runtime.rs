//! The dynamic feedback runtime for simulated applications.
//!
//! The paper's compiler generates code that executes an alternating
//! sequence of serial and parallel sections; within each parallel section
//! the generated code uses dynamic feedback to choose the best
//! synchronization optimization policy (§4). This module is that generated
//! runtime, targeting the simulated multiprocessor:
//!
//! * an application implements [`SimApp`]: a *plan* of serial and parallel
//!   sections, and per-iteration code for each policy *version* of each
//!   parallel section;
//! * [`run_app`] executes the plan on `num_procs` simulated processors,
//!   either with one statically chosen version ([`RunMode::Static`]) or with
//!   dynamic feedback ([`RunMode::Dynamic`]);
//! * in dynamic mode, every processor polls the timer at each loop
//!   iteration (the potential switch points of §4.1); when the target
//!   interval expires the processors rendezvous at a barrier and switch
//!   policies *synchronously*, with the last arriver performing the
//!   controller transition.
//!
//! Iteration bodies are emitted as [`Step`] sequences through an
//! [`OpSink`]. Application state is updated when an iteration is *emitted*;
//! the simulated timing of its lock operations is resolved later by the
//! event engine. This is sound for the programs the paper targets: the
//! parallelized operations commute, so their results are independent of the
//! simulated interleaving, while their *costs* (which do depend on the
//! interleaving) are fully modeled.

use crate::config::MachineConfig;
use crate::machine::{Machine, SimError};
use crate::process::{BarrierId, LockId, ProcCtx, Process, Step};
use crate::stats::{MachineStats, ProcStats};
use crate::time::SimTime;
use dynfb_core::controller::{Controller, ControllerConfig, Phase};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Collects the steps of one loop iteration (or serial section).
///
/// Consecutive compute charges are merged into a single [`Step::Compute`]
/// so emission granularity does not affect event counts.
#[derive(Debug, Default)]
pub struct OpSink {
    steps: Vec<Step>,
    pending: Duration,
}

impl OpSink {
    /// Append useful computation.
    pub fn compute(&mut self, d: Duration) {
        self.pending += d;
    }

    /// Append a lock acquire.
    pub fn acquire(&mut self, lock: LockId) {
        self.flush();
        self.steps.push(Step::Acquire(lock));
    }

    /// Append a lock release.
    pub fn release(&mut self, lock: LockId) {
        self.flush();
        self.steps.push(Step::Release(lock));
    }

    fn flush(&mut self) {
        if !self.pending.is_zero() {
            self.steps.push(Step::Compute(self.pending));
            self.pending = Duration::ZERO;
        }
    }

    fn into_steps(mut self) -> VecDeque<Step> {
        self.flush();
        self.steps.into()
    }
}

/// Whether a plan entry is a serial or a parallel section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Executed by processor 0 only; the others wait at the section barrier
    /// (this idle time is what limits speedup, as in the paper's §6.1).
    Serial,
    /// A parallel loop executed by all processors.
    Parallel,
}

/// One entry in an application's execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// Section name; repeated entries with the same name are repeated
    /// executions of the same section (and share version structure).
    pub name: String,
    /// Serial or parallel.
    pub kind: SectionKind,
}

impl PlanEntry {
    /// Convenience constructor for a serial section.
    #[must_use]
    pub fn serial(name: &str) -> Self {
        PlanEntry { name: name.to_string(), kind: SectionKind::Serial }
    }

    /// Convenience constructor for a parallel section.
    #[must_use]
    pub fn parallel(name: &str) -> Self {
        PlanEntry { name: name.to_string(), kind: SectionKind::Parallel }
    }
}

/// A multi-version application that runs on the simulated machine.
///
/// Implementations are usually produced by the `dynfb-compiler` crate from
/// mini-language sources, but can also be written by hand in Rust.
pub trait SimApp {
    /// Application name (for reports).
    fn name(&self) -> &str;

    /// Create the locks and other machine resources the app needs.
    fn setup(&mut self, machine: &mut Machine);

    /// The sequence of section executions.
    fn plan(&self) -> Vec<PlanEntry>;

    /// Names of the *distinct* code versions of a parallel section, ordered
    /// from least to most aggressive. When two policies generate identical
    /// code for a section the compiler emits a single shared version, so
    /// this list can be shorter than the global policy list (§6.2: the
    /// Water INTERF section has identical Bounded and Aggressive code).
    fn versions(&self, section: &str) -> Vec<String>;

    /// Map a global policy name (e.g. `"aggressive"`) to the version index
    /// of this section implementing it, or `None` if unknown.
    fn version_for_policy(&self, section: &str, policy: &str) -> Option<usize> {
        self.versions(section).iter().position(|v| v.split('+').any(|p| p == policy))
    }

    /// Emit the body of a serial section.
    fn emit_serial(&mut self, section: &str, ops: &mut OpSink);

    /// Called once at the start of each execution of a parallel section;
    /// returns the number of loop iterations.
    fn begin_parallel(&mut self, section: &str) -> usize;

    /// Emit the body of iteration `iter` of the given parallel section
    /// under the given version.
    fn emit_iteration(&mut self, section: &str, version: usize, iter: usize, ops: &mut OpSink);
}

impl<T: SimApp + ?Sized> SimApp for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn setup(&mut self, machine: &mut Machine) {
        (**self).setup(machine);
    }
    fn plan(&self) -> Vec<PlanEntry> {
        (**self).plan()
    }
    fn versions(&self, section: &str) -> Vec<String> {
        (**self).versions(section)
    }
    fn version_for_policy(&self, section: &str, policy: &str) -> Option<usize> {
        (**self).version_for_policy(section, policy)
    }
    fn emit_serial(&mut self, section: &str, ops: &mut OpSink) {
        (**self).emit_serial(section, ops);
    }
    fn begin_parallel(&mut self, section: &str) -> usize {
        (**self).begin_parallel(section)
    }
    fn emit_iteration(&mut self, section: &str, version: usize, iter: usize, ops: &mut OpSink) {
        (**self).emit_iteration(section, version, iter, ops);
    }
}

/// How the runtime chooses versions.
#[derive(Debug, Clone)]
pub enum RunMode {
    /// Every parallel section runs the version implementing this policy
    /// (e.g. `"original"`, `"bounded"`, `"aggressive"`, `"serial"`).
    /// `instrumented` adds the per-iteration instrumentation and timer
    /// polling that the dynamic version performs, to measure the
    /// instrumentation cost (§4.3).
    Static {
        /// Global policy name.
        policy: String,
        /// Whether to charge instrumentation/polling costs anyway.
        instrumented: bool,
    },
    /// Dynamic feedback with this controller configuration per section
    /// (its `num_policies` is overridden by each section's version count).
    Dynamic(ControllerConfig),
    /// Dynamic feedback with *asynchronous* switching: when an interval
    /// expires, the detecting processor performs the controller transition
    /// immediately and the others pick the new version up at their next
    /// iteration — no rendezvous. Overhead measurements are then polluted
    /// by mixed-version execution; the paper chooses synchronous switching
    /// precisely to avoid this (§4.1). Provided for the ablation study.
    DynamicAsync(ControllerConfig),
}

impl RunMode {
    /// Static, uninstrumented execution of `policy`.
    #[must_use]
    pub fn static_policy(policy: &str) -> Self {
        RunMode::Static { policy: policy.to_string(), instrumented: false }
    }
}

/// Configuration for [`run_app`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of simulated processors.
    pub num_procs: usize,
    /// Version selection mode.
    pub mode: RunMode,
    /// Machine cost model.
    pub machine: MachineConfig,
    /// Instrumentation cost charged per loop iteration when running
    /// instrumented (counter updates; the timer read is charged separately).
    pub instrument_cost: Duration,
    /// Allow sampling and production intervals to span multiple executions
    /// of the same parallel section (the improvement the paper proposes in
    /// §4.4 for sections too short to amortize a full sampling phase).
    /// When enabled, a section execution that ends mid-interval carries the
    /// interval's elapsed time and accumulated measurements into the
    /// section's next execution instead of restarting the sampling phase.
    pub span_intervals: bool,
}

impl RunConfig {
    /// A static run of `policy` on `num_procs` processors.
    #[must_use]
    pub fn fixed(num_procs: usize, policy: &str) -> Self {
        RunConfig {
            num_procs,
            mode: RunMode::static_policy(policy),
            machine: MachineConfig::default(),
            instrument_cost: Duration::from_nanos(100),
            span_intervals: false,
        }
    }

    /// A dynamic feedback run on `num_procs` processors.
    #[must_use]
    pub fn dynamic(num_procs: usize, controller: ControllerConfig) -> Self {
        RunConfig {
            num_procs,
            mode: RunMode::Dynamic(controller),
            machine: MachineConfig::default(),
            instrument_cost: Duration::from_nanos(100),
            span_intervals: false,
        }
    }
}

/// One completed interval, as recorded at a switch barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// Virtual time when the interval completed.
    pub at: SimTime,
    /// Phase the interval belonged to.
    pub phase: Phase,
    /// Version that was executing.
    pub version: usize,
    /// Measured total overhead over the interval.
    pub overhead: f64,
    /// Actual (effective) interval length.
    pub actual: Duration,
    /// True if the section ended before the interval reached its target
    /// (the record is a partial interval).
    pub partial: bool,
}

/// The record of one execution of one section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionExecution {
    /// Index into the plan.
    pub plan_idx: usize,
    /// Section name.
    pub name: String,
    /// Serial or parallel.
    pub kind: SectionKind,
    /// Virtual time the section started.
    pub start: SimTime,
    /// Virtual time the section ended (all processors passed the final
    /// barrier).
    pub end: SimTime,
    /// Number of loop iterations executed (parallel sections).
    pub iterations: usize,
    /// Completed intervals (dynamic mode only).
    pub records: Vec<SampleRecord>,
}

impl SectionExecution {
    /// Duration of this execution.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Result of running an application.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Application name.
    pub app: String,
    /// Full machine statistics.
    pub stats: MachineStats,
    /// Per-section execution records, in plan order.
    pub sections: Vec<SectionExecution>,
}

impl AppReport {
    /// Total virtual execution time.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.stats.elapsed()
    }

    /// Executions of the named section.
    pub fn section<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a SectionExecution> + 'a {
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// Mean duration of the named section's executions.
    #[must_use]
    pub fn mean_section_duration(&self, name: &str) -> Option<Duration> {
        let durs: Vec<Duration> = self.section(name).map(SectionExecution::duration).collect();
        if durs.is_empty() {
            return None;
        }
        Some(durs.iter().sum::<Duration>() / u32::try_from(durs.len()).unwrap_or(u32::MAX))
    }

    /// Mean *effective sampling interval* per version of the named section:
    /// the mean actual length of completed sampling intervals (§4.1,
    /// Tables 5/11/12 of the paper). Indexed by version.
    #[must_use]
    pub fn mean_effective_sampling_intervals(&self, name: &str) -> Vec<Option<Duration>> {
        let mut sums: Vec<(Duration, u32)> = Vec::new();
        for exec in self.section(name) {
            for r in &exec.records {
                if r.phase.is_sampling() && !r.partial {
                    if sums.len() <= r.version {
                        sums.resize(r.version + 1, (Duration::ZERO, 0));
                    }
                    sums[r.version].0 += r.actual;
                    sums[r.version].1 += 1;
                }
            }
        }
        sums.into_iter()
            .map(|(total, n)| if n == 0 { None } else { Some(total / n) })
            .collect()
    }
}

/// Shared per-run state (single-threaded simulation: `Rc<RefCell>`).
struct Driver<'a> {
    app: Box<dyn SimApp + 'a>,
    plan: Vec<PlanEntry>,
    mode: RunMode,
    active: Option<Active>,
    reports: Vec<SectionExecution>,
    /// Controllers persisted per section name across executions, so the
    /// policy history survives (enables the §4.5 best-first ordering and
    /// acceptance cut-off on later executions of the same section).
    controllers: std::collections::HashMap<String, SavedController>,
    /// §4.4 extension: carry in-flight intervals across executions.
    span_intervals: bool,
}

/// A controller saved between executions of one section, together with the
/// in-flight interval it was carrying when the section ended (span mode).
struct SavedController {
    controller: Controller,
    /// `(elapsed, accumulated stats)` of the interrupted interval.
    carry: Option<(Duration, ProcStats)>,
}

/// State of the section currently executing.
struct Active {
    plan_idx: usize,
    kind: SectionKind,
    total_iters: usize,
    issued_iters: usize,
    version: usize,
    controller: Option<Controller>,
    interval_start: SimTime,
    snapshot: ProcStats,
    switch_requested: bool,
    finishing: bool,
    section_over: bool,
    start: SimTime,
    records: Vec<SampleRecord>,
}

impl<'a> Driver<'a> {
    /// Initialize section `plan_idx` if not already active. `totals` are
    /// machine-wide stats at `now` (the baseline for the first interval's
    /// overhead measurement).
    fn ensure_active(&mut self, plan_idx: usize, now: SimTime, totals: ProcStats) {
        let stale = match &self.active {
            Some(a) => a.plan_idx != plan_idx || a.section_over,
            None => true,
        };
        if !stale {
            return;
        }
        debug_assert!(
            self.active.as_ref().map_or(true, |a| a.section_over),
            "previous section must be finalized"
        );
        let entry = self.plan[plan_idx].clone();
        let init = match entry.kind {
            SectionKind::Serial => (0, 0, None, now, totals.clone()),
            SectionKind::Parallel => {
                let iters = self.app.begin_parallel(&entry.name);
                let versions = self.app.versions(&entry.name);
                assert!(!versions.is_empty(), "parallel section must have versions");
                match &self.mode {
                    RunMode::Static { policy, .. } => {
                        let v = self
                            .app
                            .version_for_policy(&entry.name, policy)
                            .unwrap_or_else(|| {
                                panic!(
                                    "section `{}` has no version for policy `{policy}` \
                                     (available: {versions:?})",
                                    entry.name
                                )
                            });
                        (iters, v, None, now, totals.clone())
                    }
                    RunMode::Dynamic(cfg) | RunMode::DynamicAsync(cfg) => {
                        let saved = self.controllers.remove(&entry.name);
                        let (mut ctl, carry) = match saved {
                            Some(s) => (s.controller, s.carry),
                            None => {
                                let mut cfg = cfg.clone();
                                cfg.num_policies = versions.len();
                                (Controller::new(cfg), None)
                            }
                        };
                        match (self.span_intervals, carry) {
                            (true, Some((elapsed, carried))) => {
                                // §4.4 extension: resume the interrupted
                                // interval. Backdate its start by the time
                                // already consumed, and re-base the stats
                                // snapshot so the work between executions
                                // (other sections) is excluded from the
                                // interval's measurement.
                                let version = ctl.current_policy();
                                let backdated = SimTime::from_nanos(
                                    now.as_nanos()
                                        .saturating_sub(elapsed.as_nanos() as u64),
                                );
                                let rebased = totals.since(&carried);
                                (iters, version, Some(ctl), backdated, rebased)
                            }
                            _ => {
                                let first = ctl.begin_section();
                                (iters, first, Some(ctl), now, totals)
                            }
                        }
                    }
                }
            }
        };
        let (total_iters, version, controller, interval_start, snapshot) = init;
        self.active = Some(Active {
            plan_idx,
            kind: entry.kind,
            total_iters,
            issued_iters: 0,
            version,
            controller,
            interval_start,
            snapshot,
            switch_requested: false,
            finishing: entry.kind == SectionKind::Serial,
            section_over: false,
            start: now,
            records: Vec::new(),
        });
    }

    /// Complete the current interval: measure, record, and ask the
    /// controller for the next policy. Shared by the synchronous (barrier
    /// leader) and asynchronous (detecting processor) switch paths.
    fn apply_transition(&mut self, now: SimTime, totals: ProcStats) {
        let Some(active) = self.active.as_mut() else { return };
        if let Some(ctl) = active.controller.as_mut() {
            let actual = now - active.interval_start;
            let sample = totals.since(&active.snapshot).overhead_sample();
            active.records.push(SampleRecord {
                at: now,
                phase: ctl.phase(),
                version: ctl.current_policy(),
                overhead: sample.total_overhead(),
                actual,
                partial: false,
            });
            let transition = ctl.complete_interval(sample);
            active.version = transition.policy();
            active.interval_start = now;
            active.snapshot = totals;
        }
    }

    /// Leader maintenance at a barrier: apply a pending switch and/or
    /// finalize the section. `totals` are machine-wide stats at `now`.
    fn leader_maintenance(&mut self, now: SimTime, totals: ProcStats) {
        let over = self.active.as_ref().map_or(true, |a| a.section_over);
        if over {
            return;
        }
        if self.active.as_ref().is_some_and(|a| a.switch_requested) {
            self.apply_transition(now, totals);
            if let Some(active) = self.active.as_mut() {
                active.switch_requested = false;
            }
        }
        let span = self.span_intervals;
        let Some(active) = self.active.as_mut() else { return };
        if active.finishing && active.issued_iters >= active.total_iters {
            let mut carry = None;
            if let Some(ctl) = active.controller.as_mut() {
                let actual = now - active.interval_start;
                if span {
                    // §4.4 extension: the in-flight interval continues in
                    // the section's next execution.
                    carry = Some((actual, totals.since(&active.snapshot)));
                } else {
                    // Record the final, partial interval of the section.
                    if !actual.is_zero() {
                        let sample = totals.since(&active.snapshot).overhead_sample();
                        active.records.push(SampleRecord {
                            at: now,
                            phase: ctl.phase(),
                            version: ctl.current_policy(),
                            overhead: sample.total_overhead(),
                            actual,
                            partial: true,
                        });
                    }
                    ctl.end_section();
                }
            }
            active.section_over = true;
            let entry = &self.plan[active.plan_idx];
            let name = entry.name.clone();
            self.reports.push(SectionExecution {
                plan_idx: active.plan_idx,
                name: name.clone(),
                kind: active.kind,
                start: active.start,
                end: now,
                iterations: active.total_iters,
                records: std::mem::take(&mut active.records),
            });
            // Persist the controller (and its policy history) for the next
            // execution of this section.
            if let Some(controller) = active.controller.take() {
                self.controllers.insert(name, SavedController { controller, carry });
            }
        }
    }
}

/// Per-processor process state.
enum PState {
    /// About to begin plan entry `pos` (or finish if out of entries).
    NextEntry,
    /// Draining the op queue; then go to `after`.
    Drain(AfterDrain),
    /// Poll the timer and check interval expiration (dynamic mode).
    PollTimer,
    /// Just returned from a barrier.
    AfterBarrier,
    /// Finished.
    Finished,
}

#[derive(Clone, Copy)]
enum AfterDrain {
    /// After a serial body: go to the section barrier.
    ToBarrier,
    /// After an iteration body: poll the timer (dynamic/instrumented) or
    /// fetch the next iteration directly.
    NextIteration { poll: bool },
}

struct AppProcess<'a> {
    driver: Rc<RefCell<Driver<'a>>>,
    proc_index: usize,
    pos: usize,
    state: PState,
    queue: VecDeque<Step>,
    barrier: BarrierId,
    instrument_cost: Duration,
    instrumented_static: bool,
}

impl<'a> AppProcess<'a> {
    /// Take the next loop iteration (or initiate the section-ending
    /// rendezvous), returning the next step.
    fn parallel_step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        let totals = ctx.total_stats();
        let mut driver = self.driver.borrow_mut();
        driver.ensure_active(self.pos, ctx.now(), totals);
        let dynamic = matches!(driver.mode, RunMode::Dynamic(_) | RunMode::DynamicAsync(_));
        let active = driver.active.as_mut().expect("active section");

        if active.switch_requested || active.finishing {
            self.state = PState::AfterBarrier;
            return Step::Barrier(self.barrier);
        }
        if active.issued_iters >= active.total_iters {
            active.finishing = true;
            self.state = PState::AfterBarrier;
            return Step::Barrier(self.barrier);
        }
        let iter = active.issued_iters;
        active.issued_iters += 1;
        let version = active.version;
        let section = driver.plan[self.pos].name.clone();
        let mut sink = OpSink::default();
        driver.app.emit_iteration(&section, version, iter, &mut sink);
        self.queue = sink.into_steps();
        let poll = dynamic || self.instrumented_static;
        if poll {
            ctx.charge(self.instrument_cost);
        }
        self.state = PState::Drain(AfterDrain::NextIteration { poll });
        drop(driver);
        self.drain(ctx)
    }

    /// Return the next queued step, or transition to the continuation.
    fn drain(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        if let Some(step) = self.queue.pop_front() {
            return step;
        }
        let after = match self.state {
            PState::Drain(a) => a,
            _ => unreachable!("drain called outside Drain state"),
        };
        match after {
            AfterDrain::ToBarrier => {
                self.state = PState::AfterBarrier;
                Step::Barrier(self.barrier)
            }
            AfterDrain::NextIteration { poll } => {
                if poll {
                    self.state = PState::PollTimer;
                    self.poll_timer(ctx)
                } else {
                    self.state = PState::NextEntry; // re-enters parallel_step
                    self.parallel_step(ctx)
                }
            }
        }
    }

    /// Potential switch point (§4.1): read the timer; request a switch if
    /// the current interval has expired.
    fn poll_timer(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        let t = ctx.read_timer();
        let totals = ctx.total_stats();
        let mut driver = self.driver.borrow_mut();
        let asynchronous = matches!(driver.mode, RunMode::DynamicAsync(_));
        let expired = driver.active.as_ref().is_some_and(|active| {
            active
                .controller
                .as_ref()
                .is_some_and(|ctl| t - active.interval_start >= ctl.target_interval())
        });
        if expired {
            if asynchronous {
                // Asynchronous switching: transition immediately, no
                // rendezvous; the other processors observe the new version
                // at their next iteration.
                driver.apply_transition(t, totals);
            } else if let Some(active) = driver.active.as_mut() {
                if !active.switch_requested {
                    active.switch_requested = true;
                }
            }
        }
        drop(driver);
        self.state = PState::NextEntry;
        Step::Yield
    }
}

impl<'a> Process for AppProcess<'a> {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        match self.state {
            PState::Finished => Step::Done,
            PState::Drain(_) => self.drain(ctx),
            PState::PollTimer => unreachable!("poll handled inline"),
            PState::AfterBarrier => {
                if ctx.is_barrier_leader() {
                    let totals = ctx.total_stats();
                    self.driver.borrow_mut().leader_maintenance(ctx.now(), totals);
                }
                // Decide whether the section continues or is over.
                let driver = self.driver.borrow();
                let over = match &driver.active {
                    Some(a) => a.plan_idx != self.pos || a.section_over,
                    None => true,
                };
                drop(driver);
                if over {
                    self.pos += 1;
                }
                self.state = PState::NextEntry;
                Step::Yield
            }
            PState::NextEntry => {
                let plan_len = self.driver.borrow().plan.len();
                if self.pos >= plan_len {
                    self.state = PState::Finished;
                    return Step::Done;
                }
                let kind = self.driver.borrow().plan[self.pos].kind;
                match kind {
                    SectionKind::Serial => {
                        let totals = ctx.total_stats();
                        let mut driver = self.driver.borrow_mut();
                        driver.ensure_active(self.pos, ctx.now(), totals);
                        if self.proc_index == 0 {
                            let section = driver.plan[self.pos].name.clone();
                            let mut sink = OpSink::default();
                            driver.app.emit_serial(&section, &mut sink);
                            self.queue = sink.into_steps();
                            drop(driver);
                            self.state = PState::Drain(AfterDrain::ToBarrier);
                            self.drain(ctx)
                        } else {
                            drop(driver);
                            self.state = PState::AfterBarrier;
                            Step::Barrier(self.barrier)
                        }
                    }
                    SectionKind::Parallel => self.parallel_step(ctx),
                }
            }
        }
    }
}

/// Run an application on the simulated machine.
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine (an application whose lock
/// usage deadlocks, for instance).
///
/// # Panics
///
/// Panics if `config.num_procs == 0`, or in static mode if some parallel
/// section has no version implementing the requested policy.
pub fn run_app<'a, A: SimApp + 'a>(app: A, config: &RunConfig) -> Result<AppReport, SimError> {
    run_app_impl(app, config)
}

/// Like [`run_app`], but borrows the application so the caller can inspect
/// its state (e.g. the program heap) after the run.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_ref<A: SimApp>(app: &mut A, config: &RunConfig) -> Result<AppReport, SimError> {
    run_app_impl(app, config)
}

fn run_app_impl<'a, A: SimApp + 'a>(app: A, config: &RunConfig) -> Result<AppReport, SimError> {
    assert!(config.num_procs > 0, "need at least one processor");
    let mut machine = Machine::new(config.machine);
    let mut app = app;
    app.setup(&mut machine);
    let barrier = machine.add_barrier(config.num_procs);
    let name = app.name().to_string();
    let plan = app.plan();
    let instrumented_static = match &config.mode {
        RunMode::Static { instrumented, .. } => *instrumented,
        RunMode::Dynamic(_) | RunMode::DynamicAsync(_) => false,
    };
    let driver = Rc::new(RefCell::new(Driver {
        app: Box::new(app),
        plan,
        mode: config.mode.clone(),
        active: None,
        reports: Vec::new(),
        controllers: std::collections::HashMap::new(),
        span_intervals: config.span_intervals,
    }));
    let processes: Vec<Box<dyn Process + '_>> = (0..config.num_procs)
        .map(|p| {
            Box::new(AppProcess {
                driver: Rc::clone(&driver),
                proc_index: p,
                pos: 0,
                state: PState::NextEntry,
                queue: VecDeque::new(),
                barrier,
                instrument_cost: config.instrument_cost,
                instrumented_static,
            }) as Box<dyn Process + '_>
        })
        .collect();
    let stats = machine.run(processes)?;
    let driver = Rc::try_unwrap(driver)
        .unwrap_or_else(|_| unreachable!("all processes dropped"))
        .into_inner();
    Ok(AppReport { app: name, stats, sections: driver.reports })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy app: one serial section and one parallel section with two
    /// versions. Version "original" locks per iteration 8 times; version
    /// "aggressive" locks once. Each processor updates a disjoint
    /// accumulator, so the aggressive version is strictly better.
    struct Toy {
        iterations: usize,
        locks: Vec<LockId>,
        sum: u64,
    }

    impl Toy {
        fn new(iterations: usize) -> Self {
            Toy { iterations, locks: Vec::new(), sum: 0 }
        }
    }

    impl SimApp for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn setup(&mut self, machine: &mut Machine) {
            let first = machine.add_locks(64);
            self.locks = (0..64).map(|i| LockId(first.index() + i)).collect();
        }
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::serial("init"), PlanEntry::parallel("work")]
        }
        fn versions(&self, _section: &str) -> Vec<String> {
            vec!["original".to_string(), "aggressive".to_string()]
        }
        fn emit_serial(&mut self, _section: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_millis(1));
        }
        fn begin_parallel(&mut self, _section: &str) -> usize {
            self.iterations
        }
        fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
            let lock = self.locks[iter % self.locks.len()];
            self.sum += iter as u64;
            match version {
                0 => {
                    for _ in 0..8 {
                        ops.acquire(lock);
                        ops.compute(Duration::from_micros(5));
                        ops.release(lock);
                    }
                }
                _ => {
                    ops.acquire(lock);
                    ops.compute(Duration::from_micros(40));
                    ops.release(lock);
                }
            }
        }
    }

    #[test]
    fn static_runs_complete_and_apply_all_iterations() {
        let report = run_app(Toy::new(100), &RunConfig::fixed(4, "original")).unwrap();
        assert_eq!(report.sections.len(), 2);
        assert_eq!(report.sections[1].iterations, 100);
        // 8 acquires per iteration.
        assert_eq!(report.stats.totals().acquires, 800);
    }

    #[test]
    fn aggressive_static_is_faster_here() {
        let orig = run_app(Toy::new(400), &RunConfig::fixed(4, "original")).unwrap();
        let aggr = run_app(Toy::new(400), &RunConfig::fixed(4, "aggressive")).unwrap();
        assert!(aggr.elapsed() < orig.elapsed());
        assert_eq!(aggr.stats.totals().acquires, 400);
    }

    #[test]
    fn dynamic_feedback_converges_to_aggressive() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(4_000), &RunConfig::dynamic(4, ctl)).unwrap();
        let work = report.section("work").next().unwrap();
        assert!(!work.records.is_empty(), "must have sampled");
        // Find the first production record: it must use version 1.
        let prod = work
            .records
            .iter()
            .find(|r| r.phase.is_production())
            .expect("reached production");
        assert_eq!(prod.version, 1, "records: {:?}", work.records);
        // Sampling must have measured both versions.
        let sampled: std::collections::BTreeSet<usize> = work
            .records
            .iter()
            .filter(|r| r.phase.is_sampling() && !r.partial)
            .map(|r| r.version)
            .collect();
        assert!(sampled.contains(&0) && sampled.contains(&1));
    }

    #[test]
    fn dynamic_close_to_best_static() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(50),
            ..ControllerConfig::default()
        };
        let best = run_app(Toy::new(4_000), &RunConfig::fixed(4, "aggressive")).unwrap();
        let dynamic = run_app(Toy::new(4_000), &RunConfig::dynamic(4, ctl)).unwrap();
        let ratio = dynamic.elapsed().as_secs_f64() / best.elapsed().as_secs_f64();
        assert!(ratio < 1.5, "dynamic {:?} vs best {:?}", dynamic.elapsed(), best.elapsed());
        // And it must beat the worst static version.
        let worst = run_app(Toy::new(4_000), &RunConfig::fixed(4, "original")).unwrap();
        assert!(dynamic.elapsed() < worst.elapsed());
    }

    #[test]
    fn single_processor_dynamic_works() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(500), &RunConfig::dynamic(1, ctl)).unwrap();
        assert_eq!(report.sections.len(), 2);
        assert_eq!(report.sections[1].iterations, 500);
    }

    #[test]
    fn serial_section_runs_on_proc_zero_only() {
        let report = run_app(Toy::new(10), &RunConfig::fixed(4, "aggressive")).unwrap();
        // Serial section compute (1ms) lands on proc 0.
        assert!(report.stats.procs[0].compute >= Duration::from_millis(1));
        // Other procs idled at the barrier during the serial section.
        assert!(report.stats.procs[1].barrier_wait >= Duration::from_millis(1));
    }

    #[test]
    fn effective_sampling_intervals_are_reported() {
        let ctl = ControllerConfig {
            // Tiny target: effective interval is bounded below by iteration size.
            target_sampling: Duration::from_nanos(1),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(2_000), &RunConfig::dynamic(2, ctl)).unwrap();
        let eff = report.mean_effective_sampling_intervals("work");
        assert!(eff.len() >= 2);
        for (v, d) in eff.iter().enumerate() {
            let d = d.unwrap_or_else(|| panic!("version {v} never sampled"));
            assert!(d > Duration::from_micros(30), "effective interval {d:?}");
        }
    }

    #[test]
    fn determinism_of_full_runs() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(300),
            target_production: Duration::from_millis(2),
            ..ControllerConfig::default()
        };
        let a = run_app(Toy::new(1_000), &RunConfig::dynamic(3, ctl.clone())).unwrap();
        let b = run_app(Toy::new(1_000), &RunConfig::dynamic(3, ctl)).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sections, b.sections);
    }

    #[test]
    fn instrumented_static_charges_polling() {
        let mut cfg = RunConfig::fixed(2, "aggressive");
        let plain = run_app(Toy::new(500), &cfg).unwrap();
        cfg.mode = RunMode::Static { policy: "aggressive".into(), instrumented: true };
        let instr = run_app(Toy::new(500), &cfg).unwrap();
        assert!(instr.stats.totals().timer_reads > 0);
        assert!(instr.elapsed() >= plain.elapsed());
        // The paper's observation: instrumentation overhead is small.
        let ratio = instr.elapsed().as_secs_f64() / plain.elapsed().as_secs_f64();
        assert!(ratio < 1.6, "instrumentation ratio {ratio}");
    }
}

#[cfg(test)]
mod span_tests {
    use super::*;

    /// A two-execution section whose per-execution work is smaller than a
    /// sampling phase: without spanning, each execution restarts sampling;
    /// with spanning, the second execution resumes mid-phase.
    struct TinySections {
        lock: Option<LockId>,
    }

    impl SimApp for TinySections {
        fn name(&self) -> &str {
            "tiny"
        }
        fn setup(&mut self, machine: &mut Machine) {
            self.lock = Some(machine.add_lock());
        }
        fn plan(&self) -> Vec<PlanEntry> {
            vec![
                PlanEntry::parallel("work"),
                PlanEntry::serial("between"),
                PlanEntry::parallel("work"),
                PlanEntry::serial("between"),
                PlanEntry::parallel("work"),
            ]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            vec!["a".into(), "b".into()]
        }
        fn emit_serial(&mut self, _s: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(200));
        }
        fn begin_parallel(&mut self, _s: &str) -> usize {
            40
        }
        fn emit_iteration(&mut self, _s: &str, version: usize, _iter: usize, ops: &mut OpSink) {
            let lock = self.lock.expect("setup ran");
            // Version a locks 4 times per iteration, version b once.
            let n = if version == 0 { 4 } else { 1 };
            for _ in 0..n {
                ops.acquire(lock);
                ops.compute(Duration::from_micros(2));
                ops.release(lock);
            }
            ops.compute(Duration::from_micros(10));
        }
    }

    fn ctl() -> ControllerConfig {
        ControllerConfig {
            num_policies: 2,
            // Each sampling interval spans roughly one whole execution.
            target_sampling: Duration::from_micros(400),
            target_production: Duration::from_millis(50),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn spanning_continues_phases_across_executions() {
        let mut cfg = RunConfig::dynamic(2, ctl());
        cfg.span_intervals = true;
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // With spanning, no partial intervals are recorded and sampling
        // continues across executions: the distinct versions both get
        // sampled even though one execution fits only one interval.
        let records: Vec<&SampleRecord> = report
            .section("work")
            .flat_map(|e| e.records.iter())
            .collect();
        assert!(records.iter().all(|r| !r.partial), "{records:?}");
        let sampled: std::collections::BTreeSet<usize> = records
            .iter()
            .filter(|r| r.phase.is_sampling())
            .map(|r| r.version)
            .collect();
        assert!(sampled.len() >= 2, "both versions sampled across executions: {records:?}");
    }

    #[test]
    fn without_spanning_each_execution_resamples() {
        let cfg = RunConfig::dynamic(2, ctl());
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // Every execution begins its own sampling phase with version 0.
        for exec in report.section("work") {
            let first = exec.records.first().expect("records");
            assert!(first.phase.is_sampling());
            assert_eq!(first.version, 0);
        }
    }

    #[test]
    fn spanning_excludes_inter_section_work_from_intervals() {
        let mut cfg = RunConfig::dynamic(2, ctl());
        cfg.span_intervals = true;
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // Every completed sampling interval's measured execution time must
        // be of the order of the interval itself — if the serial sections
        // in between leaked into the measurement, overheads would be
        // diluted below any plausible value for version 0 (4 lock pairs
        // per ~18us iteration).
        let v0_sampling: Vec<f64> = report
            .section("work")
            .flat_map(|e| e.records.iter())
            .filter(|r| r.phase.is_sampling() && r.version == 0)
            .map(|r| r.overhead)
            .collect();
        assert!(!v0_sampling.is_empty());
        for o in v0_sampling {
            assert!(o > 0.05, "overhead diluted: {o}");
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    struct Tiny {
        iters: usize,
    }
    impl SimApp for Tiny {
        fn name(&self) -> &str {
            "tiny-edge"
        }
        fn setup(&mut self, _machine: &mut Machine) {}
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::parallel("work"), PlanEntry::serial("tail")]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            vec!["only".to_string()]
        }
        fn emit_serial(&mut self, _s: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(5));
        }
        fn begin_parallel(&mut self, _s: &str) -> usize {
            self.iters
        }
        fn emit_iteration(&mut self, _s: &str, _v: usize, _i: usize, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(10));
        }
    }

    #[test]
    fn zero_iteration_parallel_section_completes() {
        for mode in [RunMode::static_policy("only"), RunMode::Dynamic(ControllerConfig {
            num_policies: 1,
            ..ControllerConfig::default()
        })] {
            let cfg = RunConfig {
                num_procs: 4,
                mode,
                machine: MachineConfig::default(),
                instrument_cost: Duration::ZERO,
                span_intervals: false,
            };
            let report = run_app(Tiny { iters: 0 }, &cfg).expect("runs");
            assert_eq!(report.sections.len(), 2);
            assert_eq!(report.sections[0].iterations, 0);
        }
    }

    #[test]
    fn more_processors_than_iterations() {
        let report =
            run_app(Tiny { iters: 3 }, &RunConfig::fixed(8, "only")).expect("runs");
        assert_eq!(report.sections[0].iterations, 3);
        // Three processors did the work; all eight finished.
        assert_eq!(report.stats.procs.len(), 8);
    }

    #[test]
    fn single_iteration_dynamic_section() {
        let cfg = RunConfig::dynamic(
            4,
            ControllerConfig { num_policies: 1, ..ControllerConfig::default() },
        );
        let report = run_app(Tiny { iters: 1 }, &cfg).expect("runs");
        assert_eq!(report.sections[0].iterations, 1);
    }
}
