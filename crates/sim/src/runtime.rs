//! The dynamic feedback runtime for simulated applications.
//!
//! The paper's compiler generates code that executes an alternating
//! sequence of serial and parallel sections; within each parallel section
//! the generated code uses dynamic feedback to choose the best
//! synchronization optimization policy (§4). This module is that generated
//! runtime, targeting the simulated multiprocessor:
//!
//! * an application implements [`SimApp`]: a *plan* of serial and parallel
//!   sections, and per-iteration code for each policy *version* of each
//!   parallel section;
//! * [`run_app`] executes the plan on `num_procs` simulated processors,
//!   either with one statically chosen version ([`RunMode::Static`]) or with
//!   dynamic feedback ([`RunMode::Dynamic`]);
//! * in dynamic mode, every processor polls the timer at each loop
//!   iteration (the potential switch points of §4.1); when the target
//!   interval expires the processors rendezvous at a barrier and switch
//!   policies *synchronously*, with the last arriver performing the
//!   controller transition.
//!
//! Iteration bodies are emitted as [`Step`] sequences through an
//! [`OpSink`]. Application state is updated when an iteration is *emitted*;
//! the simulated timing of its lock operations is resolved later by the
//! event engine. This is sound for the programs the paper targets: the
//! parallelized operations commute, so their results are independent of the
//! simulated interleaving, while their *costs* (which do depend on the
//! interleaving) are fully modeled.

use crate::config::MachineConfig;
use crate::faults::FaultPlan;
use crate::machine::{Machine, SimError};
use crate::process::{BarrierId, LockId, ProcCtx, Process, Step};
use crate::stats::{MachineStats, ProcStats};
use crate::time::SimTime;
use dynfb_core::controller::{Controller, ControllerConfig, HealthEvent, Phase};
use dynfb_core::journal::{self, EvidenceTracker, JournalSink, NullJournal};
use dynfb_core::metrics::{MetricsSink, NoMetrics};
use dynfb_core::overhead::OverheadSample;
use dynfb_core::trace::{self, NullSink, SwitchReason, TraceEvent, TraceSink};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Collects the steps of one loop iteration (or serial section).
///
/// Consecutive compute charges are merged into a single [`Step::Compute`]
/// so emission granularity does not affect event counts.
#[derive(Debug, Default)]
pub struct OpSink {
    steps: Vec<Step>,
    pending: Duration,
}

impl OpSink {
    /// Append useful computation.
    pub fn compute(&mut self, d: Duration) {
        self.pending += d;
    }

    /// Append `n` equal compute charges in one accumulation. Exactly
    /// equivalent to calling [`compute`](OpSink::compute) `n` times
    /// (duration arithmetic is exact in nanoseconds), but lets a batched
    /// executor charge a whole basic block with one call.
    pub fn compute_batch(&mut self, d: Duration, n: u32) {
        self.pending += d * n;
    }

    /// Append a lock acquire.
    pub fn acquire(&mut self, lock: LockId) {
        self.flush();
        self.steps.push(Step::Acquire(lock));
    }

    /// Append a lock release.
    pub fn release(&mut self, lock: LockId) {
        self.flush();
        self.steps.push(Step::Release(lock));
    }

    fn flush(&mut self) {
        if !self.pending.is_zero() {
            self.steps.push(Step::Compute(self.pending));
            self.pending = Duration::ZERO;
        }
    }

    /// Finalize into the step sequence the machine will execute. Public so
    /// differential tests can compare the exact steps two execution tiers
    /// emit; the runtime itself also drains sinks through this.
    #[must_use]
    pub fn into_steps(mut self) -> VecDeque<Step> {
        self.flush();
        self.steps.into()
    }
}

/// Whether a plan entry is a serial or a parallel section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Executed by processor 0 only; the others wait at the section barrier
    /// (this idle time is what limits speedup, as in the paper's §6.1).
    Serial,
    /// A parallel loop executed by all processors.
    Parallel,
}

/// One entry in an application's execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// Section name; repeated entries with the same name are repeated
    /// executions of the same section (and share version structure).
    pub name: String,
    /// Serial or parallel.
    pub kind: SectionKind,
}

impl PlanEntry {
    /// Convenience constructor for a serial section.
    #[must_use]
    pub fn serial(name: &str) -> Self {
        PlanEntry { name: name.to_string(), kind: SectionKind::Serial }
    }

    /// Convenience constructor for a parallel section.
    #[must_use]
    pub fn parallel(name: &str) -> Self {
        PlanEntry { name: name.to_string(), kind: SectionKind::Parallel }
    }
}

/// A multi-version application that runs on the simulated machine.
///
/// Implementations are usually produced by the `dynfb-compiler` crate from
/// mini-language sources, but can also be written by hand in Rust.
pub trait SimApp {
    /// Application name (for reports).
    fn name(&self) -> &str;

    /// Create the locks and other machine resources the app needs.
    fn setup(&mut self, machine: &mut Machine);

    /// The sequence of section executions.
    fn plan(&self) -> Vec<PlanEntry>;

    /// Names of the *distinct* code versions of a parallel section, ordered
    /// from least to most aggressive. When two policies generate identical
    /// code for a section the compiler emits a single shared version, so
    /// this list can be shorter than the global policy list (§6.2: the
    /// Water INTERF section has identical Bounded and Aggressive code).
    fn versions(&self, section: &str) -> Vec<String>;

    /// Map a global policy name (e.g. `"aggressive"`) to the version index
    /// of this section implementing it, or `None` if unknown.
    fn version_for_policy(&self, section: &str, policy: &str) -> Option<usize> {
        self.versions(section).iter().position(|v| v.split('+').any(|p| p == policy))
    }

    /// Emit the body of a serial section.
    fn emit_serial(&mut self, section: &str, ops: &mut OpSink);

    /// Called once at the start of each execution of a parallel section;
    /// returns the number of loop iterations.
    fn begin_parallel(&mut self, section: &str) -> usize;

    /// Emit the body of iteration `iter` of the given parallel section
    /// under the given version.
    fn emit_iteration(&mut self, section: &str, version: usize, iter: usize, ops: &mut OpSink);
}

impl<T: SimApp + ?Sized> SimApp for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn setup(&mut self, machine: &mut Machine) {
        (**self).setup(machine);
    }
    fn plan(&self) -> Vec<PlanEntry> {
        (**self).plan()
    }
    fn versions(&self, section: &str) -> Vec<String> {
        (**self).versions(section)
    }
    fn version_for_policy(&self, section: &str, policy: &str) -> Option<usize> {
        (**self).version_for_policy(section, policy)
    }
    fn emit_serial(&mut self, section: &str, ops: &mut OpSink) {
        (**self).emit_serial(section, ops);
    }
    fn begin_parallel(&mut self, section: &str) -> usize {
        (**self).begin_parallel(section)
    }
    fn emit_iteration(&mut self, section: &str, version: usize, iter: usize, ops: &mut OpSink) {
        (**self).emit_iteration(section, version, iter, ops);
    }
}

/// How the runtime chooses versions.
#[derive(Debug, Clone)]
pub enum RunMode {
    /// Every parallel section runs the version implementing this policy
    /// (e.g. `"original"`, `"bounded"`, `"aggressive"`, `"serial"`).
    /// `instrumented` adds the per-iteration instrumentation and timer
    /// polling that the dynamic version performs, to measure the
    /// instrumentation cost (§4.3).
    Static {
        /// Global policy name.
        policy: String,
        /// Whether to charge instrumentation/polling costs anyway.
        instrumented: bool,
    },
    /// Dynamic feedback with this controller configuration per section
    /// (its `num_policies` is overridden by each section's version count).
    Dynamic(ControllerConfig),
    /// Dynamic feedback with *asynchronous* switching: when an interval
    /// expires, the detecting processor performs the controller transition
    /// immediately and the others pick the new version up at their next
    /// iteration — no rendezvous. Overhead measurements are then polluted
    /// by mixed-version execution; the paper chooses synchronous switching
    /// precisely to avoid this (§4.1). Provided for the ablation study.
    DynamicAsync(ControllerConfig),
}

impl RunMode {
    /// Static, uninstrumented execution of `policy`.
    #[must_use]
    pub fn static_policy(policy: &str) -> Self {
        RunMode::Static { policy: policy.to_string(), instrumented: false }
    }
}

/// Configuration for [`run_app`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of simulated processors.
    pub num_procs: usize,
    /// Version selection mode.
    pub mode: RunMode,
    /// Machine cost model.
    pub machine: MachineConfig,
    /// Instrumentation cost charged per loop iteration when running
    /// instrumented (counter updates; the timer read is charged separately).
    pub instrument_cost: Duration,
    /// Allow sampling and production intervals to span multiple executions
    /// of the same parallel section (the improvement the paper proposes in
    /// §4.4 for sections too short to amortize a full sampling phase).
    /// When enabled, a section execution that ends mid-interval carries the
    /// interval's elapsed time and accumulated measurements into the
    /// section's next execution instead of restarting the sampling phase.
    pub span_intervals: bool,
    /// Fault-injection plan applied to the machine for the whole run. The
    /// empty default plan perturbs nothing.
    pub faults: FaultPlan,
    /// Stuck-sampling watchdog. With `Some(k)`, a *sampling* interval that
    /// has run `k×` longer (in fault-immune simulation time) than its
    /// target without being detected as complete — e.g. because a timer
    /// fault froze the observed clock — aborts the sampling phase and
    /// enters production with the best measurement so far. `None` (the
    /// default) disables the watchdog; effective intervals legitimately
    /// exceed tiny targets by orders of magnitude, so it is opt-in.
    pub sampling_watchdog: Option<u32>,
}

impl RunConfig {
    /// A static run of `policy` on `num_procs` processors.
    #[must_use]
    pub fn fixed(num_procs: usize, policy: &str) -> Self {
        RunConfig {
            num_procs,
            mode: RunMode::static_policy(policy),
            machine: MachineConfig::default(),
            instrument_cost: Duration::from_nanos(100),
            span_intervals: false,
            faults: FaultPlan::default(),
            sampling_watchdog: None,
        }
    }

    /// A dynamic feedback run on `num_procs` processors.
    #[must_use]
    pub fn dynamic(num_procs: usize, controller: ControllerConfig) -> Self {
        RunConfig {
            num_procs,
            mode: RunMode::Dynamic(controller),
            machine: MachineConfig::default(),
            instrument_cost: Duration::from_nanos(100),
            span_intervals: false,
            faults: FaultPlan::default(),
            sampling_watchdog: None,
        }
    }

    /// Builder-style: attach a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style: enable the stuck-sampling watchdog at `k×` budget.
    #[must_use]
    pub fn with_watchdog(mut self, k: u32) -> Self {
        self.sampling_watchdog = Some(k);
        self
    }
}

/// One completed interval, as recorded at a switch barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// Virtual time when the interval completed.
    pub at: SimTime,
    /// Phase the interval belonged to.
    pub phase: Phase,
    /// Version that was executing.
    pub version: usize,
    /// Measured total overhead over the interval.
    pub overhead: f64,
    /// Actual (effective) interval length.
    pub actual: Duration,
    /// True if the section ended before the interval reached its target
    /// (the record is a partial interval).
    pub partial: bool,
    /// True if a processor crash-stopped during the interval. The measured
    /// overhead is still reported here for post-mortems, but the controller
    /// discarded it (a dying processor's forced lock releases and vanished
    /// work distort the measurement) and fell back instead of trusting it.
    pub poisoned: bool,
}

/// The record of one execution of one section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionExecution {
    /// Index into the plan.
    pub plan_idx: usize,
    /// Section name.
    pub name: String,
    /// Serial or parallel.
    pub kind: SectionKind,
    /// Virtual time the section started.
    pub start: SimTime,
    /// Virtual time the section ended (all processors passed the final
    /// barrier).
    pub end: SimTime,
    /// Number of loop iterations executed (parallel sections).
    pub iterations: usize,
    /// Completed intervals (dynamic mode only).
    pub records: Vec<SampleRecord>,
}

impl SectionExecution {
    /// Duration of this execution.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Result of running an application.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Application name.
    pub app: String,
    /// Full machine statistics.
    pub stats: MachineStats,
    /// Per-section execution records, in plan order.
    pub sections: Vec<SectionExecution>,
}

impl AppReport {
    /// Total virtual execution time.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.stats.elapsed()
    }

    /// Executions of the named section.
    pub fn section<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SectionExecution> + 'a {
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// Mean duration of the named section's executions.
    #[must_use]
    pub fn mean_section_duration(&self, name: &str) -> Option<Duration> {
        let durs: Vec<Duration> = self.section(name).map(SectionExecution::duration).collect();
        if durs.is_empty() {
            return None;
        }
        Some(durs.iter().sum::<Duration>() / u32::try_from(durs.len()).unwrap_or(u32::MAX))
    }

    /// Mean *effective sampling interval* per version of the named section:
    /// the mean actual length of completed sampling intervals (§4.1,
    /// Tables 5/11/12 of the paper). Indexed by version.
    #[must_use]
    pub fn mean_effective_sampling_intervals(&self, name: &str) -> Vec<Option<Duration>> {
        let mut sums: Vec<(Duration, u32)> = Vec::new();
        for exec in self.section(name) {
            for r in &exec.records {
                if r.phase.is_sampling() && !r.partial {
                    if sums.len() <= r.version {
                        sums.resize(r.version + 1, (Duration::ZERO, 0));
                    }
                    sums[r.version].0 += r.actual;
                    sums[r.version].1 += 1;
                }
            }
        }
        sums.into_iter().map(|(total, n)| if n == 0 { None } else { Some(total / n) }).collect()
    }
}

/// Shared per-run state (single-threaded simulation: `Rc<RefCell>`).
struct Driver<'a, S: TraceSink, J: JournalSink> {
    app: Box<dyn SimApp + 'a>,
    plan: Vec<PlanEntry>,
    mode: RunMode,
    num_procs: usize,
    /// Trace collector. Events are stamped with *virtual* time, so for a
    /// given app + config the event stream is byte-deterministic. The
    /// default [`NullSink`] monomorphizes every emission away.
    sink: S,
    /// Decision flight recorder. Records are stamped with virtual time and
    /// carry the full evidence snapshot behind each controller decision;
    /// the default [`NullJournal`] monomorphizes every emission away.
    journal: J,
    active: Option<Active>,
    reports: Vec<SectionExecution>,
    /// Controllers persisted per section name across executions, so the
    /// policy history survives (enables the §4.5 best-first ordering and
    /// acceptance cut-off on later executions of the same section).
    controllers: std::collections::HashMap<String, SavedController>,
    /// §4.4 extension: carry in-flight intervals across executions.
    span_intervals: bool,
    /// Stuck-sampling watchdog factor ([`RunConfig::sampling_watchdog`]).
    sampling_watchdog: Option<u32>,
    /// First unrecoverable runtime error. Once set, every processor winds
    /// down at its next step and [`run_app`] returns this error.
    error: Option<SimError>,
    /// Run-wide tally of health-machine activity, published as named
    /// metrics counters when the run completes.
    counts: HealthCounts,
}

/// Counters for the failure-domain layer, accumulated across all sections
/// and controllers of a run. Only non-zero counters are published, so
/// healthy runs keep byte-identical profiles.
#[derive(Debug, Default, Clone, Copy)]
struct HealthCounts {
    suspected: u64,
    quarantined: u64,
    rehabilitated: u64,
    cleared: u64,
    probed: u64,
    crash_fallbacks: u64,
    watchdog_soft_failures: u64,
    /// Production intervals ended early by a change-point alarm
    /// (event-driven trigger only).
    resample_alarms: u64,
    /// Production intervals that ran to the quiescence bound with no alarm
    /// (event-driven trigger only).
    resample_quiescent: u64,
}

impl HealthCounts {
    fn tally(&mut self, events: &[HealthEvent]) {
        for ev in events {
            match ev {
                HealthEvent::Suspected(_) => self.suspected += 1,
                HealthEvent::Quarantined { .. } => self.quarantined += 1,
                HealthEvent::Probing(_) => self.probed += 1,
                HealthEvent::Rehabilitated(_) => self.rehabilitated += 1,
                HealthEvent::Cleared(_) => self.cleared += 1,
            }
        }
    }
}

/// A controller saved between executions of one section, together with the
/// in-flight interval it was carrying when the section ended (span mode).
struct SavedController {
    controller: Controller,
    /// `(elapsed, accumulated stats)` of the interrupted interval.
    carry: Option<(Duration, ProcStats)>,
    /// Measurement-age tracker for journal evidence (`None` when the
    /// journal is disabled).
    evidence: Option<EvidenceTracker>,
}

/// State of the section currently executing.
struct Active {
    plan_idx: usize,
    kind: SectionKind,
    total_iters: usize,
    issued_iters: usize,
    version: usize,
    controller: Option<Controller>,
    interval_start: SimTime,
    /// The interval start on the *observed* (fault-distorted) clock.
    /// Expiry detection compares observed poll timestamps against this —
    /// both ends on the same clock, exactly as the generated code's stored
    /// timer read would — while `interval_start` stays fault-immune for
    /// the watchdog and the records. Mixing the clocks would mis-age every
    /// interval once a transient drift window has shifted the observed
    /// clock away from simulation time.
    interval_start_observed: SimTime,
    snapshot: ProcStats,
    /// Observed-clock anchor of the current detector-signal window
    /// (event-driven trigger): one waiting-proportion observation is fed
    /// to the controller per `target_sampling` of observed production time.
    signal_at: SimTime,
    /// Machine-wide stats at `signal_at`, the baseline for the window's
    /// waiting proportion.
    signal_snapshot: ProcStats,
    /// Number of crash-stopped processors when the interval started; a
    /// higher count at interval end means the measurement is poisoned.
    crashed_snapshot: usize,
    switch_requested: bool,
    /// The pending switch is a watchdog abort, not a normal transition.
    abort_requested: bool,
    finishing: bool,
    section_over: bool,
    start: SimTime,
    records: Vec<SampleRecord>,
    /// Measurement-age tracker for journal evidence; `Some` exactly when
    /// the journal is enabled and the section runs a controller.
    evidence: Option<EvidenceTracker>,
}

impl<'a, S: TraceSink, J: JournalSink> Driver<'a, S, J> {
    /// Initialize section `plan_idx` if not already active. `totals` are
    /// machine-wide stats at `now` (the baseline for the first interval's
    /// overhead measurement).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SimError`] for an application whose section has no
    /// versions, or (in static mode) no version implementing the requested
    /// policy. The caller records the error on the driver and winds down.
    fn ensure_active(
        &mut self,
        plan_idx: usize,
        now: SimTime,
        observed: SimTime,
        totals: ProcStats,
        crashed: usize,
    ) -> Result<(), SimError> {
        let stale = match &self.active {
            Some(a) => a.plan_idx != plan_idx || a.section_over,
            None => true,
        };
        if !stale {
            return Ok(());
        }
        debug_assert!(
            self.active.as_ref().is_none_or(|a| a.section_over),
            "previous section must be finalized"
        );
        let entry = self.plan[plan_idx].clone();
        let init = match entry.kind {
            SectionKind::Serial => (0, 0, None, now, observed, totals, None),
            SectionKind::Parallel => {
                let iters = self.app.begin_parallel(&entry.name);
                let versions = self.app.versions(&entry.name);
                if versions.is_empty() {
                    return Err(SimError::NoVersions { section: entry.name });
                }
                match &self.mode {
                    RunMode::Static { policy, .. } => {
                        let Some(v) = self.app.version_for_policy(&entry.name, policy) else {
                            return Err(SimError::UnknownPolicy {
                                section: entry.name,
                                policy: policy.clone(),
                                available: versions,
                            });
                        };
                        (iters, v, None, now, observed, totals, None)
                    }
                    RunMode::Dynamic(cfg) | RunMode::DynamicAsync(cfg) => {
                        let saved = self.controllers.remove(&entry.name);
                        let (mut ctl, carry, tracker) = match saved {
                            Some(s) => (s.controller, s.carry, s.evidence),
                            None => {
                                let mut cfg = cfg.clone();
                                cfg.num_policies = versions.len();
                                let tracker = if J::ENABLED {
                                    Some(EvidenceTracker::new(versions.len()))
                                } else {
                                    None
                                };
                                (Controller::new(cfg), None, tracker)
                            }
                        };
                        match (self.span_intervals, carry) {
                            (true, Some((elapsed, carried))) => {
                                // §4.4 extension: resume the interrupted
                                // interval. Backdate its start by the time
                                // already consumed, and re-base the stats
                                // snapshot so the work between executions
                                // (other sections) is excluded from the
                                // interval's measurement.
                                let version = ctl.current_policy();
                                let backdate = |t: SimTime| {
                                    SimTime::from_nanos(
                                        t.as_nanos().saturating_sub(elapsed.as_nanos() as u64),
                                    )
                                };
                                let rebased = totals.since(&carried);
                                (
                                    iters,
                                    version,
                                    Some(ctl),
                                    backdate(now),
                                    backdate(observed),
                                    rebased,
                                    tracker,
                                )
                            }
                            _ => {
                                let first = ctl.begin_section();
                                // Starting a sampling phase may schedule a
                                // rehabilitation probe.
                                let health = ctl.drain_health_events();
                                self.counts.tally(&health);
                                if S::ENABLED {
                                    trace::record_health_events(
                                        &mut self.sink,
                                        now.as_duration(),
                                        &health,
                                    );
                                    trace::record_phase_start(
                                        &mut self.sink,
                                        now.as_duration(),
                                        ctl.phase(),
                                    );
                                }
                                if J::ENABLED {
                                    if let Some(tr) = tracker.as_ref() {
                                        let ev = tr.evidence(
                                            &ctl,
                                            now.as_duration(),
                                            None,
                                            Duration::ZERO,
                                        );
                                        journal::record_health(
                                            &mut self.journal,
                                            now.as_duration(),
                                            &health,
                                            &ev,
                                        );
                                    }
                                }
                                (iters, first, Some(ctl), now, observed, totals, tracker)
                            }
                        }
                    }
                }
            }
        };
        let (
            total_iters,
            version,
            controller,
            interval_start,
            interval_start_observed,
            snapshot,
            evidence,
        ) = init;
        self.active = Some(Active {
            plan_idx,
            kind: entry.kind,
            total_iters,
            issued_iters: 0,
            version,
            controller,
            interval_start,
            interval_start_observed,
            snapshot,
            signal_at: interval_start_observed,
            signal_snapshot: snapshot,
            crashed_snapshot: crashed,
            switch_requested: false,
            abort_requested: false,
            finishing: entry.kind == SectionKind::Serial,
            section_over: false,
            start: now,
            records: Vec::new(),
            evidence,
        });
        Ok(())
    }

    /// Complete the current interval: measure, record, and ask the
    /// controller for the next policy. Shared by the synchronous (barrier
    /// leader) and asynchronous (detecting processor) switch paths.
    fn apply_transition(
        &mut self,
        now: SimTime,
        observed: SimTime,
        totals: ProcStats,
        crashed: usize,
    ) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if let Some(ctl) = active.controller.as_mut() {
            // Saturating: async-mode timestamps are observed times, which
            // fault injection can make non-monotone.
            let actual = now.saturating_since(active.interval_start);
            let sample = totals.since(&active.snapshot).overhead_sample();
            let before = ctl.phase();
            let overhead = sample.total_overhead();
            // A processor that crash-stopped mid-interval poisons the
            // measurement: its in-flight work vanished and its held locks
            // were force-released at zero cost. Report the raw number for
            // post-mortems but feed the controller an unusable sample, so
            // the interval records nothing (crash fallback) rather than a
            // deceptively low overhead.
            let poisoned = crashed > active.crashed_snapshot;
            let finished = ctl.current_policy();
            active.records.push(SampleRecord {
                at: now,
                phase: before,
                version: finished,
                overhead,
                actual,
                partial: false,
                poisoned,
            });
            // Event-driven bookkeeping must be read before the transition
            // resets the controller's per-phase detector state.
            let ending_production = before.is_production();
            let alarmed = ending_production && ctl.alarm_pending();
            let quiescent = ending_production && ctl.event_driven() && !alarmed;
            let chart = if alarmed { ctl.detector_snapshot() } else { None };
            let fed = if poisoned { OverheadSample::default() } else { sample };
            let transition = ctl.complete_interval(fed);
            let next = transition.policy();
            active.version = next;
            active.interval_start = now;
            active.interval_start_observed = observed;
            active.snapshot = totals;
            active.signal_at = observed;
            active.signal_snapshot = totals;
            active.crashed_snapshot = crashed;
            let health = ctl.drain_health_events();
            self.counts.tally(&health);
            if poisoned {
                self.counts.crash_fallbacks += 1;
            }
            if alarmed {
                self.counts.resample_alarms += 1;
            }
            if quiescent {
                self.counts.resample_quiescent += 1;
            }
            if S::ENABLED || J::ENABLED {
                let reason = if poisoned {
                    Some(SwitchReason::CrashFallback)
                } else if alarmed {
                    Some(SwitchReason::ChangePoint)
                } else if health
                    .iter()
                    .any(|e| matches!(e, HealthEvent::Rehabilitated(p) if *p == next))
                {
                    Some(SwitchReason::Rehabilitated)
                } else {
                    None
                };
                if S::ENABLED {
                    trace::record_health_events(&mut self.sink, now.as_duration(), &health);
                    if let Some(snap) = chart {
                        self.sink.record(
                            now.as_duration(),
                            TraceEvent::ChangePointAlarm {
                                policy: active.records.last().map_or(0, |r| r.version),
                                score: snap.score,
                                threshold: snap.threshold,
                                observations: snap.observations,
                            },
                        );
                    }
                    trace::record_transition_with(
                        &mut self.sink,
                        now.as_duration(),
                        before,
                        overhead,
                        actual,
                        false,
                        ctl.phase(),
                        false,
                        reason,
                    );
                }
                if J::ENABLED {
                    if let Some(tr) = active.evidence.as_mut() {
                        if !poisoned {
                            tr.note_measurement(finished, now.as_duration());
                        }
                        let ev = tr.evidence(ctl, now.as_duration(), Some(overhead), actual);
                        journal::record_health(&mut self.journal, now.as_duration(), &health, &ev);
                        if chart.is_some() {
                            journal::record_alarm(
                                &mut self.journal,
                                now.as_duration(),
                                finished,
                                ev.clone(),
                            );
                        }
                        journal::record_switch(
                            &mut self.journal,
                            now.as_duration(),
                            before,
                            ctl.phase(),
                            false,
                            reason,
                            ev,
                        );
                    }
                }
            }
        }
    }

    /// Watchdog escape hatch: the current sampling interval never
    /// completed (a timer fault starved expiry detection). Record it as
    /// partial and force the controller into production with the best
    /// measurement so far.
    fn apply_abort(&mut self, now: SimTime, observed: SimTime, totals: ProcStats, crashed: usize) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if let Some(ctl) = active.controller.as_mut() {
            if ctl.phase().is_sampling() {
                let actual = now.saturating_since(active.interval_start);
                let sample = totals.since(&active.snapshot).overhead_sample();
                let before = ctl.phase();
                let stuck = ctl.current_policy();
                let overhead = sample.total_overhead();
                active.records.push(SampleRecord {
                    at: now,
                    phase: before,
                    version: stuck,
                    overhead,
                    actual,
                    partial: true,
                    poisoned: crashed > active.crashed_snapshot,
                });
                // The stuck interval overran its target; deduct the overrun
                // from the next production interval so the cycle keeps the
                // configured cadence and the driver's timer math agrees
                // with `target_interval`.
                let overrun = actual.saturating_sub(ctl.target_interval());
                let transition = ctl.abort_to_production_carrying(overrun);
                active.version = transition.policy();
                // A watchdog abort is a soft failure of the policy whose
                // interval never completed: first offense marks it suspect,
                // repeat offenses quarantine it (with backoff
                // rehabilitation under the default RehabPolicy). With no
                // survivor left the controller degrades internally; the
                // simulation keeps running the safest fallback.
                self.counts.watchdog_soft_failures += 1;
                active.version =
                    ctl.report_soft_failure(stuck).unwrap_or_else(|_| ctl.safest_policy());
                let health = ctl.drain_health_events();
                self.counts.tally(&health);
                if S::ENABLED {
                    trace::record_health_events(&mut self.sink, now.as_duration(), &health);
                    trace::record_transition(
                        &mut self.sink,
                        now.as_duration(),
                        before,
                        overhead,
                        actual,
                        true,
                        ctl.phase(),
                        true,
                    );
                }
                if J::ENABLED {
                    if let Some(tr) = active.evidence.as_mut() {
                        let ev = tr.evidence(ctl, now.as_duration(), Some(overhead), actual);
                        journal::record_health(&mut self.journal, now.as_duration(), &health, &ev);
                        journal::record_switch(
                            &mut self.journal,
                            now.as_duration(),
                            before,
                            ctl.phase(),
                            true,
                            None,
                            ev,
                        );
                    }
                }
            }
            active.interval_start = now;
            active.interval_start_observed = observed;
            active.snapshot = totals;
            active.signal_at = observed;
            active.signal_snapshot = totals;
            active.crashed_snapshot = crashed;
        }
    }

    /// Leader maintenance at a barrier: apply a pending switch and/or
    /// finalize the section. `totals` are machine-wide stats at `now`;
    /// `observed` is the same instant on the observed (fault-distorted)
    /// clock, anchoring the next interval for expiry detection.
    fn leader_maintenance(
        &mut self,
        now: SimTime,
        observed: SimTime,
        totals: ProcStats,
        crashed: usize,
    ) {
        let over = self.active.as_ref().is_none_or(|a| a.section_over);
        if over {
            return;
        }
        if self.active.as_ref().is_some_and(|a| a.switch_requested) {
            if S::ENABLED && self.active.as_ref().is_some_and(|a| a.controller.is_some()) {
                // Synchronous switching (§4.1): every *live* processor is at
                // the section barrier when the leader applies the transition
                // (crash-stopped ones dropped out of the rendezvous).
                let arrived = self.num_procs - crashed;
                self.sink.record(now.as_duration(), TraceEvent::BarrierSync { arrived });
            }
            if self.active.as_ref().is_some_and(|a| a.abort_requested) {
                self.apply_abort(now, observed, totals, crashed);
            } else {
                self.apply_transition(now, observed, totals, crashed);
            }
            if let Some(active) = self.active.as_mut() {
                active.switch_requested = false;
                active.abort_requested = false;
            }
        }
        let span = self.span_intervals;
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if active.finishing && active.issued_iters >= active.total_iters {
            let mut carry = None;
            if let Some(ctl) = active.controller.as_mut() {
                let actual = now.saturating_since(active.interval_start);
                if span {
                    // §4.4 extension: the in-flight interval continues in
                    // the section's next execution.
                    carry = Some((actual, totals.since(&active.snapshot)));
                } else {
                    // Record the final, partial interval of the section.
                    if !actual.is_zero() {
                        let sample = totals.since(&active.snapshot).overhead_sample();
                        let overhead = sample.total_overhead();
                        active.records.push(SampleRecord {
                            at: now,
                            phase: ctl.phase(),
                            version: ctl.current_policy(),
                            overhead,
                            actual,
                            partial: true,
                            poisoned: crashed > active.crashed_snapshot,
                        });
                        if S::ENABLED {
                            trace::record_interval_end(
                                &mut self.sink,
                                now.as_duration(),
                                ctl.phase(),
                                overhead,
                                actual,
                                true,
                            );
                        }
                    }
                    ctl.end_section();
                }
            }
            active.section_over = true;
            let entry = &self.plan[active.plan_idx];
            let name = entry.name.clone();
            self.reports.push(SectionExecution {
                plan_idx: active.plan_idx,
                name: name.clone(),
                kind: active.kind,
                start: active.start,
                end: now,
                iterations: active.total_iters,
                records: std::mem::take(&mut active.records),
            });
            // Persist the controller (and its policy history) for the next
            // execution of this section.
            if let Some(controller) = active.controller.take() {
                let evidence = active.evidence.take();
                self.controllers.insert(name, SavedController { controller, carry, evidence });
            }
        }
    }
}

/// Per-processor process state.
enum PState {
    /// About to begin plan entry `pos` (or finish if out of entries).
    NextEntry,
    /// Draining the op queue; then go to `after`.
    Drain(AfterDrain),
    /// Poll the timer and check interval expiration (dynamic mode).
    PollTimer,
    /// Just returned from a barrier.
    AfterBarrier,
    /// Finished.
    Finished,
}

#[derive(Clone, Copy)]
enum AfterDrain {
    /// After a serial body: go to the section barrier.
    ToBarrier,
    /// After an iteration body: poll the timer (dynamic/instrumented) or
    /// fetch the next iteration directly.
    NextIteration { poll: bool },
}

struct AppProcess<'a, S: TraceSink, J: JournalSink> {
    driver: Rc<RefCell<Driver<'a, S, J>>>,
    proc_index: usize,
    pos: usize,
    state: PState,
    queue: VecDeque<Step>,
    barrier: BarrierId,
    instrument_cost: Duration,
    instrumented_static: bool,
}

/// Number of processors that have crash-stopped so far, as visible to a
/// running process. Monotone in simulation time, so snapshot comparisons
/// detect "a crash happened during this interval".
fn crashed_count(ctx: &ProcCtx<'_>) -> usize {
    ctx.all_stats().iter().filter(|p| p.crashed_at.is_some()).count()
}

impl<'a, S: TraceSink, J: JournalSink> AppProcess<'a, S, J> {
    /// Take the next loop iteration (or initiate the section-ending
    /// rendezvous), returning the next step.
    fn parallel_step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        let totals = ctx.total_stats();
        let crashed = crashed_count(ctx);
        let mut driver = self.driver.borrow_mut();
        if let Err(e) = driver.ensure_active(self.pos, ctx.now(), ctx.peek_timer(), totals, crashed)
        {
            driver.error.get_or_insert(e);
            self.state = PState::Finished;
            return Step::Done;
        }
        let dynamic = matches!(driver.mode, RunMode::Dynamic(_) | RunMode::DynamicAsync(_));
        let Some(active) = driver.active.as_mut() else {
            driver.error.get_or_insert(SimError::Internal("no active section after init"));
            self.state = PState::Finished;
            return Step::Done;
        };

        if active.switch_requested || active.finishing {
            self.state = PState::AfterBarrier;
            return Step::Barrier(self.barrier);
        }
        if active.issued_iters >= active.total_iters {
            active.finishing = true;
            self.state = PState::AfterBarrier;
            return Step::Barrier(self.barrier);
        }
        let iter = active.issued_iters;
        active.issued_iters += 1;
        let version = active.version;
        let section = driver.plan[self.pos].name.clone();
        let mut sink = OpSink::default();
        driver.app.emit_iteration(&section, version, iter, &mut sink);
        self.queue = sink.into_steps();
        let poll = dynamic || self.instrumented_static;
        if poll {
            ctx.charge(self.instrument_cost);
        }
        self.state = PState::Drain(AfterDrain::NextIteration { poll });
        drop(driver);
        self.drain(ctx)
    }

    /// Return the next queued step, or transition to the continuation.
    fn drain(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        if let Some(step) = self.queue.pop_front() {
            return step;
        }
        let after = match self.state {
            PState::Drain(a) => a,
            _ => unreachable!("drain called outside Drain state"),
        };
        match after {
            AfterDrain::ToBarrier => {
                self.state = PState::AfterBarrier;
                Step::Barrier(self.barrier)
            }
            AfterDrain::NextIteration { poll } => {
                if poll {
                    self.state = PState::PollTimer;
                    self.poll_timer(ctx)
                } else {
                    self.state = PState::NextEntry; // re-enters parallel_step
                    self.parallel_step(ctx)
                }
            }
        }
    }

    /// Potential switch point (§4.1): read the timer; request a switch if
    /// the current interval has expired. The expiry comparison uses the
    /// *observed* (possibly fault-distorted, non-monotone) timer, exactly
    /// as the generated code would; the stuck-sampling watchdog compares
    /// against fault-immune simulation time to catch observed clocks that
    /// have stalled.
    fn poll_timer(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        let t = ctx.read_timer();
        let now = ctx.now();
        let totals = ctx.total_stats();
        let crashed = crashed_count(ctx);
        let mut driver = self.driver.borrow_mut();
        let asynchronous = matches!(driver.mode, RunMode::DynamicAsync(_));
        let watchdog = driver.sampling_watchdog;
        let mut expired = false;
        let mut stuck = false;
        if let Some(active) = driver.active.as_mut() {
            if let Some(ctl) = active.controller.as_mut() {
                let target = ctl.target_interval();
                expired = t.saturating_since(active.interval_start_observed) >= target;
                stuck = !expired
                    && ctl.phase().is_sampling()
                    && watchdog
                        .is_some_and(|k| now.saturating_since(active.interval_start) > target * k);
                // Event-driven trigger: once per `target_sampling` of
                // observed production time, feed the detector the waiting
                // proportion of the slice since the last signal. An alarm
                // ends the production interval exactly as expiry would —
                // the quiescence bound above stays the fallback.
                if !expired
                    && ctl.phase().is_production()
                    && ctl.event_driven()
                    && t.saturating_since(active.signal_at) >= ctl.config().target_sampling
                {
                    let slice = totals.since(&active.signal_snapshot).overhead_sample();
                    active.signal_at = t;
                    active.signal_snapshot = totals;
                    if ctl.observe_production_signal(slice.waiting_fraction()) {
                        expired = true;
                    }
                }
            }
        }
        if expired {
            if asynchronous {
                // Asynchronous switching: transition immediately, no
                // rendezvous; the other processors observe the new version
                // at their next iteration. Timestamped with the observed
                // time, as the generated code would.
                driver.apply_transition(t, t, totals, crashed);
            } else if let Some(active) = driver.active.as_mut() {
                active.switch_requested = true;
            }
        } else if stuck {
            if asynchronous {
                driver.apply_abort(now, t, totals, crashed);
            } else if let Some(active) = driver.active.as_mut() {
                active.switch_requested = true;
                active.abort_requested = true;
            }
        }
        drop(driver);
        self.state = PState::NextEntry;
        Step::Yield
    }
}

impl<'a, S: TraceSink, J: JournalSink> Process for AppProcess<'a, S, J> {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        // Once any processor hit an unrecoverable error, everyone winds
        // down; run_app reports the recorded error instead of statistics.
        if !matches!(self.state, PState::Finished) && self.driver.borrow().error.is_some() {
            self.state = PState::Finished;
            return Step::Done;
        }
        match self.state {
            PState::Finished => Step::Done,
            PState::Drain(_) => self.drain(ctx),
            PState::PollTimer => unreachable!("poll handled inline"),
            PState::AfterBarrier => {
                if ctx.is_barrier_leader() {
                    let totals = ctx.total_stats();
                    let crashed = crashed_count(ctx);
                    self.driver.borrow_mut().leader_maintenance(
                        ctx.now(),
                        ctx.peek_timer(),
                        totals,
                        crashed,
                    );
                }
                // Decide whether the section continues or is over.
                let driver = self.driver.borrow();
                let over = match &driver.active {
                    Some(a) => a.plan_idx != self.pos || a.section_over,
                    None => true,
                };
                drop(driver);
                if over {
                    self.pos += 1;
                }
                self.state = PState::NextEntry;
                Step::Yield
            }
            PState::NextEntry => {
                let plan_len = self.driver.borrow().plan.len();
                if self.pos >= plan_len {
                    self.state = PState::Finished;
                    return Step::Done;
                }
                let kind = self.driver.borrow().plan[self.pos].kind;
                match kind {
                    SectionKind::Serial => {
                        let totals = ctx.total_stats();
                        let crashed = crashed_count(ctx);
                        let mut driver = self.driver.borrow_mut();
                        if let Err(e) = driver.ensure_active(
                            self.pos,
                            ctx.now(),
                            ctx.peek_timer(),
                            totals,
                            crashed,
                        ) {
                            driver.error.get_or_insert(e);
                            self.state = PState::Finished;
                            return Step::Done;
                        }
                        if self.proc_index == 0 {
                            let section = driver.plan[self.pos].name.clone();
                            let mut sink = OpSink::default();
                            driver.app.emit_serial(&section, &mut sink);
                            self.queue = sink.into_steps();
                            drop(driver);
                            self.state = PState::Drain(AfterDrain::ToBarrier);
                            self.drain(ctx)
                        } else {
                            drop(driver);
                            self.state = PState::AfterBarrier;
                            Step::Barrier(self.barrier)
                        }
                    }
                    SectionKind::Parallel => self.parallel_step(ctx),
                }
            }
        }
    }
}

/// Run an application on the simulated machine.
///
/// # Errors
///
/// Every failure is a typed [`SimError`], never a panic: zero processors,
/// an invalid machine config or fault plan, a section with no versions (or
/// none implementing a statically requested policy), and any engine error
/// (deadlock, lock misuse, event-limit overrun).
pub fn run_app<'a, A: SimApp + 'a>(app: A, config: &RunConfig) -> Result<AppReport, SimError> {
    run_app_impl(app, config, NullSink, NullJournal, &mut NoMetrics)
}

/// Like [`run_app`], but borrows the application so the caller can inspect
/// its state (e.g. the program heap) after the run.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_ref<A: SimApp>(app: &mut A, config: &RunConfig) -> Result<AppReport, SimError> {
    run_app_impl(app, config, NullSink, NullJournal, &mut NoMetrics)
}

/// Like [`run_app`], but records the adaptation timeline into `sink`.
///
/// Events are stamped with *virtual* simulation time, so for a given app +
/// config the trace is fully deterministic: the same run always produces
/// the same event stream, byte for byte, regardless of host timing or how
/// many runs execute concurrently.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_traced<'a, A: SimApp + 'a, S: TraceSink>(
    app: A,
    config: &RunConfig,
    sink: &mut S,
) -> Result<AppReport, SimError> {
    run_app_impl(app, config, sink, NullJournal, &mut NoMetrics)
}

/// Like [`run_app`], but attributes every lock event to `metrics`.
///
/// Metrics accumulate directly in the sink — they never pass through the
/// (droppable) trace ring buffer — and are stamped with virtual-time
/// quantities at the same accounting sites that update
/// [`ProcStats`](crate::ProcStats), so for any completed run the per-lock
/// sums equal the machine aggregates exactly and the resulting profile is
/// byte-deterministic.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_metered<'a, A: SimApp + 'a, M: MetricsSink>(
    app: A,
    config: &RunConfig,
    metrics: &mut M,
) -> Result<AppReport, SimError> {
    run_app_impl(app, config, NullSink, NullJournal, metrics)
}

/// Like [`run_app`], with both a trace sink and a metrics sink attached.
///
/// The two observation channels are independent: a saturated trace ring
/// drops events, but per-lock metrics still accumulate exactly.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_observed<'a, A: SimApp + 'a, S: TraceSink, M: MetricsSink>(
    app: A,
    config: &RunConfig,
    sink: &mut S,
    metrics: &mut M,
) -> Result<AppReport, SimError> {
    run_app_impl(app, config, sink, NullJournal, metrics)
}

/// Like [`run_app`], but records every controller decision — switches,
/// change-point alarms, policy-health transitions — with its full evidence
/// snapshot into `journal`.
///
/// Records are stamped with *virtual* simulation time, so for a given app +
/// config the journal is fully deterministic: the same run always yields
/// the same decision stream, byte for byte, regardless of host timing or
/// worker count.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_journaled<'a, A: SimApp + 'a, J: JournalSink>(
    app: A,
    config: &RunConfig,
    journal: &mut J,
) -> Result<AppReport, SimError> {
    run_app_impl(app, config, NullSink, journal, &mut NoMetrics)
}

/// Like [`run_app`], with trace sink, decision journal, and metrics sink
/// all attached — the full flight-recorder configuration used by the
/// `explain` replay harness to cross-check journal records against the
/// trace oracle.
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_flight_recorded<'a, A: SimApp + 'a, S: TraceSink, J: JournalSink, M: MetricsSink>(
    app: A,
    config: &RunConfig,
    sink: &mut S,
    journal: &mut J,
    metrics: &mut M,
) -> Result<AppReport, SimError> {
    run_app_impl(app, config, sink, journal, metrics)
}

fn run_app_impl<'a, A: SimApp + 'a, S: TraceSink, J: JournalSink, M: MetricsSink>(
    app: A,
    config: &RunConfig,
    mut sink: S,
    journal: J,
    metrics: &mut M,
) -> Result<AppReport, SimError> {
    if config.num_procs == 0 {
        return Err(SimError::NoProcessors);
    }
    if S::ENABLED && !config.faults.is_empty() {
        sink.record(
            Duration::ZERO,
            TraceEvent::FaultPlanActivated {
                seed: config.faults.seed(),
                events: config.faults.events().len(),
            },
        );
    }
    let mut machine = Machine::try_new(config.machine)?;
    machine.set_fault_plan(config.faults.clone())?;
    let mut app = app;
    app.setup(&mut machine);
    let barrier = machine.add_barrier(config.num_procs);
    let name = app.name().to_string();
    let plan = app.plan();
    let instrumented_static = match &config.mode {
        RunMode::Static { instrumented, .. } => *instrumented,
        RunMode::Dynamic(_) | RunMode::DynamicAsync(_) => false,
    };
    let driver = Rc::new(RefCell::new(Driver {
        app: Box::new(app),
        plan,
        mode: config.mode.clone(),
        num_procs: config.num_procs,
        sink,
        journal,
        active: None,
        reports: Vec::new(),
        controllers: std::collections::HashMap::new(),
        span_intervals: config.span_intervals,
        sampling_watchdog: config.sampling_watchdog,
        error: None,
        counts: HealthCounts::default(),
    }));
    let processes: Vec<Box<dyn Process + '_>> = (0..config.num_procs)
        .map(|p| {
            Box::new(AppProcess {
                driver: Rc::clone(&driver),
                proc_index: p,
                pos: 0,
                state: PState::NextEntry,
                queue: VecDeque::new(),
                barrier,
                instrument_cost: config.instrument_cost,
                instrumented_static,
            }) as Box<dyn Process + '_>
        })
        .collect();
    let result = machine.run_metered(processes, metrics);
    let driver = Rc::try_unwrap(driver)
        .unwrap_or_else(|_| unreachable!("all processes dropped"))
        .into_inner();
    // A runtime error recorded by a winding-down processor is the root
    // cause; report it before any secondary engine error (the survivors
    // blocked at a barrier read as a deadlock otherwise).
    if let Some(err) = driver.error {
        return Err(err);
    }
    let stats = result?;
    // Publish the failure-domain counters. Only non-zero values are
    // emitted, so a healthy run's profile is byte-identical to one produced
    // before the failure layer existed.
    let hc = driver.counts;
    let trace_dropped = driver.sink.dropped();
    let journal_dropped = driver.journal.dropped();
    for (name, value) in [
        ("policy_suspected", hc.suspected),
        ("policy_quarantined", hc.quarantined),
        ("policy_probed", hc.probed),
        ("policy_rehabilitated", hc.rehabilitated),
        ("policy_cleared", hc.cleared),
        ("switch_crash_fallbacks", hc.crash_fallbacks),
        ("watchdog_soft_failures", hc.watchdog_soft_failures),
        ("resample_alarms", hc.resample_alarms),
        ("resample_quiescent", hc.resample_quiescent),
        ("procs_crashed", stats.crashed_procs().len() as u64),
        ("locks_recovered", stats.recovered_locks()),
        ("trace_dropped", trace_dropped),
        ("journal_dropped", journal_dropped),
    ] {
        if value > 0 {
            metrics.counter(name, value);
        }
    }
    Ok(AppReport { app: name, stats, sections: driver.reports })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy app: one serial section and one parallel section with two
    /// versions. Version "original" locks per iteration 8 times; version
    /// "aggressive" locks once. Each processor updates a disjoint
    /// accumulator, so the aggressive version is strictly better.
    struct Toy {
        iterations: usize,
        locks: Vec<LockId>,
        sum: u64,
    }

    impl Toy {
        fn new(iterations: usize) -> Self {
            Toy { iterations, locks: Vec::new(), sum: 0 }
        }
    }

    impl SimApp for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn setup(&mut self, machine: &mut Machine) {
            let first = machine.add_locks(64);
            self.locks = (0..64).map(|i| LockId(first.index() + i)).collect();
        }
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::serial("init"), PlanEntry::parallel("work")]
        }
        fn versions(&self, _section: &str) -> Vec<String> {
            vec!["original".to_string(), "aggressive".to_string()]
        }
        fn emit_serial(&mut self, _section: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_millis(1));
        }
        fn begin_parallel(&mut self, _section: &str) -> usize {
            self.iterations
        }
        fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
            let lock = self.locks[iter % self.locks.len()];
            self.sum += iter as u64;
            match version {
                0 => {
                    for _ in 0..8 {
                        ops.acquire(lock);
                        ops.compute(Duration::from_micros(5));
                        ops.release(lock);
                    }
                }
                _ => {
                    ops.acquire(lock);
                    ops.compute(Duration::from_micros(40));
                    ops.release(lock);
                }
            }
        }
    }

    #[test]
    fn static_runs_complete_and_apply_all_iterations() {
        let report = run_app(Toy::new(100), &RunConfig::fixed(4, "original")).unwrap();
        assert_eq!(report.sections.len(), 2);
        assert_eq!(report.sections[1].iterations, 100);
        // 8 acquires per iteration.
        assert_eq!(report.stats.totals().acquires, 800);
    }

    #[test]
    fn aggressive_static_is_faster_here() {
        let orig = run_app(Toy::new(400), &RunConfig::fixed(4, "original")).unwrap();
        let aggr = run_app(Toy::new(400), &RunConfig::fixed(4, "aggressive")).unwrap();
        assert!(aggr.elapsed() < orig.elapsed());
        assert_eq!(aggr.stats.totals().acquires, 400);
    }

    #[test]
    fn dynamic_feedback_converges_to_aggressive() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(4_000), &RunConfig::dynamic(4, ctl)).unwrap();
        let work = report.section("work").next().unwrap();
        assert!(!work.records.is_empty(), "must have sampled");
        // Find the first production record: it must use version 1.
        let prod =
            work.records.iter().find(|r| r.phase.is_production()).expect("reached production");
        assert_eq!(prod.version, 1, "records: {:?}", work.records);
        // Sampling must have measured both versions.
        let sampled: std::collections::BTreeSet<usize> = work
            .records
            .iter()
            .filter(|r| r.phase.is_sampling() && !r.partial)
            .map(|r| r.version)
            .collect();
        assert!(sampled.contains(&0) && sampled.contains(&1));
    }

    #[test]
    fn dynamic_close_to_best_static() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(50),
            ..ControllerConfig::default()
        };
        let best = run_app(Toy::new(4_000), &RunConfig::fixed(4, "aggressive")).unwrap();
        let dynamic = run_app(Toy::new(4_000), &RunConfig::dynamic(4, ctl)).unwrap();
        let ratio = dynamic.elapsed().as_secs_f64() / best.elapsed().as_secs_f64();
        assert!(ratio < 1.5, "dynamic {:?} vs best {:?}", dynamic.elapsed(), best.elapsed());
        // And it must beat the worst static version.
        let worst = run_app(Toy::new(4_000), &RunConfig::fixed(4, "original")).unwrap();
        assert!(dynamic.elapsed() < worst.elapsed());
    }

    #[test]
    fn single_processor_dynamic_works() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(500),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(500), &RunConfig::dynamic(1, ctl)).unwrap();
        assert_eq!(report.sections.len(), 2);
        assert_eq!(report.sections[1].iterations, 500);
    }

    #[test]
    fn serial_section_runs_on_proc_zero_only() {
        let report = run_app(Toy::new(10), &RunConfig::fixed(4, "aggressive")).unwrap();
        // Serial section compute (1ms) lands on proc 0.
        assert!(report.stats.procs[0].compute >= Duration::from_millis(1));
        // Other procs idled at the barrier during the serial section.
        assert!(report.stats.procs[1].barrier_wait >= Duration::from_millis(1));
    }

    #[test]
    fn effective_sampling_intervals_are_reported() {
        let ctl = ControllerConfig {
            // Tiny target: effective interval is bounded below by iteration size.
            target_sampling: Duration::from_nanos(1),
            target_production: Duration::from_millis(5),
            ..ControllerConfig::default()
        };
        let report = run_app(Toy::new(2_000), &RunConfig::dynamic(2, ctl)).unwrap();
        let eff = report.mean_effective_sampling_intervals("work");
        assert!(eff.len() >= 2);
        for (v, d) in eff.iter().enumerate() {
            let d = d.unwrap_or_else(|| panic!("version {v} never sampled"));
            assert!(d > Duration::from_micros(30), "effective interval {d:?}");
        }
    }

    #[test]
    fn determinism_of_full_runs() {
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(300),
            target_production: Duration::from_millis(2),
            ..ControllerConfig::default()
        };
        let a = run_app(Toy::new(1_000), &RunConfig::dynamic(3, ctl.clone())).unwrap();
        let b = run_app(Toy::new(1_000), &RunConfig::dynamic(3, ctl)).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sections, b.sections);
    }

    #[test]
    fn instrumented_static_charges_polling() {
        let mut cfg = RunConfig::fixed(2, "aggressive");
        let plain = run_app(Toy::new(500), &cfg).unwrap();
        cfg.mode = RunMode::Static { policy: "aggressive".into(), instrumented: true };
        let instr = run_app(Toy::new(500), &cfg).unwrap();
        assert!(instr.stats.totals().timer_reads > 0);
        assert!(instr.elapsed() >= plain.elapsed());
        // The paper's observation: instrumentation overhead is small.
        let ratio = instr.elapsed().as_secs_f64() / plain.elapsed().as_secs_f64();
        assert!(ratio < 1.6, "instrumentation ratio {ratio}");
    }
}

#[cfg(test)]
mod span_tests {
    use super::*;

    /// A two-execution section whose per-execution work is smaller than a
    /// sampling phase: without spanning, each execution restarts sampling;
    /// with spanning, the second execution resumes mid-phase.
    struct TinySections {
        lock: Option<LockId>,
    }

    impl SimApp for TinySections {
        fn name(&self) -> &str {
            "tiny"
        }
        fn setup(&mut self, machine: &mut Machine) {
            self.lock = Some(machine.add_lock());
        }
        fn plan(&self) -> Vec<PlanEntry> {
            vec![
                PlanEntry::parallel("work"),
                PlanEntry::serial("between"),
                PlanEntry::parallel("work"),
                PlanEntry::serial("between"),
                PlanEntry::parallel("work"),
            ]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            vec!["a".into(), "b".into()]
        }
        fn emit_serial(&mut self, _s: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(200));
        }
        fn begin_parallel(&mut self, _s: &str) -> usize {
            40
        }
        fn emit_iteration(&mut self, _s: &str, version: usize, _iter: usize, ops: &mut OpSink) {
            let lock = self.lock.expect("setup ran");
            // Version a locks 4 times per iteration, version b once.
            let n = if version == 0 { 4 } else { 1 };
            for _ in 0..n {
                ops.acquire(lock);
                ops.compute(Duration::from_micros(2));
                ops.release(lock);
            }
            ops.compute(Duration::from_micros(10));
        }
    }

    fn ctl() -> ControllerConfig {
        ControllerConfig {
            num_policies: 2,
            // Each sampling interval spans roughly one whole execution.
            target_sampling: Duration::from_micros(400),
            target_production: Duration::from_millis(50),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn spanning_continues_phases_across_executions() {
        let mut cfg = RunConfig::dynamic(2, ctl());
        cfg.span_intervals = true;
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // With spanning, no partial intervals are recorded and sampling
        // continues across executions: the distinct versions both get
        // sampled even though one execution fits only one interval.
        let records: Vec<&SampleRecord> =
            report.section("work").flat_map(|e| e.records.iter()).collect();
        assert!(records.iter().all(|r| !r.partial), "{records:?}");
        let sampled: std::collections::BTreeSet<usize> =
            records.iter().filter(|r| r.phase.is_sampling()).map(|r| r.version).collect();
        assert!(sampled.len() >= 2, "both versions sampled across executions: {records:?}");
    }

    #[test]
    fn without_spanning_each_execution_resamples() {
        let cfg = RunConfig::dynamic(2, ctl());
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // Every execution begins its own sampling phase with version 0.
        for exec in report.section("work") {
            let first = exec.records.first().expect("records");
            assert!(first.phase.is_sampling());
            assert_eq!(first.version, 0);
        }
    }

    #[test]
    fn spanning_excludes_inter_section_work_from_intervals() {
        let mut cfg = RunConfig::dynamic(2, ctl());
        cfg.span_intervals = true;
        let report = run_app(TinySections { lock: None }, &cfg).unwrap();
        // Every completed sampling interval's measured execution time must
        // be of the order of the interval itself — if the serial sections
        // in between leaked into the measurement, overheads would be
        // diluted below any plausible value for version 0 (4 lock pairs
        // per ~18us iteration).
        let v0_sampling: Vec<f64> = report
            .section("work")
            .flat_map(|e| e.records.iter())
            .filter(|r| r.phase.is_sampling() && r.version == 0)
            .map(|r| r.overhead)
            .collect();
        assert!(!v0_sampling.is_empty());
        for o in v0_sampling {
            assert!(o > 0.05, "overhead diluted: {o}");
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    struct Tiny {
        iters: usize,
    }
    impl SimApp for Tiny {
        fn name(&self) -> &str {
            "tiny-edge"
        }
        fn setup(&mut self, _machine: &mut Machine) {}
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::parallel("work"), PlanEntry::serial("tail")]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            vec!["only".to_string()]
        }
        fn emit_serial(&mut self, _s: &str, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(5));
        }
        fn begin_parallel(&mut self, _s: &str) -> usize {
            self.iters
        }
        fn emit_iteration(&mut self, _s: &str, _v: usize, _i: usize, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(10));
        }
    }

    #[test]
    fn zero_iteration_parallel_section_completes() {
        for mode in [
            RunMode::static_policy("only"),
            RunMode::Dynamic(ControllerConfig { num_policies: 1, ..ControllerConfig::default() }),
        ] {
            let cfg = RunConfig {
                num_procs: 4,
                mode,
                machine: MachineConfig::default(),
                instrument_cost: Duration::ZERO,
                span_intervals: false,
                faults: FaultPlan::default(),
                sampling_watchdog: None,
            };
            let report = run_app(Tiny { iters: 0 }, &cfg).expect("runs");
            assert_eq!(report.sections.len(), 2);
            assert_eq!(report.sections[0].iterations, 0);
        }
    }

    #[test]
    fn more_processors_than_iterations() {
        let report = run_app(Tiny { iters: 3 }, &RunConfig::fixed(8, "only")).expect("runs");
        assert_eq!(report.sections[0].iterations, 3);
        // Three processors did the work; all eight finished.
        assert_eq!(report.stats.procs.len(), 8);
    }

    #[test]
    fn single_iteration_dynamic_section() {
        let cfg = RunConfig::dynamic(
            4,
            ControllerConfig { num_policies: 1, ..ControllerConfig::default() },
        );
        let report = run_app(Tiny { iters: 1 }, &cfg).expect("runs");
        assert_eq!(report.sections[0].iterations, 1);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan, Target, Window};

    /// One parallel section, two versions with different locking grain.
    struct Mini;
    impl SimApp for Mini {
        fn name(&self) -> &str {
            "mini"
        }
        fn setup(&mut self, machine: &mut Machine) {
            machine.add_locks(16);
        }
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::parallel("work")]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            vec!["fine".to_string(), "coarse".to_string()]
        }
        fn emit_serial(&mut self, _s: &str, _ops: &mut OpSink) {}
        fn begin_parallel(&mut self, _s: &str) -> usize {
            600
        }
        fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
            let lock = LockId(iter % 16);
            let n = if version == 0 { 4 } else { 1 };
            for _ in 0..n {
                ops.acquire(lock);
                ops.compute(Duration::from_micros(10 / n as u64));
                ops.release(lock);
            }
        }
    }

    fn ctl() -> ControllerConfig {
        ControllerConfig {
            target_sampling: Duration::from_micros(200),
            target_production: Duration::from_millis(2),
            ..ControllerConfig::default()
        }
    }

    fn frozen_clock() -> FaultPlan {
        FaultPlan::new(7).with_event(Window::always(), FaultKind::TimerDrift { ppm: -1_000_000 })
    }

    #[test]
    fn frozen_timer_starves_sampling_but_the_run_still_completes() {
        let cfg = RunConfig::dynamic(4, ctl()).with_faults(frozen_clock());
        let report = run_app(Mini, &cfg).expect("completes despite frozen clock");
        let work = report.section("work").next().unwrap();
        assert_eq!(work.iterations, 600);
        // The observed clock never advances, so no interval ever expires:
        // without a watchdog the section ends still inside its first
        // sampling interval (one partial record at most).
        assert!(
            work.records.iter().all(|r| r.partial && r.phase.is_sampling()),
            "{:?}",
            work.records
        );
    }

    #[test]
    fn watchdog_aborts_stuck_sampling_into_production() {
        let cfg = RunConfig::dynamic(4, ctl()).with_faults(frozen_clock()).with_watchdog(3);
        let report = run_app(Mini, &cfg).expect("runs");
        let work = report.section("work").next().unwrap();
        assert_eq!(work.iterations, 600);
        // The watchdog gave up on the stuck interval (recorded partial)...
        let aborted = work
            .records
            .iter()
            .find(|r| r.partial && r.phase.is_sampling())
            .expect("aborted sampling interval recorded");
        // ...after letting it run about `k×` its target in real time.
        assert!(aborted.actual >= ctl().target_sampling * 3, "{aborted:?}");
        // ...and the section then ran in production (best-so-far policy).
        let tail = work.records.last().expect("records");
        assert!(tail.phase.is_production(), "{:?}", work.records);
    }

    #[test]
    fn watchdog_is_inert_on_a_healthy_clock() {
        let base = run_app(Mini, &RunConfig::dynamic(4, ctl())).unwrap();
        let dogged = run_app(Mini, &RunConfig::dynamic(4, ctl()).with_watchdog(50)).unwrap();
        assert_eq!(base.stats, dogged.stats);
        assert_eq!(base.sections, dogged.sections);
    }

    #[test]
    fn faulted_dynamic_runs_are_deterministic() {
        let plan = FaultPlan::new(3)
            .with_event(
                Window::new(Duration::from_micros(500), Duration::from_millis(4)),
                FaultKind::Slowdown { procs: Target::Only(vec![0, 2]), factor: 5.0 },
            )
            .with_event(Window::always(), FaultKind::TimerJitter { max: Duration::from_micros(30) })
            .with_event(
                Window::new(Duration::ZERO, Duration::from_millis(2)),
                FaultKind::ContentionStorm {
                    locks: Target::All,
                    cost_factor: 3.0,
                    extra_hold: Duration::from_micros(5),
                },
            );
        let cfg = RunConfig::dynamic(4, ctl()).with_faults(plan).with_watchdog(10);
        let a = run_app(Mini, &cfg).expect("runs");
        let b = run_app(Mini, &cfg).expect("runs");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sections, b.sections);
    }

    fn crash_proc3_at(onset: Duration) -> FaultPlan {
        FaultPlan::new(5).with_event(
            Window::new(onset, onset + Duration::from_micros(1)),
            FaultKind::ProcCrash { procs: Target::Only(vec![3]) },
        )
    }

    #[test]
    fn proc_crash_mid_sampling_poisons_the_interval_and_the_run_completes() {
        use dynfb_core::metrics::MetricsRegistry;
        let cfg =
            RunConfig::dynamic(4, ctl()).with_faults(crash_proc3_at(Duration::from_micros(300)));
        let mut metrics = MetricsRegistry::new();
        let report = run_app_metered(Mini, &cfg, &mut metrics).expect("completes despite crash");
        let work = report.section("work").next().unwrap();
        // The survivors finish every iteration.
        assert_eq!(work.iterations, 600);
        assert_eq!(report.stats.crashed_procs(), vec![3]);
        assert_eq!(report.stats.live_procs(), 3);
        // The interval in flight when proc 3 died is recorded but marked
        // poisoned: its measurement was discarded, not trusted.
        assert!(work.records.iter().any(|r| r.poisoned), "{:?}", work.records);
        // The failure-domain counters made it into the metrics sink.
        assert_eq!(metrics.counter_value("procs_crashed"), 1);
        assert!(metrics.counter_value("switch_crash_fallbacks") >= 1);
    }

    #[test]
    fn crash_fallback_switch_reason_is_traced() {
        use dynfb_core::trace::{RingBuffer, SwitchReason};
        let cfg =
            RunConfig::dynamic(4, ctl()).with_faults(crash_proc3_at(Duration::from_micros(300)));
        let mut ring = RingBuffer::new(8192);
        run_app_traced(Mini, &cfg, &mut ring).expect("runs");
        assert!(
            ring.iter().any(|e| matches!(
                e.event,
                TraceEvent::PolicySwitch { reason: SwitchReason::CrashFallback, .. }
            )),
            "no crash-fallback switch in the trace"
        );
    }

    #[test]
    fn crashed_dynamic_runs_are_deterministic() {
        let cfg =
            RunConfig::dynamic(4, ctl()).with_faults(crash_proc3_at(Duration::from_micros(250)));
        let a = run_app(Mini, &cfg).expect("runs");
        let b = run_app(Mini, &cfg).expect("runs");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sections, b.sections);
    }

    #[test]
    fn watchdog_abort_marks_the_stuck_policy_suspect() {
        use dynfb_core::trace::RingBuffer;
        // A frozen clock starves the sampling interval, so the watchdog
        // fires against the policy under measurement and its soft failure
        // reaches the health machine.
        let cfg = RunConfig::dynamic(4, ctl()).with_faults(frozen_clock()).with_watchdog(3);
        let mut ring = RingBuffer::new(8192);
        let report = run_app_traced(Mini, &cfg, &mut ring).expect("runs");
        assert_eq!(report.section("work").next().unwrap().iterations, 600);
        let states: Vec<&str> = ring
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::PolicyHealth { state, .. } => Some(state),
                _ => None,
            })
            .collect();
        assert!(states.contains(&"suspect"), "health timeline: {states:?}");
    }

    #[test]
    fn slowdown_fault_stretches_the_run() {
        let slow = FaultPlan::new(1)
            .with_event(Window::always(), FaultKind::Slowdown { procs: Target::All, factor: 4.0 });
        let base = run_app(Mini, &RunConfig::fixed(4, "coarse")).unwrap();
        let perturbed = run_app(Mini, &RunConfig::fixed(4, "coarse").with_faults(slow)).unwrap();
        assert!(perturbed.elapsed() > base.elapsed() * 3, "{:?}", perturbed.elapsed());
        // Same work was done either way.
        assert_eq!(base.stats.totals().acquires, perturbed.stats.totals().acquires);
    }
}

/// The acceptance criterion for the hardened runtime: no panic is
/// reachable through the public `run_app` API — misconfiguration and
/// malformed applications surface as typed [`SimError`]s.
#[cfg(test)]
mod error_tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlanError, Target, Window};

    struct Bare {
        versions: Vec<String>,
    }
    impl SimApp for Bare {
        fn name(&self) -> &str {
            "bare"
        }
        fn setup(&mut self, _machine: &mut Machine) {}
        fn plan(&self) -> Vec<PlanEntry> {
            vec![PlanEntry::parallel("work")]
        }
        fn versions(&self, _s: &str) -> Vec<String> {
            self.versions.clone()
        }
        fn emit_serial(&mut self, _s: &str, _ops: &mut OpSink) {}
        fn begin_parallel(&mut self, _s: &str) -> usize {
            4
        }
        fn emit_iteration(&mut self, _s: &str, _v: usize, _i: usize, ops: &mut OpSink) {
            ops.compute(Duration::from_micros(1));
        }
    }

    fn one_version() -> Bare {
        Bare { versions: vec!["only".to_string()] }
    }

    #[test]
    fn zero_processors_is_an_error() {
        let err = run_app(one_version(), &RunConfig::fixed(0, "only")).unwrap_err();
        assert_eq!(err, SimError::NoProcessors);
    }

    #[test]
    fn unknown_policy_is_an_error_not_a_panic() {
        let err = run_app(one_version(), &RunConfig::fixed(4, "nonexistent")).unwrap_err();
        let SimError::UnknownPolicy { section, policy, available } = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(section, "work");
        assert_eq!(policy, "nonexistent");
        assert_eq!(available, vec!["only".to_string()]);
    }

    #[test]
    fn versionless_section_is_an_error_not_a_panic() {
        let err = run_app(Bare { versions: Vec::new() }, &RunConfig::fixed(4, "only")).unwrap_err();
        assert_eq!(err, SimError::NoVersions { section: "work".to_string() });
    }

    #[test]
    fn invalid_machine_config_is_an_error_not_a_panic() {
        let mut cfg = RunConfig::fixed(2, "only");
        cfg.machine.barrier_cost = Duration::from_secs(9999);
        let err = run_app(one_version(), &cfg).unwrap_err();
        assert!(matches!(err, SimError::Config(e) if e.what == "barrier_cost"), "{err}");
    }

    #[test]
    fn invalid_fault_plan_is_an_error_not_a_panic() {
        let cfg = RunConfig::fixed(2, "only").with_faults(FaultPlan::new(0).with_event(
            Window::always(),
            FaultKind::Slowdown { procs: Target::All, factor: f64::NAN },
        ));
        let err = run_app(one_version(), &cfg).unwrap_err();
        assert!(matches!(err, SimError::FaultPlan(FaultPlanError { event: 0, .. })), "{err}");
    }

    #[test]
    fn unknown_policy_surfaces_even_from_later_plan_entries() {
        // The failing section is not the first one: earlier sections run
        // normally, then every processor winds down cleanly (no deadlock
        // masking the root cause).
        struct Late;
        impl SimApp for Late {
            fn name(&self) -> &str {
                "late"
            }
            fn setup(&mut self, _machine: &mut Machine) {}
            fn plan(&self) -> Vec<PlanEntry> {
                vec![PlanEntry::serial("init"), PlanEntry::parallel("work")]
            }
            fn versions(&self, _s: &str) -> Vec<String> {
                vec!["a".to_string()]
            }
            fn emit_serial(&mut self, _s: &str, ops: &mut OpSink) {
                ops.compute(Duration::from_micros(50));
            }
            fn begin_parallel(&mut self, _s: &str) -> usize {
                8
            }
            fn emit_iteration(&mut self, _s: &str, _v: usize, _i: usize, ops: &mut OpSink) {
                ops.compute(Duration::from_micros(1));
            }
        }
        let err = run_app(Late, &RunConfig::fixed(4, "zzz")).unwrap_err();
        assert!(matches!(err, SimError::UnknownPolicy { .. }), "{err}");
    }
}
