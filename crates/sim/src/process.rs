//! The interface between simulated processes and the machine.
//!
//! A [`Process`] is a state machine driven by the simulator: each call to
//! [`Process::step`] returns the next [`Step`] the processor performs
//! (compute for some duration, acquire or release a lock, wait at a
//! barrier, finish). Between steps the process may inspect virtual time and
//! machine counters through the [`ProcCtx`], and may *charge* extra
//! processor time (e.g. the cost of reading the timer) that is accounted
//! before the returned step executes.

use crate::faults::FaultPlan;
use crate::stats::ProcStats;
use crate::time::SimTime;
use std::time::Duration;

/// Identifier of a simulated processor (`0..num_procs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Identifier of a simulated spin lock, created by `Machine::add_lock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub(crate) usize);

impl LockId {
    /// The index of this lock within its machine.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// The `n`-th lock after this one (valid for blocks created with
    /// `Machine::add_locks`, whose ids are consecutive).
    #[must_use]
    pub fn offset(self, n: usize) -> LockId {
        LockId(self.0 + n)
    }
}

/// Identifier of a simulated barrier, created by `Machine::add_barrier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub(crate) usize);

/// One action taken by a simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Perform useful computation for the given duration.
    Compute(Duration),
    /// Acquire a spin lock (blocking, with waiting-overhead accounting).
    Acquire(LockId),
    /// Release a held spin lock.
    Release(LockId),
    /// Wait at a barrier until all participants arrive.
    Barrier(BarrierId),
    /// Re-schedule immediately at the same virtual time (after any charged
    /// time), allowing the process to observe state another processor
    /// updated at this instant.
    Yield,
    /// The process has finished.
    Done,
}

/// Per-step context handed to [`Process::step`].
#[derive(Debug)]
pub struct ProcCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) proc: ProcId,
    pub(crate) barrier_leader: bool,
    pub(crate) timer_read_cost: Duration,
    pub(crate) faults: &'a FaultPlan,
    pub(crate) prior_timer_reads: u64,
    pub(crate) stats: &'a [ProcStats],
    pub(crate) pending_compute: Duration,
    pub(crate) pending_timer: Duration,
    pub(crate) timer_reads: u64,
}

impl<'a> ProcCtx<'a> {
    /// This processor's id.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Current virtual time, *without* charging a timer read. Use
    /// [`read_timer`](Self::read_timer) to model the generated code's timer
    /// polling; `now` is for simulation-infrastructure decisions only.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read the machine timer: charges the configured timer-read cost to
    /// this processor and returns the virtual time the read observes.
    ///
    /// Under an active fault plan the observation may be distorted by
    /// drift or jitter, and may even be *non-monotone* across consecutive
    /// reads — callers comparing observed timestamps must use
    /// [`SimTime::saturating_since`]. Use [`now`](Self::now) for
    /// fault-immune simulation-infrastructure time.
    pub fn read_timer(&mut self) -> SimTime {
        self.pending_timer += self.timer_read_cost;
        self.timer_reads += 1;
        let real = self.now + self.pending_compute + self.pending_timer;
        let read_no = self.prior_timer_reads + self.timer_reads;
        self.faults.observed_time(self.proc.0, read_no, real)
    }

    /// Observe the machine timer *without* charging a read or consuming a
    /// read ordinal: the value the next [`read_timer`](Self::read_timer)
    /// at this instant would return. The driver anchors interval starts
    /// with this — the generated code's stored timer read lives on the
    /// same (possibly drifting) clock as its later polls, so comparing an
    /// observed poll against a fault-immune start would mis-age every
    /// interval once a transient drift window has shifted the clock.
    #[must_use]
    pub fn peek_timer(&self) -> SimTime {
        let real = self.now + self.pending_compute + self.pending_timer;
        let read_no = self.prior_timer_reads + self.timer_reads + 1;
        self.faults.observed_time(self.proc.0, read_no, real)
    }

    /// Charge additional computation time that occurs before the step this
    /// call returns (e.g. bookkeeping the generated code performs inline).
    pub fn charge(&mut self, d: Duration) {
        self.pending_compute += d;
    }

    /// True exactly once after this processor was the *last* to arrive at a
    /// barrier: the paper's generated code designates that processor to
    /// perform the policy-switch bookkeeping before the others resume.
    #[must_use]
    pub fn is_barrier_leader(&self) -> bool {
        self.barrier_leader
    }

    /// Statistics of every processor, as of the current instant. Summing
    /// these gives the machine-wide counters the dynamic feedback runtime
    /// samples at interval boundaries.
    #[must_use]
    pub fn all_stats(&self) -> &'a [ProcStats] {
        self.stats
    }

    /// Machine-wide totals (sum of [`all_stats`](Self::all_stats)).
    #[must_use]
    pub fn total_stats(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for s in self.stats {
            total.accumulate(s);
        }
        total
    }
}

/// A simulated process: the code one virtual processor runs.
pub trait Process {
    /// Produce the next step. Called once per scheduling event; must
    /// eventually return [`Step::Done`].
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step;
}

impl<F: FnMut(&mut ProcCtx<'_>) -> Step> Process for F {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
        self(ctx)
    }
}
