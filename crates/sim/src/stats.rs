//! Accounting: per-processor and machine-wide statistics.

use crate::time::SimTime;
use dynfb_core::overhead::{OverheadCounters, OverheadSample};
use std::time::Duration;

/// Time and event accounting for one simulated processor.
///
/// The paper's notion of *execution time* (time spent executing application
/// code, §4.3) corresponds to [`busy`](ProcStats::busy): useful computation
/// plus locking, waiting, and timer-polling time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Time spent in useful computation.
    pub compute: Duration,
    /// Time spent successfully acquiring and releasing locks.
    pub lock_time: Duration,
    /// Time spent spinning on locks held by other processors.
    pub wait_time: Duration,
    /// Time spent waiting at barriers for other processors.
    pub barrier_wait: Duration,
    /// Time spent reading the timer.
    pub timer_time: Duration,
    /// Successful lock acquires.
    pub acquires: u64,
    /// Failed lock acquire attempts.
    pub failed_attempts: u64,
    /// Timer reads.
    pub timer_reads: u64,
    /// Locks recovered from this processor after it crash-stopped while
    /// holding them (the abort-and-release protocol).
    pub recovered_locks: u64,
    /// Virtual time when the processor's process finished (if it did).
    pub done_at: Option<SimTime>,
    /// Virtual time when the processor crash-stopped under a
    /// [`ProcCrash`](crate::faults::FaultKind::ProcCrash) fault, if it did.
    /// Mutually exclusive with `done_at`.
    pub crashed_at: Option<SimTime>,
}

impl ProcStats {
    /// Execution time: all time the processor spent executing application
    /// code, including overheads (but not barrier waits, which the paper
    /// attributes to the parallelization rather than synchronization).
    #[must_use]
    pub fn busy(&self) -> Duration {
        self.compute
            .saturating_add(self.lock_time)
            .saturating_add(self.wait_time)
            .saturating_add(self.timer_time)
    }

    /// Add another processor's stats (for machine-wide aggregation).
    /// Saturates instead of panicking near `Duration::MAX`/`u64::MAX`, so a
    /// pathological accumulation (e.g. a fault-frozen clock spinning a
    /// processor forever) degrades to clamped totals rather than aborting
    /// the whole report.
    pub fn accumulate(&mut self, other: &ProcStats) {
        self.compute = self.compute.saturating_add(other.compute);
        self.lock_time = self.lock_time.saturating_add(other.lock_time);
        self.wait_time = self.wait_time.saturating_add(other.wait_time);
        self.barrier_wait = self.barrier_wait.saturating_add(other.barrier_wait);
        self.timer_time = self.timer_time.saturating_add(other.timer_time);
        self.acquires = self.acquires.saturating_add(other.acquires);
        self.failed_attempts = self.failed_attempts.saturating_add(other.failed_attempts);
        self.timer_reads = self.timer_reads.saturating_add(other.timer_reads);
        self.recovered_locks = self.recovered_locks.saturating_add(other.recovered_locks);
    }

    /// Componentwise difference (`self` is a later snapshot than `earlier`).
    #[must_use]
    pub fn since(&self, earlier: &ProcStats) -> ProcStats {
        ProcStats {
            compute: self.compute - earlier.compute,
            lock_time: self.lock_time - earlier.lock_time,
            wait_time: self.wait_time - earlier.wait_time,
            barrier_wait: self.barrier_wait - earlier.barrier_wait,
            timer_time: self.timer_time - earlier.timer_time,
            acquires: self.acquires - earlier.acquires,
            failed_attempts: self.failed_attempts - earlier.failed_attempts,
            timer_reads: self.timer_reads - earlier.timer_reads,
            recovered_locks: self.recovered_locks - earlier.recovered_locks,
            done_at: self.done_at,
            crashed_at: self.crashed_at,
        }
    }

    /// The instrumentation counters of this snapshot.
    #[must_use]
    pub fn counters(&self) -> OverheadCounters {
        OverheadCounters { acquires: self.acquires, failed_attempts: self.failed_attempts }
    }

    /// Overhead sample over this snapshot: locking and waiting time against
    /// execution time (§4.3).
    #[must_use]
    pub fn overhead_sample(&self) -> OverheadSample {
        OverheadSample { locking: self.lock_time, waiting: self.wait_time, execution: self.busy() }
    }
}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineStats {
    /// Per-processor statistics.
    pub procs: Vec<ProcStats>,
    /// Virtual time when the last processor finished.
    pub finished_at: SimTime,
}

impl MachineStats {
    /// Machine-wide totals, summed across processors.
    #[must_use]
    pub fn totals(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for p in &self.procs {
            total.accumulate(p);
        }
        total
    }

    /// Wall-clock (virtual) execution time of the whole run.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.finished_at - SimTime::ZERO
    }

    /// Indices of processors that crash-stopped during the run.
    #[must_use]
    pub fn crashed_procs(&self) -> Vec<usize> {
        (0..self.procs.len()).filter(|&i| self.procs[i].crashed_at.is_some()).collect()
    }

    /// Number of processors that survived to the end of the run.
    #[must_use]
    pub fn live_procs(&self) -> usize {
        self.procs.iter().filter(|p| p.crashed_at.is_none()).count()
    }

    /// Total locks recovered from crashed holders across the run.
    #[must_use]
    pub fn recovered_locks(&self) -> u64 {
        self.totals().recovered_locks
    }

    /// Waiting proportion as defined for Figure 7 of the paper: total time
    /// spent waiting to acquire locks, divided by `elapsed × processors`.
    #[must_use]
    pub fn waiting_proportion(&self) -> f64 {
        let denom = self.elapsed().as_secs_f64() * self.procs.len() as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.totals().wait_time.as_secs_f64() / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_sums_components() {
        let s = ProcStats {
            compute: Duration::from_millis(10),
            lock_time: Duration::from_millis(2),
            wait_time: Duration::from_millis(3),
            timer_time: Duration::from_millis(1),
            ..ProcStats::default()
        };
        assert_eq!(s.busy(), Duration::from_millis(16));
        let o = s.overhead_sample();
        assert!((o.total_overhead() - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_difference() {
        let a = ProcStats { acquires: 5, compute: Duration::from_millis(1), ..Default::default() };
        let b = ProcStats { acquires: 9, compute: Duration::from_millis(4), ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.acquires, 4);
        assert_eq!(d.compute, Duration::from_millis(3));
    }

    #[test]
    fn waiting_proportion_bounds() {
        let stats = MachineStats {
            procs: vec![
                ProcStats { wait_time: Duration::from_secs(1), ..Default::default() },
                ProcStats::default(),
            ],
            finished_at: SimTime::ZERO + Duration::from_secs(2),
        };
        assert!((stats.waiting_proportion() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn waiting_proportion_of_an_empty_run_is_zero() {
        // Zero elapsed time (an empty run) must not divide by zero — the
        // proportion is defined as 0.0, not NaN.
        let no_procs = MachineStats { procs: vec![], finished_at: SimTime::ZERO };
        assert_eq!(no_procs.waiting_proportion(), 0.0);

        let zero_elapsed = MachineStats {
            procs: vec![ProcStats { wait_time: Duration::from_secs(1), ..Default::default() }],
            finished_at: SimTime::ZERO,
        };
        assert_eq!(zero_elapsed.waiting_proportion(), 0.0);
        assert!(zero_elapsed.waiting_proportion().is_finite());
    }

    #[test]
    fn accumulate_saturates_at_the_limits() {
        let mut a = ProcStats {
            compute: Duration::MAX,
            wait_time: Duration::MAX,
            acquires: u64::MAX,
            ..Default::default()
        };
        let b = ProcStats {
            compute: Duration::from_secs(1),
            wait_time: Duration::from_secs(1),
            lock_time: Duration::from_secs(2),
            acquires: 7,
            failed_attempts: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.compute, Duration::MAX);
        assert_eq!(a.wait_time, Duration::MAX);
        assert_eq!(a.acquires, u64::MAX);
        // Unsaturated fields still add normally.
        assert_eq!(a.lock_time, Duration::from_secs(2));
        assert_eq!(a.failed_attempts, 3);
        // Derived quantities clamp rather than overflow.
        assert_eq!(a.busy(), Duration::MAX);
    }
}
