//! Cost model of the simulated machine.

use std::time::Duration;

/// Cost parameters of the simulated shared-memory multiprocessor.
///
/// Defaults approximate the Stanford DASH machine the paper measured on:
/// spin locks with a few-microsecond acquire/release cost and a timer whose
/// read costs about 9 µs (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cost of a *successful* lock acquire.
    pub lock_acquire_cost: Duration,
    /// Cost of a lock release.
    pub lock_release_cost: Duration,
    /// Cost of one *failed* acquire attempt while spinning on a held lock.
    /// Waiting overhead is `failed attempts × this cost` (§4.3).
    pub lock_attempt_cost: Duration,
    /// Cost of reading the timer (§4.1: ≈ 9 µs on DASH).
    pub timer_read_cost: Duration,
    /// Cost of passing a barrier once every participant has arrived.
    pub barrier_cost: Duration,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            lock_acquire_cost: Duration::from_micros(2),
            lock_release_cost: Duration::from_micros(2),
            lock_attempt_cost: Duration::from_micros(1),
            timer_read_cost: Duration::from_micros(9),
            barrier_cost: Duration::from_micros(10),
        }
    }
}

impl MachineConfig {
    /// Cost of one successful acquire/release pair (used to express locking
    /// overhead as a time).
    #[must_use]
    pub fn lock_pair_cost(&self) -> Duration {
        self.lock_acquire_cost + self.lock_release_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_cost_sums_acquire_and_release() {
        let c = MachineConfig::default();
        assert_eq!(c.lock_pair_cost(), c.lock_acquire_cost + c.lock_release_cost);
    }
}
