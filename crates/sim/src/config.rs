//! Cost model of the simulated machine.

use std::fmt;
use std::time::Duration;

/// Cost parameters of the simulated shared-memory multiprocessor.
///
/// Defaults approximate the Stanford DASH machine the paper measured on:
/// spin locks with a few-microsecond acquire/release cost and a timer whose
/// read costs about 9 µs (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cost of a *successful* lock acquire.
    pub lock_acquire_cost: Duration,
    /// Cost of a lock release.
    pub lock_release_cost: Duration,
    /// Cost of one *failed* acquire attempt while spinning on a held lock.
    /// Waiting overhead is `failed attempts × this cost` (§4.3).
    pub lock_attempt_cost: Duration,
    /// Cost of reading the timer (§4.1: ≈ 9 µs on DASH).
    pub timer_read_cost: Duration,
    /// Cost of passing a barrier once every participant has arrived.
    pub barrier_cost: Duration,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            lock_acquire_cost: Duration::from_micros(2),
            lock_release_cost: Duration::from_micros(2),
            lock_attempt_cost: Duration::from_micros(1),
            timer_read_cost: Duration::from_micros(9),
            barrier_cost: Duration::from_micros(10),
        }
    }
}

/// Why a [`MachineConfig`] was rejected by [`MachineConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfigError {
    /// Name of the offending cost parameter.
    pub what: &'static str,
    /// Its rejected value.
    pub value: Duration,
    /// The bound it violated.
    pub limit: Duration,
}

impl fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine config: {} is {:?}, above the {:?} sanity bound",
            self.what, self.value, self.limit
        )
    }
}

impl std::error::Error for MachineConfigError {}

/// Largest plausible value for any single hardware primitive cost. Costs
/// above this are almost certainly unit mistakes (seconds where
/// microseconds were meant) and would also let event arithmetic overflow
/// over long runs.
const MAX_COST: Duration = Duration::from_secs(10);

impl MachineConfig {
    /// Cost of one successful acquire/release pair (used to express locking
    /// overhead as a time).
    #[must_use]
    pub fn lock_pair_cost(&self) -> Duration {
        self.lock_acquire_cost + self.lock_release_cost
    }

    /// Check every cost against sanity bounds. Called from machine
    /// construction ([`Machine::try_new`]); zero costs are fine (the engine
    /// handles them), absurdly large ones are rejected.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range parameter.
    ///
    /// [`Machine::try_new`]: crate::machine::Machine::try_new
    pub fn validate(&self) -> Result<(), MachineConfigError> {
        let costs = [
            ("lock_acquire_cost", self.lock_acquire_cost),
            ("lock_release_cost", self.lock_release_cost),
            ("lock_attempt_cost", self.lock_attempt_cost),
            ("timer_read_cost", self.timer_read_cost),
            ("barrier_cost", self.barrier_cost),
        ];
        for (what, value) in costs {
            if value > MAX_COST {
                return Err(MachineConfigError { what, value, limit: MAX_COST });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_cost_sums_acquire_and_release() {
        let c = MachineConfig::default();
        assert_eq!(c.lock_pair_cost(), c.lock_acquire_cost + c.lock_release_cost);
    }

    #[test]
    fn default_config_is_valid() {
        MachineConfig::default().validate().unwrap();
        let zeroed = MachineConfig {
            lock_acquire_cost: Duration::ZERO,
            lock_release_cost: Duration::ZERO,
            lock_attempt_cost: Duration::ZERO,
            timer_read_cost: Duration::ZERO,
            barrier_cost: Duration::ZERO,
        };
        zeroed.validate().unwrap();
    }

    #[test]
    fn absurd_costs_are_rejected_with_the_offender_named() {
        let cfg = MachineConfig {
            timer_read_cost: Duration::from_secs(3600),
            ..MachineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.what, "timer_read_cost");
        assert_eq!(err.value, Duration::from_secs(3600));
        assert!(err.to_string().contains("timer_read_cost"));
    }
}
