//! Virtual time for the simulated multiprocessor.
//!
//! Simulation time is a nanosecond counter starting at zero. Durations are
//! plain [`std::time::Duration`] so the rest of the workspace (notably the
//! execution-agnostic controller in `dynfb-core`) needs no custom types.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of virtual time: nanoseconds since the start of simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Raw nanoseconds since the start of simulation.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as a [`Duration`] since simulation start.
    #[must_use]
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Seconds since simulation start, as a float (for reports).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.as_duration().as_secs_f64()
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later — for
    /// *observed* timestamps, which fault injection (timer jitter, negative
    /// drift) can legitimately make non-monotone.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + u64::try_from(rhs.as_nanos()).expect("duration overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + Duration::from_micros(9);
        assert_eq!(t.as_nanos(), 9_000);
        assert_eq!(t - SimTime::ZERO, Duration::from_micros(9));
        assert_eq!(t.since(SimTime::from_nanos(4_000)), Duration::from_micros(5));
    }

    #[test]
    fn saturating_since_tolerates_backwards_time() {
        let early = SimTime::from_nanos(100);
        let late = SimTime::from_nanos(400);
        assert_eq!(late.saturating_since(early), Duration::from_nanos(300));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(t.to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
