//! The discrete-event simulation engine.
//!
//! [`Machine::run`] executes one [`Process`] per simulated processor,
//! advancing a virtual clock through an event queue. Events at equal
//! virtual times are ordered by insertion sequence, which makes every
//! simulation fully deterministic: the same processes produce the same
//! statistics on every run.

use crate::config::{MachineConfig, MachineConfigError};
use crate::faults::{FaultPlan, FaultPlanError};
use crate::process::{BarrierId, LockId, ProcCtx, ProcId, Process, Step};
use crate::stats::{MachineStats, ProcStats};
use crate::time::SimTime;
use dynfb_core::metrics::{MetricsSink, NoMetrics};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::time::Duration;

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// All remaining processes are blocked (on locks or barriers).
    Deadlock {
        /// Virtual time at which progress stopped.
        at: SimTime,
        /// Processors blocked when the queue drained.
        blocked: Vec<ProcId>,
    },
    /// A process released a lock it does not hold.
    BadRelease {
        /// Offending processor.
        proc: ProcId,
        /// Lock it attempted to release.
        lock: LockId,
    },
    /// A process acquired a lock it already holds (simulated spin locks are
    /// not re-entrant; this would spin forever).
    RecursiveAcquire {
        /// Offending processor.
        proc: ProcId,
        /// Lock it attempted to re-acquire.
        lock: LockId,
    },
    /// A step referenced a lock or barrier that was never created.
    UnknownResource,
    /// The configured event limit was exceeded (runaway process).
    EventLimitExceeded,
    /// A run was requested on zero processors.
    NoProcessors,
    /// The machine cost model failed validation.
    Config(MachineConfigError),
    /// The fault-injection plan failed validation.
    FaultPlan(FaultPlanError),
    /// A static run requested a policy no version of a section implements.
    UnknownPolicy {
        /// The parallel section.
        section: String,
        /// The requested policy.
        policy: String,
        /// The versions the section does provide.
        available: Vec<String>,
    },
    /// A parallel section declared no code versions at all.
    NoVersions {
        /// The offending section.
        section: String,
    },
    /// An internal runtime invariant was violated (a bug in this crate,
    /// reported as an error instead of a panic so callers degrade cleanly).
    Internal(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at {at}: processors {blocked:?} blocked")
            }
            SimError::BadRelease { proc, lock } => {
                write!(f, "processor {proc:?} released lock {lock:?} it does not hold")
            }
            SimError::RecursiveAcquire { proc, lock } => {
                write!(f, "processor {proc:?} re-acquired lock {lock:?} it already holds")
            }
            SimError::UnknownResource => write!(f, "step referenced an unknown lock or barrier"),
            SimError::EventLimitExceeded => write!(f, "event limit exceeded"),
            SimError::NoProcessors => write!(f, "need at least one processor"),
            SimError::Config(e) => write!(f, "{e}"),
            SimError::FaultPlan(e) => write!(f, "{e}"),
            SimError::UnknownPolicy { section, policy, available } => write!(
                f,
                "section `{section}` has no version for policy `{policy}` \
                 (available: {available:?})"
            ),
            SimError::NoVersions { section } => {
                write!(f, "parallel section `{section}` declares no code versions")
            }
            SimError::Internal(what) => write!(f, "internal runtime invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::FaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineConfigError> for SimError {
    fn from(e: MachineConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::FaultPlan(e)
    }
}

/// Scale a duration by a fault factor, saturating instead of panicking on
/// extreme products. Exact identity for the common factor of 1.
fn scale(d: Duration, factor: f64) -> Duration {
    if factor <= 1.0 {
        return d;
    }
    let ns = d.as_nanos() as f64 * factor;
    // `as` saturates at the type bounds, so absurd products clamp.
    Duration::from_nanos(ns as u64)
}

/// Grant a freed lock to its first waiter (if any) at `free_at`, accounting
/// the waiter's spinning as waiting overhead (§4.3 — failed attempts ×
/// cost). Shared by the normal release path and crashed-holder recovery so
/// both account identically — including the metrics emission the
/// consistency oracles check.
#[allow(clippy::too_many_arguments)]
fn grant_next_waiter<M: MetricsSink>(
    l: &mut LockState,
    lock_idx: usize,
    free_at: SimTime,
    config: &MachineConfig,
    faults: &FaultPlan,
    stats: &mut [ProcStats],
    status: &mut [ProcStatus],
    queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: &mut u64,
    metrics: &mut M,
) {
    let Some((w, since)) = l.waiters.pop_front() else { return };
    let span = free_at - since;
    let attempt = config.lock_attempt_cost;
    let attempts = if attempt.is_zero() {
        1
    } else {
        let a = span.as_nanos() / attempt.as_nanos();
        u64::try_from(a).unwrap_or(u64::MAX).max(1)
    };
    let acq_cost = scale(config.lock_acquire_cost, faults.lock_cost_factor(lock_idx, free_at));
    let wi = w.0;
    stats[wi].wait_time += span;
    stats[wi].failed_attempts += attempts;
    stats[wi].acquires += 1;
    stats[wi].lock_time += acq_cost;
    l.holder = Some(w);
    l.acquires += 1;
    l.contended_acquires += 1;
    if M::ENABLED {
        l.held_since = free_at + acq_cost;
        metrics.lock_acquired(lock_idx, acq_cost, span, attempts);
    }
    status[wi] = ProcStatus::Ready;
    queue.push(Reverse(((free_at + acq_cost).as_nanos(), *seq, wi)));
    *seq += 1;
}

/// Release a completed barrier: schedule every arrived processor at the
/// release instant and pick the leader. `leader` is the completing arriver
/// in the normal path; crash-driven releases (`None`) elect the latest
/// arrival (ties to the higher processor id, matching the normal path
/// where the last arriver leads). The release never precedes `at_least`,
/// so a crash-driven release cannot schedule events in the past.
#[allow(clippy::too_many_arguments)]
fn release_barrier(
    b: &mut BarrierState,
    at_least: SimTime,
    barrier_cost: Duration,
    stats: &mut [ProcStats],
    status: &mut [ProcStatus],
    leader_flag: &mut [bool],
    queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: &mut u64,
    leader: Option<usize>,
) {
    let latest = b.arrived.iter().map(|&(_, at)| at).max().unwrap_or(at_least);
    let release = latest.max(at_least) + barrier_cost;
    let lead =
        leader.or_else(|| b.arrived.iter().max_by_key(|&&(w, at)| (at, w.0)).map(|&(w, _)| w.0));
    if let Some(lead) = lead {
        leader_flag[lead] = true;
    }
    for &(w, at) in b.arrived.iter().rev() {
        stats[w.0].barrier_wait += release - at;
        status[w.0] = ProcStatus::Ready;
        queue.push(Reverse((release.as_nanos(), *seq, w.0)));
        *seq += 1;
    }
    b.arrived.clear();
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ProcId>,
    waiters: VecDeque<(ProcId, SimTime)>,
    acquires: u64,
    contended_acquires: u64,
    /// When the current holder completed its acquire — only maintained
    /// while a [`MetricsSink`] is attached (hold-time attribution).
    held_since: SimTime,
    /// Touched since the last reset. Lock pools are sized for the worst
    /// case (one lock per possible object), so per-run reset walks only
    /// the dirty list instead of the whole pool.
    dirty: bool,
}

#[derive(Debug)]
struct BarrierState {
    /// Configured rendezvous size, restored at the start of every run.
    size: usize,
    /// Live rendezvous size: shrinks when a participant crash-stops.
    participants: usize,
    arrived: Vec<(ProcId, SimTime)>,
}

/// Per-lock usage statistics, available after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockUsage {
    /// Total successful acquires of this lock.
    pub acquires: u64,
    /// Acquires that had to wait for another processor.
    pub contended_acquires: u64,
}

/// A simulated shared-memory multiprocessor.
///
/// Create the machine, add the locks and barriers the workload needs, then
/// [`run`](Machine::run) one process per processor.
///
/// ```
/// use dynfb_sim::{Machine, MachineConfig, Step, ProcCtx};
/// use std::time::Duration;
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let lock = machine.add_lock();
/// let procs = (0..2).map(|_| {
///     let mut steps = vec![
///         Step::Compute(Duration::from_micros(50)),
///         Step::Acquire(lock),
///         Step::Compute(Duration::from_micros(10)),
///         Step::Release(lock),
///         Step::Done,
///     ].into_iter();
///     let f = move |_ctx: &mut ProcCtx<'_>| steps.next().unwrap();
///     Box::new(f) as Box<dyn dynfb_sim::Process>
/// }).collect();
/// let stats = machine.run(procs)?;
/// assert_eq!(stats.totals().acquires, 2);
/// # Ok::<(), dynfb_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    faults: FaultPlan,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    event_limit: Option<u64>,
    /// Indices of locks touched by the current run, reset lazily at the
    /// start of the next one (usage counters stay readable in between).
    dirty_locks: Vec<usize>,
    /// Scheduler event queue, kept across runs so its allocation is
    /// paid once per machine instead of once per run.
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    Ready,
    Blocked,
    Finished,
    /// Crash-stopped by a [`FaultKind::ProcCrash`] fault; never runs again.
    ///
    /// [`FaultKind::ProcCrash`]: crate::faults::FaultKind::ProcCrash
    Dead,
}

impl Machine {
    /// Create a machine with the given cost model.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`MachineConfig::validate`]; use
    /// [`try_new`](Machine::try_new) to handle invalid configs gracefully.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        Machine::try_new(config).expect("invalid machine config")
    }

    /// Create a machine with the given cost model, validating it first.
    ///
    /// # Errors
    ///
    /// Returns the validation failure for out-of-range costs.
    pub fn try_new(config: MachineConfig) -> Result<Self, MachineConfigError> {
        config.validate()?;
        Ok(Machine {
            config,
            faults: FaultPlan::default(),
            locks: Vec::new(),
            barriers: Vec::new(),
            event_limit: None,
            dirty_locks: Vec::new(),
            queue: BinaryHeap::new(),
        })
    }

    /// The machine's cost model.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Attach a fault-injection plan. All subsequent runs execute under it;
    /// the empty default plan perturbs nothing.
    ///
    /// # Errors
    ///
    /// Rejects plans that fail [`FaultPlan::validate`], leaving the current
    /// plan in place.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate()?;
        self.faults = plan;
        Ok(())
    }

    /// The active fault-injection plan.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Create a new spin lock (e.g. one per application object).
    pub fn add_lock(&mut self) -> LockId {
        self.locks.push(LockState::default());
        LockId(self.locks.len() - 1)
    }

    /// Create `n` locks at once, returning the id of the first; ids are
    /// consecutive. Convenient for per-object locks over object arrays.
    pub fn add_locks(&mut self, n: usize) -> LockId {
        let first = LockId(self.locks.len());
        for _ in 0..n {
            self.locks.push(LockState::default());
        }
        first
    }

    /// Create a barrier for `participants` processors.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn add_barrier(&mut self, participants: usize) -> BarrierId {
        assert!(participants > 0, "barrier needs at least one participant");
        self.barriers.push(BarrierState { size: participants, participants, arrived: Vec::new() });
        BarrierId(self.barriers.len() - 1)
    }

    /// Number of locks created so far.
    #[must_use]
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Abort the simulation with [`SimError::EventLimitExceeded`] after this
    /// many events (guards tests against runaway processes).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = Some(limit);
    }

    /// Per-lock usage counts from the last run.
    #[must_use]
    pub fn lock_usage(&self, lock: LockId) -> LockUsage {
        let l = &self.locks[lock.0];
        LockUsage { acquires: l.acquires, contended_acquires: l.contended_acquires }
    }

    /// Run one process per processor until all finish.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on deadlock, lock misuse, unknown resources,
    /// or when the event limit is exceeded.
    pub fn run<'a>(
        &mut self,
        processes: Vec<Box<dyn Process + 'a>>,
    ) -> Result<MachineStats, SimError> {
        self.run_metered(processes, &mut NoMetrics)
    }

    /// Run one process per processor, attributing lock activity to `metrics`.
    ///
    /// Every per-lock event is recorded at the same accounting site that
    /// updates [`ProcStats`], with the same virtual-time quantities — so the
    /// sum of per-lock metrics equals the machine aggregates *exactly* (the
    /// consistency-oracle contract). With [`NoMetrics`] the emission sites
    /// monomorphize away and this is [`run`](Machine::run).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on deadlock, lock misuse, unknown resources,
    /// or when the event limit is exceeded.
    pub fn run_metered<'a, M: MetricsSink>(
        &mut self,
        mut processes: Vec<Box<dyn Process + 'a>>,
        metrics: &mut M,
    ) -> Result<MachineStats, SimError> {
        // Split the borrow once so the event loop can address resources,
        // the persistent queue, and the fault plan independently.
        let Machine { config, faults, locks, barriers, event_limit, dirty_locks, queue } = self;
        let n = processes.len();
        let mut stats = vec![ProcStats::default(); n];
        let mut status = vec![ProcStatus::Ready; n];
        let mut leader_flag = vec![false; n];
        let mut seq: u64 = 0;
        let mut events: u64 = 0;
        let mut done = 0usize;
        let mut dead = 0usize;
        // Crash instants are pure per-proc functions of the plan.
        let crash_at: Vec<Option<SimTime>> = (0..n).map(|p| faults.crash_at(p)).collect();

        // Reset resource state so a machine can be reused across runs.
        // Only locks the previous run touched need resetting; the rest of
        // the (worst-case-sized) pool is still pristine.
        for &i in dirty_locks.iter() {
            let l = &mut locks[i];
            l.holder = None;
            l.waiters.clear();
            l.acquires = 0;
            l.contended_acquires = 0;
            l.dirty = false;
        }
        dirty_locks.clear();
        for b in barriers.iter_mut() {
            b.participants = b.size;
            b.arrived.clear();
        }
        queue.clear();

        let push = |queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    seq: &mut u64,
                    t: SimTime,
                    p: usize| {
            queue.push(Reverse((t.as_nanos(), *seq, p)));
            *seq += 1;
        };

        for p in 0..n {
            push(queue, &mut seq, SimTime::ZERO, p);
        }

        while let Some(Reverse((t_ns, _, p))) = queue.pop() {
            events += 1;
            if let Some(limit) = *event_limit {
                if events > limit {
                    return Err(SimError::EventLimitExceeded);
                }
            }
            let now = SimTime::from_nanos(t_ns);
            debug_assert_eq!(status[p], ProcStatus::Ready);

            // Crash-stop faults take effect at the processor's next
            // scheduling point at or after the crash instant (a blocked
            // processor cannot observe its own death until it is granted
            // the resource it waits on and runs again).
            if crash_at[p].is_some_and(|c| now >= c) {
                stats[p].crashed_at = Some(now);
                status[p] = ProcStatus::Dead;
                dead += 1;
                if M::ENABLED {
                    metrics.counter("sim_proc_crashes", 1);
                }
                // Abort-and-release: recover every lock orphaned by the
                // dead holder. The release costs nothing (nobody executes
                // it) and is granted to the first waiter immediately, with
                // the exact accounting of a normal release — so the
                // per-lock metrics oracles (releases == acquires, summed
                // locking/waiting times) still balance.
                for &li in dirty_locks.iter() {
                    let l = &mut locks[li];
                    if l.holder != Some(ProcId(p)) {
                        continue;
                    }
                    stats[p].recovered_locks += 1;
                    if M::ENABLED {
                        metrics.lock_released(
                            li,
                            Duration::ZERO,
                            now.saturating_since(l.held_since),
                        );
                        metrics.counter("sim_locks_recovered", 1);
                    }
                    l.holder = None;
                    grant_next_waiter(
                        l,
                        li,
                        now,
                        config,
                        faults,
                        &mut stats,
                        &mut status,
                        queue,
                        &mut seq,
                        metrics,
                    );
                }
                // Dead processors drop out of every barrier: the rendezvous
                // size shrinks so survivors are not stranded waiting for an
                // arrival that will never come. (Contract: every processor
                // of a run participates in every barrier, which is how the
                // runtime drives its section/switch rendezvous.)
                for b in barriers.iter_mut() {
                    b.participants = b.participants.saturating_sub(1);
                    if !b.arrived.is_empty() && b.arrived.len() >= b.participants {
                        release_barrier(
                            b,
                            now,
                            config.barrier_cost,
                            &mut stats,
                            &mut status,
                            &mut leader_flag,
                            queue,
                            &mut seq,
                            None,
                        );
                    }
                }
                continue;
            }

            // Stall faults hang the processor: defer this scheduling point
            // to the end of the stall window. Stalled time is charged to no
            // account — a hung processor executes nothing — but lock
            // waiters and barrier peers feel the delay.
            if let Some(resume) = faults.stall_until(p, now) {
                push(queue, &mut seq, resume, p);
                continue;
            }

            let mut ctx = ProcCtx {
                now,
                proc: ProcId(p),
                barrier_leader: leader_flag[p],
                timer_read_cost: config.timer_read_cost,
                faults,
                prior_timer_reads: stats[p].timer_reads,
                stats: &stats,
                pending_compute: Duration::ZERO,
                pending_timer: Duration::ZERO,
                timer_reads: 0,
            };
            leader_flag[p] = false;
            let step = processes[p].step(&mut ctx);
            let ProcCtx { pending_compute, pending_timer, timer_reads, .. } = ctx;

            stats[p].compute += pending_compute;
            stats[p].timer_time += pending_timer;
            stats[p].timer_reads += timer_reads;
            let t_eff = now + pending_compute + pending_timer;

            match step {
                Step::Compute(d) => {
                    // Slowdown faults stretch computation. The factor is
                    // evaluated once at the step's start (a step is the
                    // granularity of the event engine).
                    let d = scale(d, faults.compute_factor(p, t_eff));
                    stats[p].compute += d;
                    push(queue, &mut seq, t_eff + d, p);
                }
                Step::Yield => {
                    push(queue, &mut seq, t_eff, p);
                }
                Step::Acquire(lock) => {
                    let cost =
                        scale(config.lock_acquire_cost, faults.lock_cost_factor(lock.0, t_eff));
                    let l = locks.get_mut(lock.0).ok_or(SimError::UnknownResource)?;
                    if l.holder == Some(ProcId(p)) {
                        return Err(SimError::RecursiveAcquire { proc: ProcId(p), lock });
                    }
                    if !l.dirty {
                        l.dirty = true;
                        dirty_locks.push(lock.0);
                    }
                    if l.holder.is_none() {
                        l.holder = Some(ProcId(p));
                        l.acquires += 1;
                        stats[p].acquires += 1;
                        stats[p].lock_time += cost;
                        if M::ENABLED {
                            l.held_since = t_eff + cost;
                            metrics.lock_acquired(lock.0, cost, Duration::ZERO, 0);
                        }
                        push(queue, &mut seq, t_eff + cost, p);
                    } else {
                        l.waiters.push_back((ProcId(p), t_eff));
                        status[p] = ProcStatus::Blocked;
                    }
                }
                Step::Release(lock) => {
                    let cost =
                        scale(config.lock_release_cost, faults.lock_cost_factor(lock.0, t_eff));
                    // Contention storms leave the lock dead for a while
                    // after each release (the holder was preempted at the
                    // worst moment). The releaser itself proceeds once its
                    // release completes; only waiters see the dead time.
                    let extra = faults.extra_hold(lock.0, t_eff);
                    let l = locks.get_mut(lock.0).ok_or(SimError::UnknownResource)?;
                    if l.holder != Some(ProcId(p)) {
                        return Err(SimError::BadRelease { proc: ProcId(p), lock });
                    }
                    stats[p].lock_time += cost;
                    if M::ENABLED {
                        // Held from acquire completion to release *start*
                        // (the release cost is locking, not holding).
                        metrics.lock_released(lock.0, cost, t_eff.saturating_since(l.held_since));
                    }
                    let released_at = t_eff + cost;
                    let free_at = released_at + extra;
                    l.holder = None;
                    grant_next_waiter(
                        l,
                        lock.0,
                        free_at,
                        config,
                        faults,
                        &mut stats,
                        &mut status,
                        queue,
                        &mut seq,
                        metrics,
                    );
                    push(queue, &mut seq, released_at, p);
                }
                Step::Barrier(barrier) => {
                    // Straggler faults delay this processor's arrival.
                    let arrival = t_eff + faults.barrier_delay(p, t_eff);
                    let b = barriers.get_mut(barrier.0).ok_or(SimError::UnknownResource)?;
                    b.arrived.push((ProcId(p), arrival));
                    if b.arrived.len() >= b.participants {
                        // Release after the *latest* arrival (a delayed
                        // straggler can arrive later than the last
                        // processor to reach the barrier). The last arriver
                        // is the leader and is scheduled first at the
                        // release instant, so it can perform switch
                        // bookkeeping before the others resume.
                        release_barrier(
                            b,
                            t_eff,
                            config.barrier_cost,
                            &mut stats,
                            &mut status,
                            &mut leader_flag,
                            queue,
                            &mut seq,
                            Some(p),
                        );
                    } else {
                        status[p] = ProcStatus::Blocked;
                    }
                }
                Step::Done => {
                    stats[p].done_at = Some(t_eff);
                    status[p] = ProcStatus::Finished;
                    done += 1;
                }
            }
        }

        if done + dead != n {
            let blocked: Vec<ProcId> = (0..n)
                .filter(|&i| !matches!(status[i], ProcStatus::Finished | ProcStatus::Dead))
                .map(ProcId)
                .collect();
            let at = stats
                .iter()
                .filter_map(|s| s.done_at.or(s.crashed_at))
                .max()
                .unwrap_or(SimTime::ZERO);
            return Err(SimError::Deadlock { at, blocked });
        }

        // A run "finishes" when the last processor stops executing — by
        // completing its process or by crash-stopping.
        let finished_at =
            stats.iter().filter_map(|s| s.done_at.or(s.crashed_at)).max().unwrap_or(SimTime::ZERO);
        Ok(MachineStats { procs: stats, finished_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process defined by a fixed list of steps.
    struct Script(std::vec::IntoIter<Step>);

    impl Script {
        fn new(steps: Vec<Step>) -> Self {
            Script(steps.into_iter())
        }
    }

    impl Process for Script {
        fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
            self.0.next().unwrap_or(Step::Done)
        }
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn single_process_compute_accumulates() {
        let mut m = Machine::new(MachineConfig::default());
        let stats = m
            .run(vec![Box::new(Script::new(vec![
                Step::Compute(ms(5)),
                Step::Compute(ms(7)),
                Step::Done,
            ]))])
            .unwrap();
        assert_eq!(stats.procs[0].compute, ms(12));
        assert_eq!(stats.finished_at, SimTime::ZERO + ms(12));
    }

    #[test]
    fn uncontended_lock_counts_no_waiting() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        let stats = m
            .run(vec![Box::new(Script::new(vec![
                Step::Acquire(l),
                Step::Compute(ms(1)),
                Step::Release(l),
                Step::Done,
            ]))])
            .unwrap();
        let p = &stats.procs[0];
        assert_eq!(p.acquires, 1);
        assert_eq!(p.failed_attempts, 0);
        assert_eq!(p.wait_time, Duration::ZERO);
        assert_eq!(p.lock_time, m.config().lock_pair_cost());
    }

    #[test]
    fn contended_lock_accounts_waiting() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        // Proc 0 grabs the lock immediately and holds it for 10ms.
        // Proc 1 tries at t=0 and must wait.
        let p0 = Script::new(vec![
            Step::Acquire(l),
            Step::Compute(ms(10)),
            Step::Release(l),
            Step::Done,
        ]);
        let p1 = Script::new(vec![Step::Acquire(l), Step::Release(l), Step::Done]);
        let stats = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        let w = &stats.procs[1];
        assert_eq!(w.acquires, 1);
        assert!(w.failed_attempts > 0);
        assert!(w.wait_time >= ms(10), "waited {:?}", w.wait_time);
        assert_eq!(m.lock_usage(l).acquires, 2);
        assert_eq!(m.lock_usage(l).contended_acquires, 1);
    }

    #[test]
    fn lock_grants_are_fifo() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        // Proc 0 holds the lock; procs 1 and 2 queue at t=0 (1 first by
        // deterministic tie-break). After proc 1 gets the lock it computes
        // long enough that proc 2's total wait proves ordering.
        let hold =
            Script::new(vec![Step::Acquire(l), Step::Compute(ms(5)), Step::Release(l), Step::Done]);
        let w1 =
            Script::new(vec![Step::Acquire(l), Step::Compute(ms(3)), Step::Release(l), Step::Done]);
        let w2 = Script::new(vec![Step::Acquire(l), Step::Release(l), Step::Done]);
        let stats = m.run(vec![Box::new(hold), Box::new(w1), Box::new(w2)]).unwrap();
        assert!(stats.procs[2].wait_time > stats.procs[1].wait_time);
    }

    #[test]
    fn barrier_releases_everyone_together() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(3);
        let mk = |work_ms: u64| {
            Script::new(vec![Step::Compute(ms(work_ms)), Step::Barrier(b), Step::Done])
        };
        let stats = m.run(vec![Box::new(mk(1)), Box::new(mk(5)), Box::new(mk(3))]).unwrap();
        let done: Vec<_> = stats.procs.iter().map(|p| p.done_at.unwrap()).collect();
        assert_eq!(done[0], done[1]);
        assert_eq!(done[1], done[2]);
        // Fastest proc waited the longest.
        assert!(stats.procs[0].barrier_wait > stats.procs[1].barrier_wait);
    }

    #[test]
    fn barrier_leader_is_last_arriver() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(2);
        struct P {
            work: Duration,
            barrier: BarrierId,
            state: u32,
            was_leader: std::rc::Rc<std::cell::Cell<bool>>,
        }
        impl Process for P {
            fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
                self.state += 1;
                match self.state {
                    1 => Step::Compute(self.work),
                    2 => Step::Barrier(self.barrier),
                    _ => {
                        self.was_leader.set(ctx.is_barrier_leader());
                        Step::Done
                    }
                }
            }
        }
        let l0 = std::rc::Rc::new(std::cell::Cell::new(false));
        let l1 = std::rc::Rc::new(std::cell::Cell::new(false));
        let p0 = P { work: ms(1), barrier: b, state: 0, was_leader: l0.clone() };
        let p1 = P { work: ms(9), barrier: b, state: 0, was_leader: l1.clone() };
        m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        assert!(!l0.get(), "early arriver must not lead");
        assert!(l1.get(), "last arriver leads");
    }

    #[test]
    fn deadlock_is_reported() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(2);
        // Only one of two procs reaches the barrier.
        let p0 = Script::new(vec![Step::Barrier(b), Step::Done]);
        let p1 = Script::new(vec![Step::Done]);
        let err = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { ref blocked, .. } if blocked == &[ProcId(0)]));
    }

    #[test]
    fn bad_release_is_reported() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        let p = Script::new(vec![Step::Release(l), Step::Done]);
        assert!(matches!(m.run(vec![Box::new(p)]).unwrap_err(), SimError::BadRelease { .. }));
    }

    #[test]
    fn recursive_acquire_is_reported() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        let p = Script::new(vec![Step::Acquire(l), Step::Acquire(l), Step::Done]);
        assert!(matches!(m.run(vec![Box::new(p)]).unwrap_err(), SimError::RecursiveAcquire { .. }));
    }

    #[test]
    fn timer_reads_cost_time() {
        let mut m = Machine::new(MachineConfig::default());
        struct P(u32);
        impl Process for P {
            fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Step {
                self.0 += 1;
                if self.0 == 1 {
                    let t0 = ctx.read_timer();
                    let t1 = ctx.read_timer();
                    assert!(t1 > t0);
                    Step::Compute(Duration::from_millis(1))
                } else {
                    Step::Done
                }
            }
        }
        let stats = m.run(vec![Box::new(P(0))]).unwrap();
        assert_eq!(stats.procs[0].timer_reads, 2);
        assert_eq!(stats.procs[0].timer_time, m.config().timer_read_cost * 2);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_event_limit(100);
        let spin = |_: &mut ProcCtx<'_>| Step::Yield;
        let err = m.run(vec![Box::new(spin) as Box<dyn Process>]).unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded);
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut m = Machine::new(MachineConfig::default());
            let l = m.add_lock();
            let procs: Vec<Box<dyn Process>> = (0..4)
                .map(|i| {
                    Box::new(Script::new(vec![
                        Step::Compute(Duration::from_micros(10 * (i + 1))),
                        Step::Acquire(l),
                        Step::Compute(Duration::from_micros(100)),
                        Step::Release(l),
                        Step::Done,
                    ])) as Box<dyn Process>
                })
                .collect();
            m.run(procs).unwrap()
        };
        assert_eq!(build(), build());
    }

    /// Build a contended multi-lock workload and return (stats, registry).
    fn metered_contended_run() -> (MachineStats, dynfb_core::MetricsRegistry) {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.add_lock();
        let b = m.add_lock();
        let procs: Vec<Box<dyn Process>> = (0..4)
            .map(|i| {
                let l = if i % 2 == 0 { a } else { b };
                Box::new(Script::new(vec![
                    Step::Compute(Duration::from_micros(10 * (i + 1))),
                    Step::Acquire(l),
                    Step::Compute(Duration::from_micros(200)),
                    Step::Release(l),
                    Step::Acquire(a),
                    Step::Release(a),
                    Step::Done,
                ])) as Box<dyn Process>
            })
            .collect();
        let mut reg = dynfb_core::MetricsRegistry::new();
        let stats = m.run_metered(procs, &mut reg).unwrap();
        (stats, reg)
    }

    #[test]
    fn metered_per_lock_sums_equal_proc_stats_exactly() {
        let (stats, reg) = metered_contended_run();
        let totals = stats.totals();
        let sums = reg.totals();
        assert_eq!(sums.acquires, totals.acquires);
        assert_eq!(sums.failed_attempts, totals.failed_attempts);
        assert_eq!(sums.waiting, totals.wait_time);
        assert_eq!(sums.locking, totals.lock_time);
        assert_eq!(sums.acquires, sums.releases);
        assert!(sums.contended_acquires > 0, "workload must contend");
        // Hold time is metrics-only: every acquire observed a hold >= the
        // 200us critical computation on the first round.
        assert!(sums.held >= Duration::from_micros(200 * 4), "held {:?}", sums.held);
    }

    #[test]
    fn metered_run_matches_unmetered_run() {
        let (metered, _) = metered_contended_run();
        let mut m = Machine::new(MachineConfig::default());
        let a = m.add_lock();
        let b = m.add_lock();
        let procs: Vec<Box<dyn Process>> = (0..4)
            .map(|i| {
                let l = if i % 2 == 0 { a } else { b };
                Box::new(Script::new(vec![
                    Step::Compute(Duration::from_micros(10 * (i + 1))),
                    Step::Acquire(l),
                    Step::Compute(Duration::from_micros(200)),
                    Step::Release(l),
                    Step::Acquire(a),
                    Step::Release(a),
                    Step::Done,
                ])) as Box<dyn Process>
            })
            .collect();
        assert_eq!(m.run(procs).unwrap(), metered, "observation must not perturb the simulation");
    }

    #[test]
    fn metered_attribution_is_per_lock() {
        let (_, reg) = metered_contended_run();
        // Lock 0 (`a`) sees the cross-traffic second round; lock 1 (`b`)
        // only procs 1 and 3.
        assert_eq!(reg.lock(0).acquires + reg.lock(1).acquires, reg.totals().acquires);
        assert_eq!(reg.lock(1).acquires, 2);
        assert_eq!(reg.lock(0).acquires, 6);
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan, Target, Window};

    struct Script(std::vec::IntoIter<Step>);

    impl Script {
        fn new(steps: Vec<Step>) -> Self {
            Script(steps.into_iter())
        }
    }

    impl Process for Script {
        fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
            self.0.next().unwrap_or(Step::Done)
        }
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn crash(procs: Vec<usize>, at_ms: u64) -> FaultPlan {
        FaultPlan::new(7).with_event(
            Window::new(ms(at_ms), ms(at_ms + 1)),
            FaultKind::ProcCrash { procs: Target::Only(procs) },
        )
    }

    #[test]
    fn crashed_proc_stops_and_the_run_still_completes() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_fault_plan(crash(vec![0], 5)).unwrap();
        // Proc 0 would compute 3×4ms; it dies at its second scheduling
        // point (t=4ms ≥ … no: crash at 5ms, so after the 4ms step it pops
        // at 4ms < 5ms, computes again, pops at 8ms ≥ 5ms and dies).
        let p0 = Script::new(vec![
            Step::Compute(ms(4)),
            Step::Compute(ms(4)),
            Step::Compute(ms(4)),
            Step::Done,
        ]);
        let p1 = Script::new(vec![Step::Compute(ms(20)), Step::Done]);
        let stats = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        assert_eq!(stats.procs[0].crashed_at, Some(SimTime::ZERO + ms(8)));
        assert_eq!(stats.procs[0].done_at, None);
        assert_eq!(stats.procs[0].compute, ms(8), "work before death is charged");
        assert_eq!(stats.procs[1].done_at, Some(SimTime::ZERO + ms(20)));
        assert_eq!(stats.crashed_procs(), vec![0]);
        assert_eq!(stats.live_procs(), 1);
        assert_eq!(stats.finished_at, SimTime::ZERO + ms(20));
    }

    #[test]
    fn all_procs_crashing_ends_the_run_without_deadlock() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_fault_plan(crash(vec![0, 1], 1)).unwrap();
        let mk = || Script::new(vec![Step::Compute(ms(5)), Step::Compute(ms(5)), Step::Done]);
        let stats = m.run(vec![Box::new(mk()), Box::new(mk())]).unwrap();
        assert_eq!(stats.live_procs(), 0);
        assert_eq!(stats.finished_at, SimTime::ZERO + ms(5));
    }

    #[test]
    fn orphaned_lock_is_recovered_and_granted_to_waiters() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        m.set_fault_plan(crash(vec![0], 2)).unwrap();
        // Proc 0 takes the lock and dies mid-critical-section; proc 1 must
        // still get the lock and finish (no deadlock on the orphan).
        let p0 = Script::new(vec![
            Step::Acquire(l),
            Step::Compute(ms(10)),
            Step::Release(l),
            Step::Done,
        ]);
        let p1 = Script::new(vec![Step::Acquire(l), Step::Release(l), Step::Done]);
        let stats = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        assert_eq!(stats.procs[0].recovered_locks, 1);
        assert!(stats.procs[0].crashed_at.is_some());
        assert_eq!(stats.procs[1].acquires, 1);
        assert!(stats.procs[1].done_at.is_some(), "waiter must complete");
        assert_eq!(stats.recovered_locks(), 1);
        // The waiter's spin until the recovery instant is accounted.
        assert!(stats.procs[1].wait_time > Duration::ZERO);
    }

    #[test]
    fn recovery_keeps_the_metrics_oracle_balanced() {
        let run = |metered: bool| {
            let mut m = Machine::new(MachineConfig::default());
            let l = m.add_lock();
            m.set_fault_plan(crash(vec![0], 2)).unwrap();
            let p0 = Script::new(vec![
                Step::Acquire(l),
                Step::Compute(ms(10)),
                Step::Release(l),
                Step::Done,
            ]);
            let p1 = Script::new(vec![Step::Acquire(l), Step::Release(l), Step::Done]);
            let procs: Vec<Box<dyn Process>> = vec![Box::new(p0), Box::new(p1)];
            let mut reg = dynfb_core::MetricsRegistry::new();
            let stats = if metered {
                m.run_metered(procs, &mut reg).unwrap()
            } else {
                m.run(procs).unwrap()
            };
            (stats, reg)
        };
        let (stats, reg) = run(true);
        let totals = stats.totals();
        let sums = reg.totals();
        assert_eq!(sums.acquires, totals.acquires);
        assert_eq!(sums.releases, sums.acquires, "recovery emits the missing release");
        assert_eq!(sums.locking, totals.lock_time);
        assert_eq!(sums.waiting, totals.wait_time);
        assert_eq!(reg.counter_value("sim_proc_crashes"), 1);
        assert_eq!(reg.counter_value("sim_locks_recovered"), 1);
        // Observation must not perturb the simulation, crashes included.
        let (unmetered, _) = run(false);
        assert_eq!(unmetered, stats);
    }

    #[test]
    fn dead_proc_shrinks_the_barrier_rendezvous() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(3);
        m.set_fault_plan(crash(vec![2], 1)).unwrap();
        // Proc 2 dies before reaching the barrier; procs 0 and 1 must not
        // be stranded. (Its first compute gives it a scheduling point at
        // 2ms, past the 1ms crash instant, where the death is observed.)
        let mk =
            |work: u64| Script::new(vec![Step::Compute(ms(work)), Step::Barrier(b), Step::Done]);
        let slow = Script::new(vec![
            Step::Compute(ms(2)),
            Step::Compute(ms(50)),
            Step::Barrier(b),
            Step::Done,
        ]);
        let stats = m.run(vec![Box::new(mk(2)), Box::new(mk(3)), Box::new(slow)]).unwrap();
        assert!(stats.procs[0].done_at.is_some());
        assert!(stats.procs[1].done_at.is_some());
        assert_eq!(stats.crashed_procs(), vec![2]);
        // Survivors released at ~3ms + barrier cost, not 50ms.
        assert!(stats.procs[0].done_at.unwrap() < SimTime::ZERO + ms(10));
    }

    #[test]
    fn crash_after_others_arrived_releases_the_barrier() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(2);
        m.set_fault_plan(crash(vec![1], 10)).unwrap();
        // Proc 0 arrives at 1ms and parks; proc 1 computes past its crash
        // instant and dies at 20ms — the shrink must release proc 0 then.
        let p0 = Script::new(vec![Step::Compute(ms(1)), Step::Barrier(b), Step::Done]);
        let p1 = Script::new(vec![Step::Compute(ms(20)), Step::Barrier(b), Step::Done]);
        let stats = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        let done = stats.procs[0].done_at.expect("survivor completes");
        assert_eq!(done, SimTime::ZERO + ms(20) + m.config().barrier_cost);
        assert!(stats.procs[0].barrier_wait >= ms(19) - m.config().barrier_cost);
    }

    #[test]
    fn stall_defers_execution_without_charging_time() {
        let mut m = Machine::new(MachineConfig::default());
        let plan = FaultPlan::new(3).with_event(
            Window::new(ms(2), ms(9)),
            FaultKind::ProcStall { procs: Target::Only(vec![0]) },
        );
        m.set_fault_plan(plan).unwrap();
        let p = Script::new(vec![Step::Compute(ms(2)), Step::Compute(ms(1)), Step::Done]);
        let stats = m.run(vec![Box::new(p)]).unwrap();
        // First compute ends at 2ms, inside the stall window: the second
        // scheduling point defers to 9ms, then computes 1ms.
        assert_eq!(stats.procs[0].done_at, Some(SimTime::ZERO + ms(10)));
        assert_eq!(stats.procs[0].compute, ms(3), "stalled time is not charged");
    }

    #[test]
    fn stalled_holder_delays_waiters_but_everyone_finishes() {
        let mut m = Machine::new(MachineConfig::default());
        let l = m.add_lock();
        let plan = FaultPlan::new(3).with_event(
            Window::new(ms(1), ms(8)),
            FaultKind::ProcStall { procs: Target::Only(vec![0]) },
        );
        m.set_fault_plan(plan).unwrap();
        let p0 =
            Script::new(vec![Step::Acquire(l), Step::Compute(ms(2)), Step::Release(l), Step::Done]);
        let p1 = Script::new(vec![Step::Acquire(l), Step::Release(l), Step::Done]);
        let stats = m.run(vec![Box::new(p0), Box::new(p1)]).unwrap();
        assert!(stats.procs[0].done_at.is_some());
        assert!(stats.procs[1].done_at.is_some());
        // The waiter's wait spans the holder's stall.
        assert!(stats.procs[1].wait_time >= ms(8), "waited {:?}", stats.procs[1].wait_time);
    }

    #[test]
    fn crash_runs_are_deterministic() {
        let build = || {
            let mut m = Machine::new(MachineConfig::default());
            let l = m.add_lock();
            let b = m.add_barrier(4);
            m.set_fault_plan(crash(vec![1], 3)).unwrap();
            let procs: Vec<Box<dyn Process>> = (0..4)
                .map(|i| {
                    Box::new(Script::new(vec![
                        Step::Compute(Duration::from_micros(500 * (i + 1))),
                        Step::Acquire(l),
                        Step::Compute(ms(2)),
                        Step::Release(l),
                        Step::Barrier(b),
                        Step::Done,
                    ])) as Box<dyn Process>
                })
                .collect();
            m.run(procs).unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn machine_reuse_restores_barrier_size_after_a_crash_run() {
        let mut m = Machine::new(MachineConfig::default());
        let b = m.add_barrier(2);
        m.set_fault_plan(crash(vec![1], 1)).unwrap();
        let mk = || Script::new(vec![Step::Compute(ms(5)), Step::Barrier(b), Step::Done]);
        let first = m.run(vec![Box::new(mk()), Box::new(mk())]).unwrap();
        assert_eq!(first.live_procs(), 1);
        // Second run without faults: both procs must be required again.
        m.set_fault_plan(FaultPlan::default()).unwrap();
        let second = m.run(vec![Box::new(mk()), Box::new(mk())]).unwrap();
        assert_eq!(second.live_procs(), 2);
        assert!(second.procs.iter().all(|p| p.done_at.is_some()));
    }
}
