//! Property-based tests for the discrete-event engine: invariants that
//! must hold for arbitrary (well-formed) workloads.
//!
//! Workloads are generated with the repository's own deterministic PRNG
//! (`dynfb_core::rng::SplitMix64`), so every failure reproduces from the
//! fixed seeds below.

use dynfb_core::rng::SplitMix64;
use dynfb_sim::{Machine, MachineConfig, ProcCtx, Process, Step};
use std::time::Duration;

const CASES: u64 = 64;

/// One critical region: optional pre-compute, then lock `lock % n_locks`
/// held for `hold` microseconds.
#[derive(Debug, Clone)]
struct Region {
    pre_us: u64,
    lock: usize,
    hold_us: u64,
}

/// A process executing a fixed list of regions.
struct RegionProc {
    regions: Vec<Region>,
    locks: Vec<dynfb_sim::LockId>,
    pos: usize,
    stage: u8,
}

impl Process for RegionProc {
    fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
        let Some(r) = self.regions.get(self.pos) else {
            return Step::Done;
        };
        let lock = self.locks[r.lock % self.locks.len()];
        let step = match self.stage {
            0 => Step::Compute(Duration::from_micros(r.pre_us + 1)),
            1 => Step::Acquire(lock),
            2 => Step::Compute(Duration::from_micros(r.hold_us + 1)),
            _ => Step::Release(lock),
        };
        if self.stage == 3 {
            self.stage = 0;
            self.pos += 1;
        } else {
            self.stage += 1;
        }
        step
    }
}

fn gen_region(g: &mut SplitMix64) -> Region {
    Region { pre_us: g.gen_range(0, 50), lock: g.gen_index(4), hold_us: g.gen_range(0, 50) }
}

fn gen_regions(g: &mut SplitMix64, max_len: usize) -> Vec<Region> {
    let len = g.gen_index(max_len - 1) + 1;
    (0..len).map(|_| gen_region(g)).collect()
}

/// 1..=5 processes, each with 1..=19 regions.
fn gen_workload(g: &mut SplitMix64) -> Vec<Vec<Region>> {
    let procs = g.gen_index(5) + 1;
    (0..procs).map(|_| gen_regions(g, 20)).collect()
}

fn run(workload: &[Vec<Region>]) -> dynfb_sim::MachineStats {
    let mut machine = Machine::new(MachineConfig::default());
    let first = machine.add_locks(4);
    let locks: Vec<_> = (0..4).map(|i| first.offset(i)).collect();
    machine.set_event_limit(10_000_000);
    let procs: Vec<Box<dyn Process>> = workload
        .iter()
        .map(|regions| {
            Box::new(RegionProc {
                regions: regions.clone(),
                locks: locks.clone(),
                pos: 0,
                stage: 0,
            }) as Box<dyn Process>
        })
        .collect();
    machine.run(procs).expect("well-formed workload must not deadlock")
}

/// Balanced acquire/release workloads always terminate, and the engine is
/// deterministic: two runs produce identical statistics.
#[test]
fn deterministic_and_terminating() {
    let mut g = SplitMix64::new(0x51_0001);
    for _ in 0..CASES {
        let workload = gen_workload(&mut g);
        let a = run(&workload);
        let b = run(&workload);
        assert_eq!(a, b);
    }
}

/// Compute time is conserved: each processor's accounted compute equals
/// exactly what its process requested, regardless of contention.
#[test]
fn compute_time_is_conserved() {
    let mut g = SplitMix64::new(0x51_0002);
    for _ in 0..CASES {
        let workload = gen_workload(&mut g);
        let stats = run(&workload);
        for (p, regions) in workload.iter().enumerate() {
            let expected: u64 = regions.iter().map(|r| r.pre_us + r.hold_us + 2).sum();
            assert_eq!(stats.procs[p].compute, Duration::from_micros(expected), "proc {p}");
        }
    }
}

/// Lock accounting is consistent: every processor's acquires equal its
/// regions, and failed attempts imply waiting time (and vice versa).
#[test]
fn lock_accounting_is_consistent() {
    let mut g = SplitMix64::new(0x51_0003);
    for _ in 0..CASES {
        let workload = gen_workload(&mut g);
        let stats = run(&workload);
        for (p, regions) in workload.iter().enumerate() {
            let s = &stats.procs[p];
            assert_eq!(s.acquires, regions.len() as u64);
            assert_eq!(s.failed_attempts > 0, s.wait_time > Duration::ZERO);
        }
    }
}

/// A single processor never waits.
#[test]
fn single_processor_never_waits() {
    let mut g = SplitMix64::new(0x51_0004);
    for _ in 0..CASES {
        let regions = gen_regions(&mut g, 30);
        let stats = run(std::slice::from_ref(&regions));
        assert_eq!(stats.procs[0].wait_time, Duration::ZERO);
        assert_eq!(stats.procs[0].failed_attempts, 0);
    }
}

/// Makespan bounds: the run takes at least as long as the busiest
/// processor's own work, and no longer than everyone's work serialized
/// (plus lock overheads).
#[test]
fn makespan_is_bounded() {
    let mut g = SplitMix64::new(0x51_0005);
    for _ in 0..CASES {
        let workload = gen_workload(&mut g);
        let stats = run(&workload);
        let cfg = MachineConfig::default();
        let per_proc: Vec<Duration> = workload
            .iter()
            .map(|regions| {
                let us: u64 = regions.iter().map(|r| r.pre_us + r.hold_us + 2).sum();
                Duration::from_micros(us) + cfg.lock_pair_cost() * regions.len() as u32
            })
            .collect();
        let lower = per_proc.iter().copied().max().unwrap_or_default();
        let upper: Duration = per_proc.iter().sum();
        assert!(stats.elapsed() >= lower, "{:?} < {:?}", stats.elapsed(), lower);
        assert!(
            stats.elapsed() <= upper + Duration::from_millis(1),
            "{:?} > {:?}",
            stats.elapsed(),
            upper
        );
    }
}
