//! Property-based tests for the discrete-event engine: invariants that
//! must hold for arbitrary (well-formed) workloads.

use dynfb_sim::{Machine, MachineConfig, ProcCtx, Process, Step};
use proptest::prelude::*;
use std::time::Duration;

/// One critical region: optional pre-compute, then lock `lock % n_locks`
/// held for `hold` microseconds.
#[derive(Debug, Clone)]
struct Region {
    pre_us: u64,
    lock: usize,
    hold_us: u64,
}

/// A process executing a fixed list of regions.
struct RegionProc {
    regions: Vec<Region>,
    locks: Vec<dynfb_sim::LockId>,
    pos: usize,
    stage: u8,
}

impl Process for RegionProc {
    fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
        let Some(r) = self.regions.get(self.pos) else {
            return Step::Done;
        };
        let lock = self.locks[r.lock % self.locks.len()];
        let step = match self.stage {
            0 => Step::Compute(Duration::from_micros(r.pre_us + 1)),
            1 => Step::Acquire(lock),
            2 => Step::Compute(Duration::from_micros(r.hold_us + 1)),
            _ => Step::Release(lock),
        };
        if self.stage == 3 {
            self.stage = 0;
            self.pos += 1;
        } else {
            self.stage += 1;
        }
        step
    }
}

fn region_strategy() -> impl Strategy<Value = Region> {
    (0u64..50, 0usize..4, 0u64..50)
        .prop_map(|(pre_us, lock, hold_us)| Region { pre_us, lock, hold_us })
}

fn workload_strategy() -> impl Strategy<Value = Vec<Vec<Region>>> {
    proptest::collection::vec(
        proptest::collection::vec(region_strategy(), 1..20),
        1..6,
    )
}

fn run(workload: &[Vec<Region>]) -> dynfb_sim::MachineStats {
    let mut machine = Machine::new(MachineConfig::default());
    let first = machine.add_locks(4);
    let locks: Vec<_> = (0..4).map(|i| first.offset(i)).collect();
    machine.set_event_limit(10_000_000);
    let procs: Vec<Box<dyn Process>> = workload
        .iter()
        .map(|regions| {
            Box::new(RegionProc {
                regions: regions.clone(),
                locks: locks.clone(),
                pos: 0,
                stage: 0,
            }) as Box<dyn Process>
        })
        .collect();
    machine.run(procs).expect("well-formed workload must not deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Balanced acquire/release workloads always terminate, and the engine
    /// is deterministic: two runs produce identical statistics.
    #[test]
    fn deterministic_and_terminating(workload in workload_strategy()) {
        let a = run(&workload);
        let b = run(&workload);
        prop_assert_eq!(a, b);
    }

    /// Compute time is conserved: each processor's accounted compute equals
    /// exactly what its process requested, regardless of contention.
    #[test]
    fn compute_time_is_conserved(workload in workload_strategy()) {
        let stats = run(&workload);
        for (p, regions) in workload.iter().enumerate() {
            let expected: u64 = regions.iter().map(|r| r.pre_us + r.hold_us + 2).sum();
            prop_assert_eq!(
                stats.procs[p].compute,
                Duration::from_micros(expected),
                "proc {}", p
            );
        }
    }

    /// Lock accounting is consistent: every processor's acquires equal its
    /// regions, and failed attempts imply waiting time (and vice versa).
    #[test]
    fn lock_accounting_is_consistent(workload in workload_strategy()) {
        let stats = run(&workload);
        for (p, regions) in workload.iter().enumerate() {
            let s = &stats.procs[p];
            prop_assert_eq!(s.acquires, regions.len() as u64);
            prop_assert_eq!(s.failed_attempts > 0, s.wait_time > Duration::ZERO);
        }
    }

    /// A single processor never waits.
    #[test]
    fn single_processor_never_waits(regions in proptest::collection::vec(region_strategy(), 1..30)) {
        let stats = run(std::slice::from_ref(&regions));
        prop_assert_eq!(stats.procs[0].wait_time, Duration::ZERO);
        prop_assert_eq!(stats.procs[0].failed_attempts, 0);
    }

    /// Makespan bounds: the run takes at least as long as the busiest
    /// processor's own work, and no longer than everyone's work serialized
    /// (plus lock overheads).
    #[test]
    fn makespan_is_bounded(workload in workload_strategy()) {
        let stats = run(&workload);
        let cfg = MachineConfig::default();
        let per_proc: Vec<Duration> = workload
            .iter()
            .map(|regions| {
                let us: u64 = regions.iter().map(|r| r.pre_us + r.hold_us + 2).sum();
                Duration::from_micros(us) + cfg.lock_pair_cost() * regions.len() as u32
            })
            .collect();
        let lower = per_proc.iter().copied().max().unwrap_or_default();
        let upper: Duration = per_proc.iter().sum();
        prop_assert!(stats.elapsed() >= lower, "{:?} < {:?}", stats.elapsed(), lower);
        prop_assert!(
            stats.elapsed() <= upper + Duration::from_millis(1),
            "{:?} > {:?}",
            stats.elapsed(),
            upper
        );
    }
}
