//! Integration tests for the simulator's trace layer and the watchdog's
//! pre-measurement fallback, plus the sim-vs-realtime measurement parity
//! contract.

use dynfb_core::controller::{ControllerConfig, PolicyOrdering};
use dynfb_core::overhead::OverheadCounters;
use dynfb_core::realtime::InstrumentCosts;
use dynfb_core::trace::{chrome_trace_json, RingBuffer, TraceEvent, TracedEvent};
use dynfb_sim::{
    run_app, run_app_traced, FaultKind, FaultPlan, LockId, Machine, OpSink, PlanEntry, ProcStats,
    RunConfig, SimApp, Window,
};
use std::time::Duration;

/// One parallel section, two versions with different locking grain:
/// version 0 ("fine") takes 4 lock pairs per iteration, version 1
/// ("coarse") takes 1.
#[derive(Default)]
struct Mini {
    locks: Vec<LockId>,
}
impl SimApp for Mini {
    fn name(&self) -> &str {
        "mini"
    }
    fn setup(&mut self, machine: &mut Machine) {
        let first = machine.add_locks(16);
        self.locks = (0..16).map(|i| first.offset(i)).collect();
    }
    fn plan(&self) -> Vec<PlanEntry> {
        vec![PlanEntry::parallel("work")]
    }
    fn versions(&self, _s: &str) -> Vec<String> {
        vec!["fine".to_string(), "coarse".to_string()]
    }
    fn emit_serial(&mut self, _s: &str, _ops: &mut OpSink) {}
    fn begin_parallel(&mut self, _s: &str) -> usize {
        600
    }
    fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
        let lock = self.locks[iter % 16];
        let n = if version == 0 { 4 } else { 1 };
        for _ in 0..n {
            ops.acquire(lock);
            ops.compute(Duration::from_micros(10 / n as u64));
            ops.release(lock);
        }
    }
}

fn ctl() -> ControllerConfig {
    ControllerConfig {
        target_sampling: Duration::from_micros(200),
        target_production: Duration::from_millis(2),
        ..ControllerConfig::default()
    }
}

fn frozen_clock() -> FaultPlan {
    FaultPlan::new(7).with_event(Window::always(), FaultKind::TimerDrift { ppm: -1_000_000 })
}

fn traced(cfg: &RunConfig) -> (dynfb_sim::AppReport, Vec<TracedEvent>) {
    let mut ring = RingBuffer::new(1 << 16);
    let report = run_app_traced(Mini::default(), cfg, &mut ring).expect("run succeeds");
    assert_eq!(ring.dropped(), 0, "ring buffer truncated the trace");
    (report, ring.into_events())
}

/// Regression (paper §3 fallback): the watchdog fires while the very first
/// sampling interval is still stuck, so *no* measurement exists. The
/// controller must degrade to the paper's static policy ordering — policy 0
/// (Original), the safest — not panic and not keep whatever policy
/// happened to be mid-sample.
#[test]
fn watchdog_abort_before_any_measurement_falls_back_to_policy_zero() {
    for ordering in [PolicyOrdering::InOrder, PolicyOrdering::ExtremesFirst] {
        let cfg = RunConfig::dynamic(4, ControllerConfig { ordering, ..ctl() })
            .with_faults(frozen_clock())
            .with_watchdog(3);
        let (report, events) = traced(&cfg);
        let work = report.section("work").next().expect("section ran");
        assert_eq!(work.iterations, 600);
        let production =
            work.records.iter().find(|r| r.phase.is_production()).unwrap_or_else(|| {
                panic!("{ordering:?}: no production record: {:?}", work.records)
            });
        // ExtremesFirst samples the aggressive policy (1) first, so landing
        // on 0 here proves the fallback is the safest policy, not the
        // arbitrary policy that was being sampled when the watchdog fired.
        assert_eq!(production.version, 0, "{ordering:?}: {:?}", work.records);
        // The trace shows the same story: a watchdog-abort switch into a
        // production phase running policy 0.
        let abort = events
            .iter()
            .find_map(|e| match e.event {
                TraceEvent::PolicySwitch {
                    to,
                    reason: dynfb_core::trace::SwitchReason::WatchdogAbort,
                    ..
                } => Some(to),
                _ => None,
            })
            .unwrap_or_else(|| panic!("{ordering:?}: no watchdog-abort switch in {events:?}"));
        assert_eq!(abort, 0, "{ordering:?}");
    }
}

/// The trace must tell exactly the same story as the section records: one
/// interval-end event per record, matching phase kind, overhead, virtual
/// timestamp, and partial flag.
#[test]
fn trace_interval_ends_match_section_records_one_to_one() {
    let cfg = RunConfig::dynamic(4, ctl());
    let (report, events) = traced(&cfg);
    let records: Vec<_> = report.section("work").flat_map(|e| e.records.iter()).collect();
    let ends: Vec<_> = events
        .iter()
        .filter(|e| {
            matches!(e.event, TraceEvent::SamplingEnd { .. } | TraceEvent::ProductionEnd { .. })
        })
        .collect();
    assert_eq!(records.len(), ends.len(), "records: {records:?}\nevents: {events:?}");
    assert!(!records.is_empty(), "dynamic run must complete intervals");
    for (r, e) in records.iter().zip(&ends) {
        assert_eq!(e.at, r.at.as_duration());
        match e.event {
            TraceEvent::SamplingEnd { policy, overhead, actual, partial } => {
                assert!(r.phase.is_sampling());
                assert_eq!(policy, r.version);
                assert_eq!(overhead, r.overhead);
                assert_eq!(actual, r.actual);
                assert_eq!(partial, r.partial);
            }
            TraceEvent::ProductionEnd { policy, overhead, actual, partial } => {
                assert!(r.phase.is_production());
                assert_eq!(policy, r.version);
                assert_eq!(overhead, r.overhead);
                assert_eq!(actual, r.actual);
                assert_eq!(partial, r.partial);
            }
            _ => unreachable!(),
        }
    }
    // Synchronous mode: every completed interval was applied at a barrier
    // rendezvous of all processors (the final partial one was not).
    let syncs = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::BarrierSync { arrived } if arrived == 4))
        .count();
    let completed = records.iter().filter(|r| !r.partial).count();
    assert_eq!(syncs, completed, "{events:?}");
}

/// Virtual-time stamping makes the trace fully deterministic: two
/// identical runs produce identical event streams and identical exported
/// JSON, byte for byte. (Cross-worker-count identity of the bench harness
/// rides on this and is asserted in dynfb-bench and in CI.)
#[test]
fn traces_are_byte_deterministic() {
    let cfg =
        RunConfig::dynamic(4, ctl()).with_faults(FaultPlan::new(3).with_event(
            Window::always(),
            FaultKind::TimerJitter { max: Duration::from_micros(30) },
        ));
    let (report_a, events_a) = traced(&cfg);
    let (report_b, events_b) = traced(&cfg);
    assert_eq!(report_a.sections, report_b.sections);
    assert_eq!(events_a, events_b);
    assert_eq!(chrome_trace_json("mini", &events_a), chrome_trace_json("mini", &events_b));
    // A fault plan announces itself at the head of the trace.
    assert!(matches!(
        events_a.first().map(|e| &e.event),
        Some(TraceEvent::FaultPlanActivated { seed: 3, events: 1 })
    ));
    // Timestamps never go backwards (sync mode stamps with virtual time).
    for w in events_a.windows(2) {
        assert!(w[1].at >= w[0].at, "{events_a:?}");
    }
}

/// The untraced entry point is unaffected by the trace layer: it produces
/// the same report as a traced run of the same config.
#[test]
fn traced_and_untraced_runs_simulate_identically() {
    let cfg = RunConfig::dynamic(4, ctl());
    let plain = run_app(Mini::default(), &cfg).expect("runs");
    let (traced_report, events) = traced(&cfg);
    assert_eq!(plain.stats, traced_report.stats);
    assert_eq!(plain.sections, traced_report.sections);
    assert!(!events.is_empty());
}

/// Sim-vs-realtime measurement parity (the §4.3 contract): both drivers
/// normalize an interval's overhead by the *measured* elapsed interval —
/// never the configured target — with execution = elapsed × workers.
/// Equivalent inputs must produce identical samples on both sides.
#[test]
fn realtime_accounting_matches_sim_overhead_semantics() {
    let costs = InstrumentCosts {
        pair_cost: Duration::from_nanos(200),
        attempt_cost: Duration::from_nanos(100),
    };
    let workers = 4u32;
    // Configured target: 200µs. The interval actually ran 3× longer — the
    // normalization must use the measured 600µs, not the target.
    let target = Duration::from_micros(200);
    let actual = 3 * target;
    let (acquires, failed) = (500u64, 120u64);

    // Sim side: the machine accounts lock/wait *time* directly; per-proc
    // busy time over the interval is the measured elapsed interval.
    let sim_interval = ProcStats {
        lock_time: costs.pair_cost * acquires as u32,
        wait_time: costs.attempt_cost * failed as u32,
        compute: actual * workers
            - costs.pair_cost * acquires as u32
            - costs.attempt_cost * failed as u32,
        acquires,
        failed_attempts: failed,
        ..ProcStats::default()
    };
    let sim_sample = sim_interval.overhead_sample();

    // Realtime side: counters × calibrated costs, normalized by measured
    // elapsed × active workers.
    let delta = OverheadCounters { acquires, failed_attempts: failed };
    let rt_sample = costs.interval_sample(delta, actual, workers as usize);

    assert_eq!(rt_sample.locking, sim_sample.locking);
    assert_eq!(rt_sample.waiting, sim_sample.waiting);
    assert_eq!(rt_sample.execution, sim_sample.execution);
    assert!((rt_sample.total_overhead() - sim_sample.total_overhead()).abs() < 1e-12);

    // Divergence guard: normalizing by the configured target (the old
    // behavior's failure mode) would triple the reported overhead.
    let wrong = costs.interval_sample(delta, target, workers as usize);
    assert!((wrong.total_overhead() - 3.0 * rt_sample.total_overhead()).abs() < 1e-9);
}
