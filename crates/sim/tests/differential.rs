//! Differential test: `run_app` (consuming) and `run_app_ref` (borrowing)
//! must produce identical `AppReport`s for identical apps and configs —
//! overheads, policy decisions, section records, final times. A divergence
//! means the two entry points stopped sharing the same execution path.

use dynfb_core::controller::ControllerConfig;
use dynfb_core::rng::SplitMix64;
use dynfb_sim::{
    run_app, run_app_ref, ChaosProfile, FaultPlan, LockId, Machine, OpSink, PlanEntry, RunConfig,
    RunMode, SimApp,
};
use std::time::Duration;

const SLOTS: usize = 4;

/// A deterministic lock-granularity workload in the style of the paper's
/// policy spectrum: the version index controls how coarsely iterations
/// lock the shared slots.
struct GrainApp {
    iters: usize,
    work: Duration,
    locks: Vec<LockId>,
}

impl GrainApp {
    fn new(iters: usize, work: Duration) -> Self {
        GrainApp { iters, work, locks: Vec::new() }
    }
}

impl SimApp for GrainApp {
    fn name(&self) -> &str {
        "grain"
    }
    fn setup(&mut self, machine: &mut Machine) {
        let first = machine.add_locks(SLOTS);
        self.locks = (0..SLOTS).map(|i| first.offset(i)).collect();
    }
    fn plan(&self) -> Vec<PlanEntry> {
        vec![PlanEntry::serial("init"), PlanEntry::parallel("work")]
    }
    fn versions(&self, _section: &str) -> Vec<String> {
        ["original", "bounded", "aggressive"].iter().map(ToString::to_string).collect()
    }
    fn emit_serial(&mut self, _section: &str, ops: &mut OpSink) {
        ops.compute(self.work * 8);
    }
    fn begin_parallel(&mut self, _section: &str) -> usize {
        self.iters
    }
    fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
        let lock = self.locks[iter % SLOTS];
        let batch = match version {
            0 => 1,
            1 => 4,
            _ => 8,
        };
        for chunk in 0..(8 / batch) {
            ops.acquire(lock);
            for _ in 0..batch {
                ops.compute(self.work + Duration::from_nanos((iter as u64 % 7) * (chunk as u64)));
            }
            ops.release(lock);
        }
    }
}

/// Draw a random but valid `RunConfig` (and the iteration count for the
/// twin apps) from the given stream.
fn random_config(rng: &mut SplitMix64) -> (RunConfig, usize) {
    let procs = 1 + rng.gen_index(8);
    let iters = 120 + rng.gen_index(240);
    let mut cfg = match rng.gen_index(4) {
        0 => {
            let policy = ["original", "bounded", "aggressive"][rng.gen_index(3)];
            let mut cfg = RunConfig::fixed(procs, policy);
            if rng.chance(0.5) {
                cfg.mode = RunMode::Static { policy: policy.to_string(), instrumented: true };
            }
            cfg
        }
        mode => {
            let ctl = ControllerConfig {
                num_policies: 3,
                target_sampling: Duration::from_micros(100 + rng.gen_range_i64(0, 900) as u64),
                target_production: Duration::from_millis(2 + rng.gen_range_i64(0, 30) as u64),
                ..ControllerConfig::default()
            };
            let mut cfg = if mode == 3 {
                let mut c = RunConfig::dynamic(procs, ctl.clone());
                c.mode = RunMode::DynamicAsync(ctl);
                c
            } else {
                RunConfig::dynamic(procs, ctl)
            };
            cfg.span_intervals = rng.chance(0.3);
            if rng.chance(0.3) {
                cfg = cfg.with_watchdog(4 + rng.gen_index(8) as u32);
            }
            cfg
        }
    };
    if rng.chance(0.4) {
        let profile = ChaosProfile {
            horizon: Duration::from_millis(5 + rng.gen_range_i64(0, 40) as u64),
            procs,
            locks: SLOTS,
            events: 1 + rng.gen_index(3),
        };
        cfg = cfg.with_faults(FaultPlan::random(rng.next_u64(), &profile));
    }
    (cfg, iters)
}

#[test]
fn run_app_and_run_app_ref_agree_on_seeded_random_configs() {
    let mut rng = SplitMix64::new(0xD1FF_0001);
    for case in 0..24 {
        let (cfg, iters) = random_config(&mut rng);
        let work = Duration::from_micros(3);
        let consumed = run_app(GrainApp::new(iters, work), &cfg)
            .unwrap_or_else(|e| panic!("case {case}: run_app failed: {e}"));
        let mut twin = GrainApp::new(iters, work);
        let borrowed = run_app_ref(&mut twin, &cfg)
            .unwrap_or_else(|e| panic!("case {case}: run_app_ref failed: {e}"));
        assert_eq!(consumed.app, borrowed.app, "case {case}: app name");
        assert_eq!(consumed.stats, borrowed.stats, "case {case}: machine stats ({cfg:?})");
        assert_eq!(consumed.sections, borrowed.sections, "case {case}: section records ({cfg:?})");
    }
}

#[test]
fn repeated_run_app_ref_on_a_fresh_twin_matches_itself() {
    // Guards the subtle failure mode where `run_app_ref` leaves residue in
    // the app that changes a second run through the same entry point.
    let cfg = RunConfig::fixed(4, "bounded");
    let a = run_app_ref(&mut GrainApp::new(200, Duration::from_micros(3)), &cfg).unwrap();
    let b = run_app_ref(&mut GrainApp::new(200, Duration::from_micros(3)), &cfg).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.sections, b.sections);
}
