//! The engine's determinism contract: running the experiment matrix with
//! one worker and with many workers must produce byte-identical artifacts
//! (`EXPERIMENTS*.md`, `BENCH_RESULTS*.json`, chaos reports). This is the
//! acceptance gate for the parallel engine — scheduling must never leak
//! into canonical output.

use dynfb_bench::chaos::{chaos_report, chaos_report_with, ChaosConfig};
use dynfb_bench::engine::{Engine, Filter};
use dynfb_bench::experiments::{render_document, results_json, run_matrix, select, suite, Scale};

#[test]
fn quick_matrix_is_byte_identical_for_1_and_4_workers() {
    let scale = Scale::quick();
    let exps = suite(&scale);
    let selected = select(&exps, None);

    let (serial_store, serial_timings) = run_matrix(&scale, &selected, &Engine::new(1));
    let (parallel_store, parallel_timings) = run_matrix(&scale, &selected, &Engine::new(4));

    assert_eq!(serial_timings.len(), parallel_timings.len());
    // Job identity and order are canonical regardless of worker count.
    let ids = |t: &[dynfb_bench::experiments::JobTiming]| -> Vec<String> {
        t.iter().map(|j| j.id.clone()).collect()
    };
    assert_eq!(ids(&serial_timings), ids(&parallel_timings));

    assert_eq!(
        render_document(&selected, &serial_store),
        render_document(&selected, &parallel_store),
        "EXPERIMENTS markdown must not depend on --jobs"
    );
    assert_eq!(
        results_json(&scale, &serial_store),
        results_json(&scale, &parallel_store),
        "BENCH_RESULTS.json must not depend on --jobs"
    );
}

#[test]
fn filtered_matrix_is_a_prefix_consistent_subset() {
    let scale = Scale::quick();
    let exps = suite(&scale);
    let all = select(&exps, None);
    let filter = Filter::new("table0*-bh-*");
    let some = select(&exps, Some(&filter));
    assert!(!some.is_empty() && some.len() < all.len());

    // A filtered run renders exactly the same tables for the experiments it
    // keeps — filtering changes which experiments run, never their content.
    let (all_store, _) = run_matrix(&scale, &all, &Engine::new(2));
    let (some_store, _) = run_matrix(&scale, &some, &Engine::new(2));
    for e in &some {
        let from_all: Vec<String> = e.render(&all_store).iter().map(|t| t.to_markdown()).collect();
        let from_some: Vec<String> =
            e.render(&some_store).iter().map(|t| t.to_markdown()).collect();
        assert_eq!(from_all, from_some, "{}", e.slug);
    }
}

#[test]
fn chaos_report_is_byte_identical_for_parallel_workers() {
    let cfg = ChaosConfig { seed: 11, iters: 800, procs: 4 };
    let serial = chaos_report(&cfg);
    let parallel = chaos_report_with(&cfg, &Engine::new(4), None);
    assert_eq!(serial, parallel);
}

#[test]
fn chaos_filter_selects_scenarios() {
    let cfg = ChaosConfig { seed: 11, iters: 400, procs: 4 };
    let filter = Filter::new("baseline");
    let report = chaos_report_with(&cfg, &Engine::new(2), Some(&filter));
    assert!(report.contains("chaos harness: 1 scenarios"));
    assert!(report.contains("`baseline`"));
    assert!(!report.contains("lock-storm"));
}
