//! End-to-end oracle for the decision flight recorder: on every adaptive
//! chaos cell the journal must agree with the independently collected
//! trace record-for-record, nothing may be dropped, and the whole explain
//! report — timelines and NDJSON exports — must be byte-identical across
//! reruns and engine worker counts (the journal is virtual-time stamped).

use dynfb_bench::chaos::{scenarios, ChaosConfig, ChaosMode};
use dynfb_bench::engine::Engine;
use dynfb_bench::explain::{cross_check, explain_report_with, run_explained};
use dynfb_core::journal::decision_ndjson;

fn cfg() -> ChaosConfig {
    ChaosConfig { seed: 11, iters: 900, procs: 4 }
}

#[test]
fn journal_agrees_with_the_trace_oracle_on_every_cell() {
    let cfg = cfg();
    let report = explain_report_with(&cfg, &Engine::new(1), None);
    assert!(report.consistent, "{}", report.text);
    // One NDJSON export per (scenario, adaptive mode) cell, each a full
    // journal: every line is one JSON decision record.
    assert_eq!(report.exports.len(), 2 * scenarios(&cfg).len());
    for (name, ndjson) in &report.exports {
        assert!(name.ends_with(".ndjson"), "{name}");
        assert!(!ndjson.is_empty(), "{name}: adaptive cells decide at least once");
        for line in ndjson.lines() {
            assert!(line.starts_with("{\"seq\":"), "{name}: {line}");
            assert!(line.ends_with('}'), "{name}: {line}");
        }
    }
}

#[test]
fn report_and_exports_are_byte_identical_across_worker_counts() {
    let cfg = cfg();
    let serial = explain_report_with(&cfg, &Engine::new(1), None);
    let parallel = explain_report_with(&cfg, &Engine::new(4), None);
    assert_eq!(serial.text, parallel.text);
    assert_eq!(serial.exports, parallel.exports);
    assert_eq!(serial.consistent, parallel.consistent);
}

#[test]
fn journal_is_byte_identical_across_reruns() {
    // The simulator stamps records with virtual time, so replaying the
    // same cell twice must journal the exact same decision stream. The
    // comparison runs on the rendered NDJSON — the bytes CI diffs — which
    // also sidesteps NaN != NaN on unseeded detector baselines (rendered
    // as a stable `null`).
    let cfg = cfg();
    for scenario in scenarios(&cfg) {
        for mode in [ChaosMode::Dynamic, ChaosMode::EventDriven] {
            let first = run_explained(&cfg, &scenario, mode);
            let second = run_explained(&cfg, &scenario, mode);
            assert_eq!(
                decision_ndjson(&first.records),
                decision_ndjson(&second.records),
                "{} / {:?}",
                scenario.name,
                mode
            );
            assert_eq!(first.events, second.events, "{} / {:?}", scenario.name, mode);
            assert_eq!(first.journal_dropped, 0, "{} / {:?}", scenario.name, mode);
            assert_eq!(first.trace_dropped, 0, "{} / {:?}", scenario.name, mode);
        }
    }
}

#[test]
fn adaptive_cells_journal_at_least_one_switch() {
    // Dynamic-feedback cells by construction alternate sampling and
    // production, so an empty journal would mean the wiring is dead.
    let cfg = cfg();
    for scenario in scenarios(&cfg) {
        let cell = run_explained(&cfg, &scenario, ChaosMode::Dynamic);
        assert!(!cell.records.is_empty(), "{}: empty journal", scenario.name);
        let errors = cross_check(&cell.records, &cell.events);
        assert!(errors.is_empty(), "{}: {errors:?}", scenario.name);
    }
}
