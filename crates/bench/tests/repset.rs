//! Representative-set harness contracts: the report (text + JSON) is
//! byte-identical for every engine worker count and rerun-stable for a
//! fixed seed, the selection table matches its golden copy, and the
//! pruning meets the acceptance bar (≤4 representatives from a family of
//! ≥10 policies, pruned build within the gate factor of the full family).

use dynfb_bench::engine::Engine;
use dynfb_bench::repset::{repset_report, repset_report_with, RepSetBenchConfig};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden copy; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn report_is_byte_identical_across_worker_counts_and_reruns() {
    let cfg = RepSetBenchConfig::quick();
    let serial = repset_report(&cfg);
    for jobs in [2, 4] {
        let parallel = repset_report_with(&cfg, &Engine::new(jobs));
        assert_eq!(serial.text, parallel.text, "report text diverged at {jobs} workers");
        assert_eq!(serial.json, parallel.json, "JSON diverged at {jobs} workers");
        assert_eq!(serial.selection, parallel.selection, "selection diverged at {jobs} workers");
    }
    // Rerun-stability: the same seed reproduces the selection bit for bit.
    let rerun = repset_report(&cfg);
    assert_eq!(serial.text, rerun.text);
    assert_eq!(serial.json, rerun.json);
    assert!(
        serial.selection.total_distance.to_bits() == rerun.selection.total_distance.to_bits(),
        "clustering distance not bitwise stable"
    );
}

#[test]
fn selection_table_matches_golden() {
    let report = repset_report(&RepSetBenchConfig::quick());
    check_golden("repset_selection.golden", &report.selection_table);
}

#[test]
fn pruning_meets_the_acceptance_bar() {
    let cfg = RepSetBenchConfig::quick();
    let report = repset_report(&cfg);
    assert!(cfg.family().len() >= 10, "family has only {} policies", cfg.family().len());
    assert!(
        report.selection.medoids.len() <= 4,
        "selected {} representatives",
        report.selection.medoids.len()
    );
    assert!(report.gate_passed, "pruned build missed the gate:\n{}", report.text);
}
