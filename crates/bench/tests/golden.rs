//! Golden-file tests for the report layer: a fixed `Table` render and a
//! fixed-seed `BENCH_RESULTS.json` snapshot.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p dynfb-bench --test
//! golden` after an intentional format change, and commit the updated
//! files under `tests/golden/`.

use dynfb_bench::engine::{Engine, Filter};
use dynfb_bench::experiments::{results_json, run_matrix, select, suite, Scale};
use dynfb_bench::report::Table;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden copy; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

fn sample_table() -> Table {
    let mut t =
        Table::new("Execution Times for Example (virtual seconds)", &["Version", "1", "2", "4"]);
    t.row(vec!["Serial".into(), "12.000".into(), String::new(), String::new()]);
    t.row(vec!["Original".into(), "13.125".into(), "6.703".into(), "3.531".into()]);
    t.row(vec!["Dynamic".into(), "12.250".into(), "6.250".into(), "3.250".into()]);
    t.note("fixed input — exercises alignment, empty cells, and notes");
    t
}

#[test]
fn table_console_render_matches_golden() {
    check_golden("table_console.golden", &sample_table().to_console());
}

#[test]
fn table_markdown_render_matches_golden() {
    check_golden("table_markdown.golden", &sample_table().to_markdown());
}

#[test]
fn barnes_hut_profile_exports_match_golden() {
    // A fixed-seed Barnes-Hut run (32 bodies, 4 procs, original policy)
    // profiled under the metrics registry, with lock ids mapped through
    // the compiler's region metadata. Everything is virtual-time
    // deterministic, so both exports are byte-stable across hosts.
    let p = dynfb_bench::profile::barnes_hut_profile(32, 4, "original");
    assert!(p.consistent, "per-lock sums must equal machine aggregates");
    check_golden("barnes_hut_profile.golden.prom", &p.prom);
    check_golden("barnes_hut_profile.golden.json", &p.json);
}

#[test]
fn bench_results_json_matches_golden() {
    // A tiny fixed-seed matrix: code sizes for all apps plus one serial
    // Barnes-Hut run. Everything in it is virtual-time deterministic, so
    // the snapshot is stable across hosts, thread counts, and reruns.
    let scale = Scale::quick();
    let exps = suite(&scale);
    let filter = Filter::new("table01-code-sizes,table04-bh-sections");
    let selected = select(&exps, Some(&filter));
    assert_eq!(selected.len(), 2, "snapshot experiments exist");
    let (store, _) = run_matrix(&scale, &selected, &Engine::new(2));
    check_golden("bench_results_quick.golden.json", &results_json(&scale, &store));
}
