//! End-to-end consistency oracle for the metrics subsystem: per-lock
//! profile sums must equal machine-wide stats aggregates exactly on every
//! fault scenario, the whole report must be byte-identical for every
//! engine worker count, and a saturated trace ring buffer must not cost a
//! single lock event (metrics do not route through the ring).

use dynfb_bench::chaos::{self, scenarios, ChaosApp, ChaosConfig, ChaosMode};
use dynfb_bench::engine::Engine;
use dynfb_bench::profile::{oracle_holds, profile_report_with, run_mode_metered};
use dynfb_core::metrics::MetricsRegistry;
use dynfb_core::trace::RingBuffer;
use dynfb_sim::{run_app_metered, run_app_observed};

fn cfg() -> ChaosConfig {
    ChaosConfig { seed: 11, iters: 900, procs: 4 }
}

#[test]
fn profile_agrees_with_machine_aggregates_on_every_scenario() {
    let cfg = cfg();
    let report = profile_report_with(&cfg, &Engine::new(1), None);
    assert!(report.consistent, "{}", report.text);
    // One JSON and one Prometheus export per scenario.
    assert_eq!(report.exports.len(), 2 * scenarios(&cfg).len());
    for (name, contents) in &report.exports {
        if name.ends_with(".json") {
            assert!(contents.starts_with("{\"scenario\":"), "{name}: {contents}");
            assert!(contents.ends_with("]}\n"), "{name}");
        } else {
            assert!(name.ends_with(".prom"), "{name}");
            assert!(contents.contains("dynfb_lock_acquires_total"), "{name}");
        }
    }
}

#[test]
fn report_and_exports_are_byte_identical_across_worker_counts() {
    let cfg = cfg();
    let serial = profile_report_with(&cfg, &Engine::new(1), None);
    let parallel = profile_report_with(&cfg, &Engine::new(4), None);
    assert_eq!(serial.text, parallel.text);
    assert_eq!(serial.exports, parallel.exports);
    assert_eq!(serial.consistent, parallel.consistent);
}

#[test]
fn every_mode_passes_the_oracle_under_every_scenario() {
    let cfg = cfg();
    for scenario in scenarios(&cfg) {
        for mode in ChaosMode::all() {
            let cell = run_mode_metered(&cfg, &scenario, mode);
            assert!(oracle_holds(&cell), "{} / {:?}", scenario.name, mode);
        }
    }
}

#[test]
fn saturated_trace_ring_does_not_lose_lock_metrics() {
    // Attach a one-slot ring buffer (guaranteed to drop trace events) and
    // the metrics registry to the same dynamic run: the profile must come
    // out identical to a metrics-only run, with exact per-lock totals —
    // metrics accumulate directly and never ride the droppable ring.
    let cfg = cfg();
    let scenario = &scenarios(&cfg)[1]; // lock-storm: heavy contention
    let run = chaos::mode_run_config(&cfg, scenario, ChaosMode::Dynamic);

    let mut ring = RingBuffer::new(1);
    let mut observed = MetricsRegistry::new();
    let observed_report =
        run_app_observed(ChaosApp::new(cfg.iters), &run, &mut ring, &mut observed)
            .expect("observed run");
    assert!(ring.dropped() > 0, "a one-slot ring must saturate");

    let mut metered = MetricsRegistry::new();
    let metered_report =
        run_app_metered(ChaosApp::new(cfg.iters), &run, &mut metered).expect("metered run");

    // The drops themselves are accounted: the observed run publishes the
    // exact drop total as a loss counter, which is the one difference a
    // saturated ring is allowed to make.
    assert_eq!(observed.counter_value("trace_dropped"), ring.dropped());
    assert_eq!(metered.counter_value("trace_dropped"), 0);
    dynfb_core::metrics::MetricsSink::counter(&mut metered, "trace_dropped", ring.dropped());
    assert_eq!(observed, metered, "the saturated ring changed the profile");
    assert_eq!(observed_report.stats, metered_report.stats);
    let totals = observed_report.stats.totals();
    let sums = observed.totals();
    assert_eq!(sums.acquires, totals.acquires);
    assert_eq!(sums.failed_attempts, totals.failed_attempts);
    assert_eq!(sums.locking, totals.lock_time);
    assert_eq!(sums.waiting, totals.wait_time);
    assert_eq!(sums.releases, sums.acquires);
}
