//! End-to-end consistency oracle: the adaptation timeline reconstructed
//! from trace events must agree with the chaos harness's numbers on every
//! fault scenario, and the whole report must be byte-identical for every
//! engine worker count.

use dynfb_bench::chaos::{scenarios, ChaosConfig};
use dynfb_bench::engine::Engine;
use dynfb_bench::trace::{run_dynamic_traced, trace_report_with};

fn cfg() -> ChaosConfig {
    ChaosConfig { seed: 11, iters: 900, procs: 4 }
}

#[test]
fn trace_agrees_with_the_harness_on_every_scenario() {
    let cfg = cfg();
    let report = trace_report_with(&cfg, &Engine::new(1), None);
    assert!(report.consistent, "{}", report.text);
    assert_eq!(report.traces.len(), scenarios(&cfg).len());
    for (name, json) in &report.traces {
        assert!(json.starts_with('{') && json.ends_with("]}\n"), "{name}: {json}");
        assert!(json.contains("\"traceEvents\""), "{name}");
    }
}

#[test]
fn report_and_traces_are_byte_identical_across_worker_counts() {
    let cfg = cfg();
    let serial = trace_report_with(&cfg, &Engine::new(1), None);
    let parallel = trace_report_with(&cfg, &Engine::new(4), None);
    assert_eq!(serial.text, parallel.text);
    assert_eq!(serial.traces, parallel.traces);
    assert_eq!(serial.consistent, parallel.consistent);
}

#[test]
fn traced_replay_captures_a_nonempty_trace_without_drops() {
    let cfg = cfg();
    for scenario in scenarios(&cfg) {
        let traced = run_dynamic_traced(&cfg, &scenario);
        assert_eq!(traced.dropped, 0, "{}", scenario.name);
        assert!(!traced.events.is_empty(), "{}", scenario.name);
    }
}
