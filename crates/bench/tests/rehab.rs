//! End-to-end: the watchdog × quarantine interaction when a transient
//! storm takes out the *entire* policy spectrum.
//!
//! Six surgically placed frozen-clock windows strike each of the three
//! chaos policies twice (`healthy → suspect → quarantined`). Under
//! [`RehabPolicy::Permanent`] no survivor remains, so the controller must
//! degrade to its safest policy and the driver must keep the workload
//! progressing to completion — graceful degradation, not deadlock or
//! panic. A traced replay of the identical configuration then serves as
//! the independent oracle: the trace must drop nothing, agree with the
//! report on elapsed time and production-interval count, and show the
//! quarantine of all three policies plus the settle on policy 0.

use dynfb_bench::chaos::{ChaosApp, ChaosConfig};
use dynfb_bench::rehab::{dynamic_run_config, run_dynamic, storm_plan};
use dynfb_core::controller::RehabPolicy;
use dynfb_core::trace::{RingBuffer, TraceEvent};
use dynfb_sim::run_app_traced;
use std::collections::BTreeSet;
use std::time::Duration;

#[test]
fn total_quarantine_degrades_to_the_safest_policy_and_completes() {
    let cfg = ChaosConfig { iters: 16_000, ..ChaosConfig::default() };
    let plan = storm_plan(&cfg, &[0, 0, 1, 1, 2, 2], Duration::from_millis(5));
    let run = run_dynamic(&cfg, RehabPolicy::Permanent, plan.clone());

    // Every policy was struck twice: the whole spectrum is quarantined,
    // and under permanent quarantine nothing ever comes back.
    assert_eq!(run.registry.counter_value("policy_suspected"), 3);
    assert_eq!(run.registry.counter_value("policy_quarantined"), 3);
    assert_eq!(run.registry.counter_value("policy_rehabilitated"), 0);
    assert_eq!(run.registry.counter_value("watchdog_soft_failures"), 6);

    // ...yet the run keeps making progress and finishes every iteration.
    let iters: usize = run.report.section("work").map(|e| e.iterations).sum();
    assert_eq!(iters, cfg.iters, "the workload must complete despite total quarantine");

    // With no survivor the runtime degrades to the safest policy (0, the
    // paper's Original) and stays there.
    let last_production = run
        .report
        .section("work")
        .flat_map(|e| e.records.iter())
        .filter(|r| !r.phase.is_sampling())
        .last()
        .expect("production intervals recorded");
    assert_eq!(last_production.version, 0, "degraded production must settle on the safest policy");

    // Traced replay of the identical configuration: the independent
    // observation channel must tell the same story.
    let mut ring = RingBuffer::new(1 << 16);
    let traced = run_app_traced(
        ChaosApp::new(cfg.iters),
        &dynamic_run_config(&cfg, RehabPolicy::Permanent, plan),
        &mut ring,
    )
    .expect("traced replay");
    assert_eq!(ring.dropped(), 0, "trace ring must not drop events");
    assert_eq!(traced.elapsed(), run.report.elapsed(), "trace sink must not perturb the run");

    let events = ring.into_events();
    let quarantined: BTreeSet<usize> = events
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::PolicyHealth { policy, state: "quarantined" } => Some(policy),
            _ => None,
        })
        .collect();
    assert_eq!(quarantined, BTreeSet::from([0, 1, 2]), "trace must record all three quarantines");

    // The trace balances against the report: one production-end event per
    // production record, settling on the same fallback policy.
    let production_records = run
        .report
        .section("work")
        .flat_map(|e| e.records.iter())
        .filter(|r| !r.phase.is_sampling())
        .count();
    let production_ends: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::ProductionEnd { policy, .. } => Some(policy),
            _ => None,
        })
        .collect();
    assert_eq!(production_ends.len(), production_records, "trace/report production counts agree");
    assert_eq!(production_ends.last(), Some(&0), "trace agrees on the degraded settle policy");
}
