//! Acceptance tests for the chaos harness: a mid-run fault flips the best
//! policy, and dynamic feedback re-converges within a bounded number of
//! production intervals and beats every static version.

use dynfb_bench::chaos::{chaos_controller, run_scenario, scenarios, ChaosConfig};
use std::time::Duration;

fn scenario_outcome(cfg: &ChaosConfig, name: &str) -> dynfb_bench::chaos::ScenarioOutcome {
    let s = scenarios(cfg).into_iter().find(|s| s.name == name).expect("scenario exists");
    run_scenario(cfg, &s)
}

#[test]
fn mid_run_storm_flips_the_best_policy_and_dynamic_beats_every_static() {
    let cfg = ChaosConfig::default();
    let baseline = scenario_outcome(&cfg, "baseline");
    let storm = scenario_outcome(&cfg, "lock-storm");

    // The mid-run contention storm flips the best static policy: fine
    // locking wins clean, coarse locking wins once lock ops are expensive.
    assert_eq!(baseline.oracle().mode, "original");
    assert_eq!(storm.oracle().mode, "aggressive");

    // Dynamic feedback re-converges onto the post-onset winner...
    assert_eq!(storm.adaptation.settled, "aggressive");
    assert!(storm.adaptation.switches >= 1);

    // ...within a bounded number of production intervals of the onset...
    let latency = storm.adaptation.latency.expect("production policy switched after onset");
    assert!(latency <= chaos_controller().target_production * 3, "latency {latency:?}");

    // ...and beats every static version over the whole faulted run.
    for s in &storm.statics {
        assert!(
            storm.dynamic.elapsed < s.elapsed,
            "dynamic {:?} not faster than static {} {:?}",
            storm.dynamic.elapsed,
            s.mode,
            s.elapsed
        );
    }
}

#[test]
fn frozen_clock_degrades_gracefully() {
    // With the observed clock frozen, sampling can never measure an
    // interval; the watchdog aborts into production and the run stays
    // close to the oracle instead of wedging or panicking.
    let cfg = ChaosConfig::default();
    let frozen = scenario_outcome(&cfg, "frozen-clock");
    assert!(frozen.dynamic.elapsed > Duration::ZERO);
    // Regret stays under 15% of the oracle's time.
    let slack = frozen.oracle().elapsed * 15 / 100;
    assert!(
        frozen.dynamic.elapsed <= frozen.oracle().elapsed + slack,
        "dynamic {:?} vs oracle {:?}",
        frozen.dynamic.elapsed,
        frozen.oracle().elapsed
    );
}
