//! Acceptance tests for the chaos harness: a mid-run fault flips the best
//! policy, dynamic feedback re-converges within a bounded number of
//! production intervals and beats every static version, and the
//! event-driven resampling trigger strictly dominates the fixed-interval
//! one on every abrupt-shift scenario.
//!
//! The report snapshot regenerates with `UPDATE_GOLDEN=1 cargo test -p
//! dynfb-bench --test chaos` after an intentional change.

use dynfb_bench::chaos::{
    chaos_controller, chaos_report_with, run_scenario, scenarios, ChaosConfig,
};
use dynfb_bench::engine::Engine;
use std::path::PathBuf;
use std::time::Duration;

fn scenario_outcome(cfg: &ChaosConfig, name: &str) -> dynfb_bench::chaos::ScenarioOutcome {
    let s = scenarios(cfg).into_iter().find(|s| s.name == name).expect("scenario exists");
    run_scenario(cfg, &s)
}

#[test]
fn mid_run_storm_flips_the_best_policy_and_dynamic_beats_every_static() {
    let cfg = ChaosConfig::default();
    let baseline = scenario_outcome(&cfg, "baseline");
    let storm = scenario_outcome(&cfg, "lock-storm");

    // The mid-run contention storm flips the best static policy: fine
    // locking wins clean, coarse locking wins once lock ops are expensive.
    assert_eq!(baseline.oracle().mode, "original");
    assert_eq!(storm.oracle().mode, "aggressive");

    // Dynamic feedback re-converges onto the post-onset winner...
    assert_eq!(storm.adaptation.settled, "aggressive");
    assert!(storm.adaptation.switches >= 1);

    // ...within a bounded number of production intervals of the onset...
    let latency = storm.adaptation.latency.expect("production policy switched after onset");
    assert!(latency <= chaos_controller().target_production * 3, "latency {latency:?}");

    // ...and beats every static version over the whole faulted run.
    for s in &storm.statics {
        assert!(
            storm.dynamic.elapsed < s.elapsed,
            "dynamic {:?} not faster than static {} {:?}",
            storm.dynamic.elapsed,
            s.mode,
            s.elapsed
        );
    }
}

#[test]
fn frozen_clock_degrades_gracefully() {
    // With the observed clock frozen, sampling can never measure an
    // interval; the watchdog aborts into production and the run stays
    // close to the oracle instead of wedging or panicking.
    let cfg = ChaosConfig::default();
    let frozen = scenario_outcome(&cfg, "frozen-clock");
    assert!(frozen.dynamic.elapsed > Duration::ZERO);
    // Regret stays under 15% of the oracle's time.
    let slack = frozen.oracle().elapsed * 15 / 100;
    assert!(
        frozen.dynamic.elapsed <= frozen.oracle().elapsed + slack,
        "dynamic {:?} vs oracle {:?}",
        frozen.dynamic.elapsed,
        frozen.oracle().elapsed
    );
}

/// The abrupt-shift scenarios: the environment changes step-wise, so the
/// change-point chart has an edge to detect.
const ABRUPT_SHIFT: [&str; 3] = ["lock-storm", "crash-mid-sampling", "storm-cycles"];

#[test]
fn event_driven_strictly_dominates_fixed_on_abrupt_shifts() {
    let cfg = ChaosConfig::default();
    for name in ABRUPT_SHIFT {
        let out = scenario_outcome(&cfg, name);
        // Strictly lower adaptation latency: production switches to a new
        // policy sooner after onset (a fixed trigger that never switched
        // at all is dominated by any switch).
        let event = out.event_adaptation.latency.unwrap_or_else(|| {
            panic!("{name}: event-driven must adapt after onset");
        });
        // A fixed trigger that never adapted is dominated by definition.
        if let Some(fixed) = out.adaptation.latency {
            assert!(
                event < fixed,
                "{name}: event-driven latency {event:?} not strictly below fixed {fixed:?}"
            );
        }
        // Strictly lower regret vs the oracle over the whole run.
        let event_regret = out.regret_micros(&out.event_driven);
        let fixed_regret = out.regret_micros(&out.dynamic);
        assert!(
            event_regret < fixed_regret,
            "{name}: event-driven regret {event_regret} not strictly below fixed {fixed_regret}"
        );
    }
}

#[test]
fn event_driven_is_never_slower_on_stationary_scenarios() {
    // On scenarios with no post-onset shift in the waiting signal the
    // detector stays quiet, `max_quiescence` reproduces the fixed
    // production interval, and the two modes simulate identically — the
    // event-driven trigger costs nothing when the workload is stationary.
    let cfg = ChaosConfig::default();
    for name in ["baseline", "timer-jitter", "frozen-clock", "barrier-straggler", "slowdown"] {
        let out = scenario_outcome(&cfg, name);
        assert!(
            out.event_driven.elapsed <= out.dynamic.elapsed,
            "{name}: event-driven {:?} slower than fixed {:?}",
            out.event_driven.elapsed,
            out.dynamic.elapsed
        );
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden copy; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn chaos_report_matches_golden_and_any_worker_count() {
    // The full scenario × mode matrix — including the event-driven column
    // and its adaptation notes — renders byte-identically for any engine
    // worker count, and matches the committed snapshot.
    let cfg = ChaosConfig::default();
    let serial = chaos_report_with(&cfg, &Engine::new(1), None);
    let parallel = chaos_report_with(&cfg, &Engine::new(4), None);
    assert_eq!(serial, parallel, "report must not depend on --jobs");
    check_golden("chaos_report.golden", &serial);
}
