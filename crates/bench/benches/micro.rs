//! Criterion micro-benchmarks for the core building blocks: the
//! discrete-event engine, the dynamic feedback controller, symbolic
//! normalization, compilation, and a small end-to-end simulated run.

use criterion::{criterion_group, criterion_main, Criterion};
use dynfb_core::controller::{Controller, ControllerConfig};
use dynfb_core::overhead::OverheadSample;
use dynfb_core::theory::Analysis;
use std::hint::black_box;
use std::time::Duration;

fn bench_controller(c: &mut Criterion) {
    c.bench_function("controller/sampling_cycle", |b| {
        let cfg = ControllerConfig { num_policies: 3, ..ControllerConfig::default() };
        b.iter(|| {
            let mut ctl = Controller::new(cfg.clone());
            ctl.begin_section();
            for o in [0.4, 0.2, 0.1, 0.15] {
                ctl.complete_interval(OverheadSample::from_fraction(o, Duration::from_millis(1)));
            }
            black_box(ctl.current_policy())
        });
    });
}

fn bench_theory(c: &mut Criterion) {
    c.bench_function("theory/p_opt", |b| {
        let a = Analysis::new(1.0, 2, 0.065).unwrap();
        b.iter(|| black_box(a.optimal_production_interval()));
    });
    c.bench_function("theory/feasible_region", |b| {
        let a = Analysis::new(1.0, 2, 0.065).unwrap();
        b.iter(|| black_box(a.feasible_region(0.5).unwrap()));
    });
}

fn bench_engine(c: &mut Criterion) {
    use dynfb_sim::{Machine, MachineConfig, ProcCtx, Process, Step};
    struct Spin {
        remaining: u32,
        lock: dynfb_sim::LockId,
    }
    impl Process for Spin {
        fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
            if self.remaining == 0 {
                return Step::Done;
            }
            self.remaining -= 1;
            // Countdown phases per cycle: compute (2), acquire (1), release (0).
            match self.remaining % 3 {
                2 => Step::Compute(Duration::from_micros(1)),
                1 => Step::Acquire(self.lock),
                _ => Step::Release(self.lock),
            }
        }
    }
    c.bench_function("engine/100k_events_4_procs", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let lock = m.add_lock();
            let procs: Vec<Box<dyn Process>> = (0..4)
                .map(|_| Box::new(Spin { remaining: 25_000 * 3, lock }) as Box<dyn Process>)
                .collect();
            black_box(m.run(procs).unwrap())
        });
    });
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compiler/compile_barnes_hut", |b| {
        b.iter(|| {
            black_box(dynfb_apps::barnes_hut(&dynfb_apps::BarnesHutConfig {
                bodies: 64,
                steps: 1,
                ..Default::default()
            }))
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("barnes_hut_128_bodies_8_procs_dynamic", |b| {
        b.iter(|| {
            let app = dynfb_apps::barnes_hut(&dynfb_apps::BarnesHutConfig {
                bodies: 128,
                steps: 1,
                ..Default::default()
            });
            let ctl = ControllerConfig {
                target_sampling: Duration::from_micros(200),
                target_production: Duration::from_millis(50),
                ..ControllerConfig::default()
            };
            black_box(dynfb_sim::run_app(app, &dynfb_apps::run_dynamic(8, ctl)).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_controller,
    bench_theory,
    bench_engine,
    bench_compile,
    bench_end_to_end
);
criterion_main!(benches);
