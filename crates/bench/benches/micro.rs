//! Micro-benchmarks for the core building blocks: the discrete-event
//! engine, the dynamic feedback controller, symbolic normalization,
//! compilation, and a small end-to-end simulated run.
//!
//! Self-contained harness (no external bench framework): each benchmark is
//! warmed up, then timed over enough iterations to smooth scheduler noise,
//! reporting mean time per iteration. Run with
//! `cargo bench -p dynfb-bench`.

use dynfb_core::controller::{Controller, ControllerConfig};
use dynfb_core::overhead::OverheadSample;
use dynfb_core::theory::Analysis;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` over adaptively chosen iteration counts and print the mean.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up and calibration: find an iteration count that runs ≥ 50 ms.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
            break elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        }
        iters *= 4;
    };
    // Measurement pass at the calibrated count.
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
    let _ = per_iter;
    println!("{name:<45} {mean:>12.3?}/iter  ({iters} iters)");
}

fn bench_controller() {
    let cfg = ControllerConfig { num_policies: 3, ..ControllerConfig::default() };
    bench("controller/sampling_cycle", || {
        let mut ctl = Controller::new(cfg.clone());
        ctl.begin_section();
        for o in [0.4, 0.2, 0.1, 0.15] {
            ctl.complete_interval(OverheadSample::from_fraction(o, Duration::from_millis(1)));
        }
        black_box(ctl.current_policy());
    });
}

fn bench_theory() {
    let a = Analysis::new(1.0, 2, 0.065).unwrap();
    bench("theory/p_opt", || {
        black_box(a.optimal_production_interval());
    });
    let a = Analysis::new(1.0, 2, 0.065).unwrap();
    bench("theory/feasible_region", || {
        black_box(a.feasible_region(0.5).unwrap());
    });
}

fn bench_engine() {
    use dynfb_sim::{Machine, MachineConfig, ProcCtx, Process, Step};
    struct Spin {
        remaining: u32,
        lock: dynfb_sim::LockId,
    }
    impl Process for Spin {
        fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Step {
            if self.remaining == 0 {
                return Step::Done;
            }
            self.remaining -= 1;
            // Countdown phases per cycle: compute (2), acquire (1), release (0).
            match self.remaining % 3 {
                2 => Step::Compute(Duration::from_micros(1)),
                1 => Step::Acquire(self.lock),
                _ => Step::Release(self.lock),
            }
        }
    }
    bench("engine/100k_events_4_procs", || {
        let mut m = Machine::new(MachineConfig::default());
        let lock = m.add_lock();
        let procs: Vec<Box<dyn Process>> = (0..4)
            .map(|_| Box::new(Spin { remaining: 25_000 * 3, lock }) as Box<dyn Process>)
            .collect();
        black_box(m.run(procs).unwrap());
    });
}

fn bench_compile() {
    bench("compiler/compile_barnes_hut", || {
        black_box(dynfb_apps::barnes_hut(&dynfb_apps::BarnesHutConfig {
            bodies: 64,
            steps: 1,
            ..Default::default()
        }));
    });
}

fn bench_end_to_end() {
    bench("end_to_end/barnes_hut_128_bodies_8_procs_dynamic", || {
        let app = dynfb_apps::barnes_hut(&dynfb_apps::BarnesHutConfig {
            bodies: 128,
            steps: 1,
            ..Default::default()
        });
        let ctl = ControllerConfig {
            target_sampling: Duration::from_micros(200),
            target_production: Duration::from_millis(50),
            ..ControllerConfig::default()
        };
        black_box(dynfb_sim::run_app(app, &dynfb_apps::run_dynamic(8, ctl)).unwrap());
    });
}

fn main() {
    bench_controller();
    bench_theory();
    bench_engine();
    bench_compile();
    bench_end_to_end();
}
