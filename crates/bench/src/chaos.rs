//! Chaos harness: fault scenarios × execution modes.
//!
//! Sweeps a matrix of fault-injection scenarios (lock-contention storms,
//! processor slowdowns, timer jitter, a frozen clock, barrier stragglers,
//! plus one seeded random plan) against the three static policies and
//! dynamic feedback, and reports for each scenario:
//!
//! * elapsed and waiting time per mode,
//! * each mode's **regret vs the oracle** (the best static policy for that
//!   scenario — negative regret means the mode beat every static), and
//! * for dynamic feedback, the **adaptation latency**: how long after
//!   fault onset the production policy changed.
//!
//! The workload is a shared-counter reduction with three lock-granularity
//! versions mirroring the paper's policy spectrum. Without faults the
//! fine-grained `original` version wins (updates execute outside the
//! critical section). A mid-run contention storm makes every lock
//! operation expensive, flipping the best policy to the coarse
//! `aggressive` version — the environment change §4.4 argues periodic
//! resampling exists to catch.
//!
//! Everything is deterministic: the same seed produces a byte-identical
//! report (`tests/determinism.rs` enforces this).

use crate::engine::{Engine, Filter};
use crate::report::Table;
use dynfb_core::controller::{ControllerConfig, ResampleTrigger};
use dynfb_core::detector::DetectorConfig;
use dynfb_sim::{
    run_app, AppReport, ChaosProfile, FaultKind, FaultPlan, LockId, Machine, MachineConfig, OpSink,
    PlanEntry, RunConfig, SampleRecord, SimApp, Target, Window,
};
use std::fmt::Write as _;
use std::time::Duration;

/// Updates per loop iteration (the batch the coarse version locks across).
const UPDATES: usize = 16;
/// Shared slots: every iteration lands on one of these locks. Public so
/// the profile oracle can label the slots' machine lock ids.
pub const SLOTS: usize = 4;
/// Cost of one update's computation.
const UPDATE_COST: Duration = Duration::from_micros(6);

/// The three lock-granularity versions, coarsest last — names match the
/// paper's policy spectrum used throughout this repository.
pub const VERSIONS: [&str; 3] = ["original", "bounded", "aggressive"];

/// Chaos sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the random scenario (and report banner).
    pub seed: u64,
    /// Loop iterations per run (each performs [`UPDATES`] updates).
    pub iters: usize,
    /// Simulated processors.
    pub procs: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 42, iters: 6_000, procs: 8 }
    }
}

impl ChaosConfig {
    /// Virtual time at which mid-run faults switch on: roughly half the
    /// ideal (fully parallel, uncontended) duration of the workload, so
    /// the fault splits every run into a before and an after.
    #[must_use]
    pub fn onset(&self) -> Duration {
        let ideal = UPDATE_COST * (UPDATES * self.iters / self.procs.max(1)) as u32;
        ideal / 2
    }
}

/// The chaos workload: a shared-counter reduction over [`SLOTS`] slots.
///
/// * `original` computes each update outside the critical section and
///   locks only for the store — 16 cheap lock pairs per iteration.
/// * `bounded` locks across batches of 4 updates — 4 pairs.
/// * `aggressive` locks once across the whole iteration — 1 pair, but the
///   lock is held for the entire computation.
pub struct ChaosApp {
    iters: usize,
    locks: Vec<LockId>,
}

impl ChaosApp {
    /// A fresh instance performing `iters` iterations.
    #[must_use]
    pub fn new(iters: usize) -> Self {
        ChaosApp { iters, locks: Vec::new() }
    }
}

impl SimApp for ChaosApp {
    fn name(&self) -> &str {
        "chaos"
    }
    fn setup(&mut self, machine: &mut Machine) {
        let first = machine.add_locks(SLOTS);
        self.locks = (0..SLOTS).map(|i| first.offset(i)).collect();
    }
    fn plan(&self) -> Vec<PlanEntry> {
        vec![PlanEntry::parallel("work")]
    }
    fn versions(&self, _section: &str) -> Vec<String> {
        VERSIONS.iter().map(ToString::to_string).collect()
    }
    fn emit_serial(&mut self, _section: &str, _ops: &mut OpSink) {}
    fn begin_parallel(&mut self, _section: &str) -> usize {
        self.iters
    }
    fn emit_iteration(&mut self, _s: &str, version: usize, iter: usize, ops: &mut OpSink) {
        let lock = self.locks[iter % SLOTS];
        match version {
            0 => {
                // original: compute outside, lock per store.
                for _ in 0..UPDATES {
                    ops.compute(UPDATE_COST);
                    ops.acquire(lock);
                    ops.compute(Duration::from_nanos(200));
                    ops.release(lock);
                }
            }
            1 => {
                // bounded: lock across batches of 4 updates.
                for _ in 0..UPDATES / 4 {
                    ops.acquire(lock);
                    for _ in 0..4 {
                        ops.compute(UPDATE_COST);
                    }
                    ops.release(lock);
                }
            }
            _ => {
                // aggressive: one lock across the whole iteration.
                ops.acquire(lock);
                for _ in 0..UPDATES {
                    ops.compute(UPDATE_COST);
                }
                ops.release(lock);
            }
        }
    }
}

/// Machine with cheap spin locks (as the drifting-environment example), so
/// the *fault plans* — not the baseline cost model — decide the winner.
#[must_use]
pub fn chaos_machine() -> MachineConfig {
    MachineConfig {
        lock_acquire_cost: Duration::from_nanos(200),
        lock_release_cost: Duration::from_nanos(200),
        lock_attempt_cost: Duration::from_nanos(100),
        ..MachineConfig::default()
    }
}

/// Controller for dynamic runs: sample all three policies quickly, then
/// produce in 20 ms intervals — short enough to re-detect a mid-run flip
/// within a few intervals, long enough to amortize sampling (§4.4).
#[must_use]
pub fn chaos_controller() -> ControllerConfig {
    ControllerConfig {
        num_policies: VERSIONS.len(),
        target_sampling: Duration::from_micros(500),
        target_production: Duration::from_millis(20),
        ..ControllerConfig::default()
    }
}

/// Controller for event-driven runs: the same cadence as
/// [`chaos_controller`], but production ends early when the CUSUM chart
/// over the per-slice waiting proportion alarms. `max_quiescence` equals
/// the fixed production target, so a stationary environment behaves
/// exactly like the fixed-interval controller; `min_spacing` of 2 demands
/// two consecutive post-threshold observations before acting, filtering
/// single-slice noise spikes.
#[must_use]
pub fn event_controller() -> ControllerConfig {
    ControllerConfig {
        trigger: ResampleTrigger::EventDriven {
            detector: DetectorConfig::default_cusum(),
            min_spacing: 2,
            max_quiescence: Duration::from_millis(20),
        },
        ..chaos_controller()
    }
}

/// One named fault scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (report row key).
    pub name: &'static str,
    /// The fault plan applied to every mode's run.
    pub plan: FaultPlan,
    /// Virtual time the scenario's faults begin (zero for always-on
    /// scenarios); adaptation latency is measured from here.
    pub onset: Duration,
}

/// A window from `start` to far beyond any run in this harness.
fn from_onset(start: Duration) -> Window {
    Window::new(start, Duration::from_secs(3_600))
}

/// A plan with `count` transient frozen-clock windows of `width`, spaced
/// `period` apart starting at `start`: the controller's timer freezes and
/// thaws repeatedly, exercising the watchdog/health machinery without any
/// single permanent fault. Shared with the rehabilitation harness
/// (`crate::rehab`).
#[must_use]
pub fn freeze_cycles(
    seed: u64,
    start: Duration,
    width: Duration,
    period: Duration,
    count: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for k in 0..count {
        let at = start + period * k as u32;
        plan =
            plan.with_event(Window::new(at, at + width), FaultKind::TimerDrift { ppm: -1_000_000 });
    }
    plan
}

/// A plan with `count` transient contention-storm windows of `width`,
/// spaced `period` apart starting at `start`: the best policy flips to
/// coarse locking inside every window and back outside it.
#[must_use]
pub fn contention_cycles(
    seed: u64,
    start: Duration,
    width: Duration,
    period: Duration,
    count: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for k in 0..count {
        let at = start + period * k as u32;
        plan = plan.with_event(
            Window::new(at, at + width),
            FaultKind::ContentionStorm {
                locks: Target::All,
                cost_factor: 20.0,
                extra_hold: Duration::from_micros(10),
            },
        );
    }
    plan
}

/// The fault scenarios swept by the harness, in report order.
#[must_use]
pub fn scenarios(cfg: &ChaosConfig) -> Vec<Scenario> {
    let onset = cfg.onset();
    let half: Vec<usize> = (0..cfg.procs / 2).collect();
    vec![
        Scenario { name: "baseline", plan: FaultPlan::new(cfg.seed), onset: Duration::ZERO },
        Scenario {
            name: "lock-storm",
            plan: FaultPlan::new(cfg.seed).with_event(
                from_onset(onset),
                FaultKind::ContentionStorm {
                    locks: Target::All,
                    cost_factor: 20.0,
                    extra_hold: Duration::from_micros(10),
                },
            ),
            onset,
        },
        Scenario {
            name: "slowdown",
            plan: FaultPlan::new(cfg.seed).with_event(
                from_onset(onset),
                FaultKind::Slowdown { procs: Target::Only(half), factor: 8.0 },
            ),
            onset,
        },
        Scenario {
            name: "timer-jitter",
            plan: FaultPlan::new(cfg.seed).with_event(
                Window::always(),
                FaultKind::TimerJitter { max: Duration::from_micros(50) },
            ),
            onset: Duration::ZERO,
        },
        Scenario {
            name: "frozen-clock",
            plan: FaultPlan::new(cfg.seed)
                .with_event(Window::always(), FaultKind::TimerDrift { ppm: -1_000_000 }),
            onset: Duration::ZERO,
        },
        Scenario {
            name: "barrier-straggler",
            plan: FaultPlan::new(cfg.seed).with_event(
                Window::always(),
                FaultKind::BarrierStraggler {
                    procs: Target::Only(vec![0]),
                    delay: Duration::from_micros(200),
                },
            ),
            onset: Duration::ZERO,
        },
        Scenario {
            // A processor dies early — while the very first sampling phase
            // still holds locks constantly — at the same instant a
            // contention storm switches on. The crash poisons the in-flight
            // interval (crash-fallback, orphaned-lock recovery), so the
            // controller commits to the winner of its *pre-storm* samples
            // and the fixed-interval trigger sits out a full production
            // interval under the wrong policy; the change-point chart sees
            // production waiting diverge from the sampled baseline
            // immediately.
            name: "crash-mid-sampling",
            plan: FaultPlan::new(cfg.seed)
                .with_event(
                    Window::new(Duration::from_micros(800), Duration::from_micros(801)),
                    FaultKind::ProcCrash { procs: Target::Only(vec![cfg.procs - 1]) },
                )
                .with_event(
                    from_onset(Duration::from_micros(800)),
                    FaultKind::ContentionStorm {
                        locks: Target::All,
                        cost_factor: 20.0,
                        extra_hold: Duration::from_micros(10),
                    },
                ),
            onset: Duration::from_micros(800),
        },
        Scenario {
            // The chronically slow processor is also the one that dies:
            // every barrier first waits on the straggler, then loses it
            // outright at onset.
            name: "crash-straggler",
            plan: FaultPlan::new(cfg.seed)
                .with_event(
                    Window::always(),
                    FaultKind::BarrierStraggler {
                        procs: Target::Only(vec![0]),
                        delay: Duration::from_micros(200),
                    },
                )
                .with_event(
                    Window::new(onset, onset + Duration::from_micros(1)),
                    FaultKind::ProcCrash { procs: Target::Only(vec![0]) },
                ),
            onset,
        },
        Scenario {
            // Repeated transient contention storms: each 10 ms window
            // flips the best policy to `aggressive` and each gap flips it
            // back, out of phase with the 20 ms fixed production interval
            // — periodic resampling keeps committing to the policy of the
            // environment it just left. The two-sided change-point chart
            // catches both edges. (The transient *clock-freeze*
            // counterpart of this scenario lives in the rehabilitation
            // harness, built on [`freeze_cycles`].)
            name: "storm-cycles",
            plan: contention_cycles(
                cfg.seed,
                onset,
                Duration::from_millis(10),
                Duration::from_millis(30),
                2,
            ),
            onset,
        },
        Scenario {
            name: "random",
            plan: FaultPlan::random(
                cfg.seed,
                &ChaosProfile {
                    horizon: cfg.onset() * 4,
                    procs: cfg.procs,
                    locks: SLOTS,
                    events: 4,
                },
            ),
            onset: Duration::ZERO,
        },
    ]
}

/// Result of one mode's run under one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeOutcome {
    /// Mode name (a static policy name, or `"dynamic"`).
    pub mode: String,
    /// Total virtual execution time.
    pub elapsed: Duration,
    /// Machine-wide waiting (spinning) time.
    pub waiting: Duration,
}

/// How dynamic feedback adapted during one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adaptation {
    /// Production-policy changes over the run.
    pub switches: usize,
    /// Version name of the last production interval.
    pub settled: String,
    /// Time from scenario onset to the end of the first production
    /// interval running a *different* policy than before onset; `None` if
    /// production never switched after onset.
    pub latency: Option<Duration>,
}

/// All measurements for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// One outcome per static policy, in [`VERSIONS`] order.
    pub statics: Vec<ModeOutcome>,
    /// The dynamic-feedback outcome.
    pub dynamic: ModeOutcome,
    /// How the dynamic run adapted.
    pub adaptation: Adaptation,
    /// The event-driven (change-point triggered) outcome.
    pub event_driven: ModeOutcome,
    /// How the event-driven run adapted.
    pub event_adaptation: Adaptation,
}

impl ScenarioOutcome {
    /// The oracle: the best static policy for this scenario.
    #[must_use]
    pub fn oracle(&self) -> &ModeOutcome {
        self.statics.iter().min_by_key(|m| m.elapsed).expect("static modes ran")
    }

    /// `mode`'s regret vs the oracle in microseconds (negative: beat it).
    #[must_use]
    pub fn regret_micros(&self, mode: &ModeOutcome) -> i128 {
        mode.elapsed.as_micros() as i128 - self.oracle().elapsed.as_micros() as i128
    }
}

/// Elapsed/waiting measurements of one report, labelled `mode`.
#[must_use]
pub fn mode_outcome(mode: &str, report: &AppReport) -> ModeOutcome {
    ModeOutcome {
        mode: mode.to_string(),
        elapsed: report.elapsed(),
        waiting: report.stats.totals().wait_time,
    }
}

/// Reconstruct how the dynamic run adapted from its production records.
/// The trace oracle (`dynfb_bench::trace`) recomputes the same quantities
/// independently from trace events and cross-checks them against this.
#[must_use]
pub fn analyze_adaptation(report: &AppReport, onset: Duration) -> Adaptation {
    let production: Vec<&SampleRecord> = report
        .section("work")
        .flat_map(|exec| exec.records.iter())
        .filter(|r| r.phase.is_production())
        .collect();
    let switches = production.windows(2).filter(|w| w[0].version != w[1].version).count();
    let settled =
        production.last().map_or_else(|| "(none)".to_string(), |r| VERSIONS[r.version].to_string());
    let onset_t = dynfb_sim::SimTime::ZERO + onset;
    let before = production
        .iter()
        .take_while(|r| r.at < onset_t)
        .last()
        .or(production.first())
        .map(|r| r.version);
    let latency = before.and_then(|v0| {
        production
            .iter()
            .find(|r| r.at >= onset_t && r.version != v0)
            .map(|r| r.at.saturating_since(onset_t))
    });
    Adaptation { switches, settled, latency }
}

/// One execution mode of the chaos matrix: a static policy (index into
/// [`VERSIONS`]) or dynamic feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Fixed policy `VERSIONS[i]`.
    Static(usize),
    /// Dynamic feedback with the chaos controller and watchdog.
    Dynamic,
    /// Dynamic feedback with the event-driven resampling trigger
    /// ([`event_controller`]) and the same watchdog.
    EventDriven,
}

impl ChaosMode {
    /// All modes, in report order.
    #[must_use]
    pub fn all() -> Vec<ChaosMode> {
        (0..VERSIONS.len())
            .map(ChaosMode::Static)
            .chain([ChaosMode::Dynamic, ChaosMode::EventDriven])
            .collect()
    }

    /// Mode name as it appears in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChaosMode::Static(i) => VERSIONS[*i],
            ChaosMode::Dynamic => "dynamic",
            ChaosMode::EventDriven => "event-driven",
        }
    }
}

/// Result of one (scenario, mode) job.
#[derive(Debug, Clone)]
pub struct ChaosJobResult {
    /// Elapsed/waiting measurements.
    pub outcome: ModeOutcome,
    /// Adaptation analysis (dynamic mode only).
    pub adaptation: Option<Adaptation>,
}

/// Run one (scenario, mode) cell of the chaos matrix — the unit of work
/// the parallel engine schedules. Pure function of its arguments.
///
/// # Panics
///
/// Panics if the simulation fails — the harness only builds valid configs,
/// so a failure here is a bug worth a loud stop.
#[must_use]
pub fn run_mode(cfg: &ChaosConfig, scenario: &Scenario, mode: ChaosMode) -> ChaosJobResult {
    let run = mode_run_config(cfg, scenario, mode);
    let report = run_app(ChaosApp::new(cfg.iters), &run).expect("chaos run");
    let adaptation = match mode {
        ChaosMode::Static(_) => None,
        ChaosMode::Dynamic | ChaosMode::EventDriven => {
            Some(analyze_adaptation(&report, scenario.onset))
        }
    };
    ChaosJobResult { outcome: mode_outcome(mode.name(), &report), adaptation }
}

/// The exact [`RunConfig`] that [`run_mode`] simulates for `mode` under
/// `scenario` — exposed so the trace oracle can replay the identical run
/// with a trace sink attached.
#[must_use]
pub fn mode_run_config(cfg: &ChaosConfig, scenario: &Scenario, mode: ChaosMode) -> RunConfig {
    let mut run = match mode {
        ChaosMode::Static(i) => {
            RunConfig::fixed(cfg.procs, VERSIONS[i]).with_faults(scenario.plan.clone())
        }
        ChaosMode::Dynamic => RunConfig::dynamic(cfg.procs, chaos_controller())
            .with_faults(scenario.plan.clone())
            .with_watchdog(8),
        ChaosMode::EventDriven => RunConfig::dynamic(cfg.procs, event_controller())
            .with_faults(scenario.plan.clone())
            .with_watchdog(8),
    };
    run.machine = chaos_machine();
    run
}

/// Assemble one scenario's per-mode cell results (in [`ChaosMode::all`]
/// order) into a [`ScenarioOutcome`].
///
/// # Panics
///
/// Panics if `results` does not contain one entry per mode.
#[must_use]
pub fn assemble(scenario: &Scenario, results: Vec<ChaosJobResult>) -> ScenarioOutcome {
    let mut statics = Vec::new();
    let mut dynamic = None;
    let mut adaptation = None;
    let mut event_driven = None;
    let mut event_adaptation = None;
    for (mode, r) in ChaosMode::all().into_iter().zip(results) {
        match mode {
            ChaosMode::Static(_) => statics.push(r.outcome),
            ChaosMode::Dynamic => {
                dynamic = Some(r.outcome);
                adaptation = r.adaptation;
            }
            ChaosMode::EventDriven => {
                event_driven = Some(r.outcome);
                event_adaptation = r.adaptation;
            }
        }
    }
    ScenarioOutcome {
        scenario: scenario.clone(),
        statics,
        dynamic: dynamic.expect("dynamic mode ran"),
        adaptation: adaptation.expect("dynamic mode analyzed"),
        event_driven: event_driven.expect("event-driven mode ran"),
        event_adaptation: event_adaptation.expect("event-driven mode analyzed"),
    }
}

/// Run all four modes under one scenario (serially, on this thread).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_scenario(cfg: &ChaosConfig, scenario: &Scenario) -> ScenarioOutcome {
    let results = ChaosMode::all().into_iter().map(|m| run_mode(cfg, scenario, m)).collect();
    assemble(scenario, results)
}

fn micros(d: Duration) -> String {
    format!("{}", d.as_micros())
}

fn render(cfg: &ChaosConfig, out: &ScenarioOutcome) -> String {
    let mut t = Table::new(
        &format!(
            "Chaos scenario `{}` ({} iterations, {} procs)",
            out.scenario.name, cfg.iters, cfg.procs
        ),
        &["mode", "elapsed (us)", "waiting (us)", "regret vs oracle (us)"],
    );
    for m in out.statics.iter().chain([&out.dynamic, &out.event_driven]) {
        t.row(vec![
            m.mode.clone(),
            micros(m.elapsed),
            micros(m.waiting),
            format!("{:+}", out.regret_micros(m)),
        ]);
    }
    let oracle = out.oracle();
    t.note(format!("oracle (best static): {} at {} us", oracle.mode, micros(oracle.elapsed)));
    for (label, a) in [("dynamic", &out.adaptation), ("event-driven", &out.event_adaptation)] {
        let latency = match (a.latency, out.scenario.onset) {
            (Some(l), _) => format!(
                "adapted {} us after onset (t={} us)",
                micros(l),
                out.scenario.onset.as_micros()
            ),
            (None, o) if o > Duration::ZERO => "did not switch after onset".to_string(),
            _ => "no onset; latency n/a".to_string(),
        };
        t.note(format!(
            "{label}: {} production switch(es), settled on {}; {}",
            a.switches, a.settled, latency
        ));
    }
    t.to_console()
}

/// Run the full scenario × mode sweep and render the deterministic report.
/// The same `cfg` always yields a byte-identical string.
#[must_use]
pub fn chaos_report(cfg: &ChaosConfig) -> String {
    chaos_report_with(cfg, &Engine::new(1), None)
}

/// Run the (optionally filtered) scenario × mode matrix on `engine` and
/// render the report. Each (scenario, mode) cell is one engine job;
/// results are reassembled in scenario/mode order, so the report is
/// byte-identical for every worker count — [`chaos_report`] is this with
/// one worker and no filter.
#[must_use]
pub fn chaos_report_with(cfg: &ChaosConfig, engine: &Engine, filter: Option<&Filter>) -> String {
    let selected: Vec<Scenario> =
        scenarios(cfg).into_iter().filter(|s| filter.is_none_or(|f| f.matches(s.name))).collect();
    let modes = ChaosMode::all();
    let tasks: Vec<Box<dyn FnOnce() -> ChaosJobResult + Send + '_>> = selected
        .iter()
        .flat_map(|scenario| {
            modes.iter().map(move |&mode| {
                let task: Box<dyn FnOnce() -> ChaosJobResult + Send + '_> =
                    Box::new(move || run_mode(cfg, scenario, mode));
                task
            })
        })
        .collect();
    let mut results = engine.run(tasks).into_iter().map(|t| t.value);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos harness: {} scenarios x {{{}, dynamic, event-driven}} (seed {})\n",
        selected.len(),
        VERSIONS.join(", "),
        cfg.seed
    );
    for scenario in &selected {
        let cells: Vec<ChaosJobResult> = results.by_ref().take(modes.len()).collect();
        let result = assemble(scenario, cells);
        out.push_str(&render(cfg, &result));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig { seed: 5, iters: 1_200, procs: 8 }
    }

    #[test]
    fn baseline_oracle_is_the_fine_grained_version() {
        let cfg = small();
        let out = run_scenario(&cfg, &scenarios(&cfg)[0]);
        assert_eq!(out.scenario.name, "baseline");
        assert_eq!(out.oracle().mode, "original");
    }

    #[test]
    fn every_scenario_completes_in_every_mode() {
        let cfg = ChaosConfig { seed: 9, iters: 400, procs: 4 };
        for scenario in scenarios(&cfg) {
            let out = run_scenario(&cfg, &scenario);
            assert_eq!(out.statics.len(), VERSIONS.len(), "{}", scenario.name);
            assert!(out.dynamic.elapsed > Duration::ZERO, "{}", scenario.name);
        }
    }
}
