//! Representative-set selection harness: measure a parameterized policy
//! family, prune it, and prove the pruned build keeps the family's regret.
//!
//! Pipeline (all virtual-time, so every report and export is byte-identical
//! for any engine worker count and across reruns):
//!
//! 1. **Compile** the plasma application multi-versioned over the full
//!    [`Policy::family`] (≥10 policies; structural deduplication shares
//!    code between equivalent budgets, leaving the distinct versions).
//! 2. **Measure** every distinct version statically under a matrix of
//!    fault scenarios with the [`MetricsRegistry`] attached, reducing each
//!    run to per-scenario cells: the overhead share attributed to each
//!    *lock class* (mapped through the lock pool back to heap objects) and
//!    the excess elapsed time over the scenario's best version.
//! 3. **Cluster** the per-version cell vectors with the deterministic
//!    seeded k-medoids in [`dynfb_core::repset`] and keep one
//!    representative per cluster (≤ 4 by default).
//! 4. **Evaluate**: recompile with only the representatives' policies and
//!    run dynamic feedback under every scenario with both builds. The
//!    pruned build must stay within the configured factor of the full
//!    family's total time (it usually *wins*, since sampling cost is
//!    linear in the version count — the §5 model quantifies this in the
//!    report's pruning note).

use crate::engine::{Engine, Job};
use crate::report::Table;
use dynfb_apps::machine_config;
use dynfb_apps::plasma::{plasma_with_policies, PlasmaConfig, LOCK_CLASSES};
use dynfb_compiler::syncopt::Policy;
use dynfb_core::controller::ControllerConfig;
use dynfb_core::metrics::MetricsRegistry;
use dynfb_core::repset::{
    pruning_report, select_representatives, PolicyVector, RepSetConfig, Selection,
};
use dynfb_sim::{
    run_app_metered, run_app_ref, FaultKind, FaultPlan, RunConfig, SimApp, Target, Window,
};
use std::fmt::Write as _;
use std::time::Duration;

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct RepSetBenchConfig {
    /// Seed for fault plans and the k-medoids initialization.
    pub seed: u64,
    /// Simulated processors.
    pub procs: usize,
    /// The plasma instance every run simulates.
    pub app: PlasmaConfig,
    /// Representative-set size cap (the acceptance bar is ≤ 4).
    pub representatives: usize,
    /// Gate: the pruned build's total dynamic time across scenarios must
    /// stay within this factor of the full family's.
    pub gate_factor: f64,
}

impl Default for RepSetBenchConfig {
    fn default() -> Self {
        RepSetBenchConfig {
            seed: 42,
            procs: 8,
            app: PlasmaConfig::default(),
            representatives: 4,
            gate_factor: 1.10,
        }
    }
}

impl RepSetBenchConfig {
    /// A smaller instance for tests: same structure, less simulated work.
    #[must_use]
    pub fn quick() -> Self {
        RepSetBenchConfig {
            app: PlasmaConfig { cells: 12, movers: 32, steps: 4, iterations: 2, seed: 42 },
            ..RepSetBenchConfig::default()
        }
    }

    /// The full policy family the harness measures.
    #[must_use]
    pub fn family(&self) -> Vec<Policy> {
        Policy::family(LOCK_CLASSES)
    }
}

/// One named fault scenario of the measurement matrix.
#[derive(Debug, Clone)]
pub struct RepSetScenario {
    /// Scenario name (report row key).
    pub name: &'static str,
    /// Always-on fault plan applied to every run of the scenario.
    pub plan: FaultPlan,
}

/// Machine lock ids per lock class, read from a throwaway baseline run
/// (the heap layout is a pure function of the compile inputs, so every
/// later run places the same objects under the same locks).
fn class_lock_ids(cfg: &RepSetBenchConfig) -> Vec<Vec<usize>> {
    let mut app = plasma_with_policies(&cfg.app, vec![Policy::Original]);
    let mut run = RunConfig::fixed(cfg.procs, "original");
    run.machine = machine_config();
    run_app_ref(&mut app, &run).expect("layout probe run");
    let base = app.lock_pool_base().expect("setup assigns the lock pool");
    let mut per = vec![Vec::new(); LOCK_CLASSES];
    for (i, o) in app.heap().objects.iter().enumerate() {
        if let Some(ids) = per.get_mut(o.class) {
            ids.push(base + i);
        }
    }
    per
}

/// The measurement scenarios: a clean baseline, contention storms hitting
/// all locks / only class-0 (cell) locks / only class-1 (mover) locks, and
/// a half-machine slowdown. The class-targeted storms are what separate
/// per-class hybrid policies from the classic endpoints.
#[must_use]
pub fn scenarios(cfg: &RepSetBenchConfig) -> Vec<RepSetScenario> {
    let storm = |locks: Target| FaultKind::ContentionStorm {
        locks,
        cost_factor: 20.0,
        extra_hold: Duration::from_micros(10),
    };
    let class_ids = class_lock_ids(cfg);
    let half: Vec<usize> = (0..cfg.procs / 2).collect();
    vec![
        RepSetScenario { name: "baseline", plan: FaultPlan::new(cfg.seed) },
        RepSetScenario {
            name: "storm-all",
            plan: FaultPlan::new(cfg.seed).with_event(Window::always(), storm(Target::All)),
        },
        RepSetScenario {
            name: "storm-cells",
            plan: FaultPlan::new(cfg.seed)
                .with_event(Window::always(), storm(Target::Only(class_ids[0].clone()))),
        },
        RepSetScenario {
            name: "storm-movers",
            plan: FaultPlan::new(cfg.seed)
                .with_event(Window::always(), storm(Target::Only(class_ids[1].clone()))),
        },
        RepSetScenario {
            name: "slowdown",
            plan: FaultPlan::new(cfg.seed).with_event(
                Window::always(),
                FaultKind::Slowdown { procs: Target::Only(half), factor: 8.0 },
            ),
        },
    ]
}

/// Controller for the dynamic evaluation runs. `num_policies` is sized by
/// the runtime from each build's actual version count, which is the whole
/// point: the pruned build samples fewer versions per sampling phase.
#[must_use]
pub fn repset_controller() -> ControllerConfig {
    ControllerConfig {
        target_sampling: Duration::from_micros(300),
        target_production: Duration::from_millis(5),
        ..ControllerConfig::default()
    }
}

/// One static metered measurement: a version under a scenario.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// Total virtual execution time.
    pub elapsed: Duration,
    /// Synchronization overhead (locking + waiting) attributed to each
    /// lock class, normalized by elapsed time. Overhead accumulates across
    /// processors, so a heavily contended class can exceed 1.
    pub class_share: Vec<f64>,
}

/// Run one (version, scenario) static cell with the registry attached and
/// reduce it to a [`MeasuredCell`]. `policy_key` is any policy name the
/// version implements (versions are named by `+`-joining their policies).
fn measure_cell(
    cfg: &RepSetBenchConfig,
    policy_key: &str,
    scenario: &RepSetScenario,
) -> MeasuredCell {
    let mut app = plasma_with_policies(&cfg.app, cfg.family());
    let mut run = RunConfig::fixed(cfg.procs, policy_key).with_faults(scenario.plan.clone());
    run.machine = machine_config();
    let mut registry = MetricsRegistry::new();
    let report = run_app_metered(&mut app, &run, &mut registry).expect("repset measure run");
    let base = app.lock_pool_base().expect("setup assigns the lock pool");
    let elapsed = report.elapsed();
    let mut class_ns = [0u128; LOCK_CLASSES];
    for (id, m) in registry.locks().iter().enumerate() {
        if m.is_empty() {
            continue;
        }
        let Some(obj) = id.checked_sub(base) else { continue };
        let Some(o) = app.heap().objects.get(obj) else { continue };
        if let Some(ns) = class_ns.get_mut(o.class) {
            *ns += m.overhead().as_nanos();
        }
    }
    let total = elapsed.as_nanos().max(1);
    MeasuredCell {
        elapsed,
        class_share: class_ns.iter().map(|&ns| ns as f64 / total as f64).collect(),
    }
}

/// One dynamic evaluation run (full-family or pruned build) under a
/// scenario.
fn evaluate_run(
    cfg: &RepSetBenchConfig,
    policies: &[Policy],
    scenario: &RepSetScenario,
) -> Duration {
    let mut app = plasma_with_policies(&cfg.app, policies.to_vec());
    let mut run = RunConfig::dynamic(cfg.procs, repset_controller())
        .with_faults(scenario.plan.clone())
        .with_watchdog(8);
    run.machine = machine_config();
    run_app_ref(&mut app, &run).expect("repset evaluation run").elapsed()
}

/// Everything the harness produces in one sweep.
#[derive(Debug, Clone)]
pub struct RepSetReport {
    /// Rendered report (family, measurements, selection, evaluation).
    pub text: String,
    /// Just the selection table — the golden-file surface.
    pub selection_table: String,
    /// Deterministic JSON export.
    pub json: String,
    /// Distinct version names of the full-family build.
    pub versions: Vec<String>,
    /// The clustering outcome over those versions.
    pub selection: Selection,
    /// Policies the pruned build multi-versions.
    pub selected_policies: Vec<Policy>,
    /// Whether the pruned build stayed within the gate factor.
    pub gate_passed: bool,
}

fn micros(d: Duration) -> String {
    format!("{}", d.as_micros())
}

/// Run the full harness serially.
#[must_use]
pub fn repset_report(cfg: &RepSetBenchConfig) -> RepSetReport {
    repset_report_with(cfg, &Engine::new(1))
}

/// Run the full harness with measurement and evaluation cells scheduled on
/// `engine`. Results are reassembled in submission order and all quantities
/// are virtual-time, so the report is byte-identical for every worker
/// count.
///
/// # Panics
///
/// Panics if a simulation fails or the clustering input is degenerate —
/// the harness only builds valid configurations, so either is a bug.
#[must_use]
pub fn repset_report_with(cfg: &RepSetBenchConfig, engine: &Engine) -> RepSetReport {
    let family = cfg.family();
    let full_app = plasma_with_policies(&cfg.app, family.clone());
    let section = "advance";
    let versions: Vec<String> =
        full_app.sections()[section].versions.iter().map(|v| v.name.clone()).collect();
    // Any component policy identifies its version for a static run.
    let keys: Vec<String> = versions
        .iter()
        .map(|v| v.split('+').next().expect("non-empty version name").to_string())
        .collect();
    let scens = scenarios(cfg);

    // Wave 1: measure every (version, scenario) cell.
    let tasks: Vec<Job<'_, MeasuredCell>> = keys
        .iter()
        .flat_map(|key| {
            scens.iter().map(move |scenario| {
                let task: Job<'_, MeasuredCell> =
                    Box::new(move || measure_cell(cfg, key, scenario));
                task
            })
        })
        .collect();
    let cells: Vec<MeasuredCell> = engine.run(tasks).into_iter().map(|t| t.value).collect();
    let cell = |vi: usize, si: usize| &cells[vi * scens.len() + si];

    // Per-scenario oracle (best static elapsed) for the excess dimension
    // and the evaluation regret.
    let oracle: Vec<Duration> = (0..scens.len())
        .map(|si| (0..versions.len()).map(|vi| cell(vi, si).elapsed).min().expect("versions"))
        .collect();

    // Vectors: per scenario, the per-class overhead shares plus the excess
    // time over the scenario oracle.
    let vectors: Vec<PolicyVector> = versions
        .iter()
        .enumerate()
        .map(|(vi, name)| {
            let mut dims = Vec::new();
            for (si, best) in oracle.iter().enumerate() {
                let c = cell(vi, si);
                dims.extend(c.class_share.iter().copied());
                let excess = c.elapsed.as_nanos() as f64 / best.as_nanos().max(1) as f64;
                dims.push(excess - 1.0);
            }
            PolicyVector { name: name.clone(), cells: dims }
        })
        .collect();

    let selection = select_representatives(
        &vectors,
        &RepSetConfig { representatives: cfg.representatives, seed: cfg.seed, max_rounds: 64 },
    )
    .expect("clustering input is well-formed");

    // Map each representative version back to the first family policy that
    // compiles to it; the pruned build multi-versions exactly those.
    let selected_policies: Vec<Policy> = selection
        .medoids
        .iter()
        .map(|&vi| {
            *family
                .iter()
                .find(|p| full_app.version_for_policy(section, &p.name()) == Some(vi))
                .expect("every version comes from a family policy")
        })
        .collect();

    // Wave 2: dynamic evaluation, full family vs pruned build.
    let builds: [&[Policy]; 2] = [&family, &selected_policies];
    let eval_tasks: Vec<Job<'_, Duration>> = builds
        .iter()
        .flat_map(|policies| {
            scens.iter().map(move |scenario| {
                let task: Job<'_, Duration> =
                    Box::new(move || evaluate_run(cfg, policies, scenario));
                task
            })
        })
        .collect();
    let evals: Vec<Duration> = engine.run(eval_tasks).into_iter().map(|t| t.value).collect();
    let (full_dyn, subset_dyn) = evals.split_at(scens.len());
    let total = |ds: &[Duration]| ds.iter().sum::<Duration>();
    let (full_total, subset_total) = (total(full_dyn), total(subset_dyn));
    let gate_passed =
        subset_total.as_nanos() as f64 <= cfg.gate_factor * full_total.as_nanos() as f64;

    // ---- Rendering ----
    let mut text = String::new();
    let _ = writeln!(
        text,
        "repset: {} policies -> {} versions -> {} representatives on plasma \
         ({} cells, {} movers, {} steps x {} iterations, {} procs, seed {})\n",
        family.len(),
        versions.len(),
        selection.medoids.len(),
        cfg.app.cells,
        cfg.app.movers,
        cfg.app.steps,
        cfg.app.iterations,
        cfg.procs,
        cfg.seed
    );

    // Family table: policy -> compiled version, with per-version code size.
    let sizes = full_app.version_code_sizes();
    let size_of = |version: &str| {
        sizes
            .iter()
            .find(|(s, v, _)| s == section && v == version)
            .map_or(0, |(_, _, bytes)| *bytes)
    };
    let mut t = Table::new(
        "Policy family -> compiled versions (structural deduplication)",
        &["policy", "version", "code bytes"],
    );
    for p in &family {
        let vi = full_app.version_for_policy(section, &p.name()).expect("family policy");
        t.row(vec![p.name(), versions[vi].clone(), size_of(&versions[vi]).to_string()]);
    }
    let full_bytes: usize = versions.iter().map(|v| size_of(v)).sum();
    let subset_bytes: usize = selection.medoids.iter().map(|&vi| size_of(&versions[vi])).sum();
    t.note(format!(
        "multi-versioned code: {full_bytes} bytes full family, {subset_bytes} bytes pruned"
    ));
    text.push_str(&t.to_console());
    text.push('\n');

    // Measurement matrix.
    let mut t = Table::new(
        "Measured overhead matrix (per scenario: lock-class overhead shares, excess vs oracle)",
        &["version", "scenario", "cell share", "mover share", "elapsed (us)", "excess"],
    );
    for (vi, name) in versions.iter().enumerate() {
        for (si, s) in scens.iter().enumerate() {
            let c = cell(vi, si);
            let excess = c.elapsed.as_nanos() as f64 / oracle[si].as_nanos().max(1) as f64 - 1.0;
            t.row(vec![
                name.clone(),
                s.name.to_string(),
                format!("{:.4}", c.class_share[0]),
                format!("{:.4}", c.class_share[1]),
                micros(c.elapsed),
                format!("{excess:.4}"),
            ]);
        }
    }
    text.push_str(&t.to_console());
    text.push('\n');

    // Selection table (the golden surface).
    let mut t = Table::new(
        "Representative selection (seeded k-medoids over measured overhead vectors)",
        &["version", "cluster", "representative", "distance to medoid"],
    );
    for (vi, name) in versions.iter().enumerate() {
        let cluster = selection.assignment[vi];
        let medoid = selection.medoids[cluster];
        let d = dynfb_core::repset::distance(&vectors[vi].cells, &vectors[medoid].cells);
        t.row(vec![
            name.clone(),
            cluster.to_string(),
            if medoid == vi { "yes" } else { "" }.to_string(),
            format!("{d:.4}"),
        ]);
    }
    t.note(format!(
        "k-medoids: seed {}, {} round(s), total distance {:.4}",
        cfg.seed, selection.rounds, selection.total_distance
    ));
    let pruning = pruning_report(
        repset_controller().target_sampling.as_secs_f64(),
        0.065,
        versions.len(),
        selection.medoids.len(),
    )
    .expect("valid pruning parameters");
    t.note(format!(
        "sampling cost S*N per cycle: {:.1} ms full -> {:.1} ms pruned ({:.2}x); \
         optimal production interval {:.2} s -> {:.2} s",
        pruning.sampling_full * 1e3,
        pruning.sampling_selected * 1e3,
        pruning.sampling_ratio,
        pruning.p_opt_full,
        pruning.p_opt_selected,
    ));
    let selection_table = t.to_console();
    text.push_str(&selection_table);
    text.push('\n');

    // Evaluation table.
    let mut t = Table::new(
        "Dynamic evaluation: full family vs pruned representative build",
        &[
            "scenario",
            "oracle (us)",
            "full dynamic (us)",
            "pruned dynamic (us)",
            "full regret (us)",
            "pruned regret (us)",
        ],
    );
    for (si, s) in scens.iter().enumerate() {
        let regret = |d: Duration| d.as_micros() as i128 - oracle[si].as_micros() as i128;
        t.row(vec![
            s.name.to_string(),
            micros(oracle[si]),
            micros(full_dyn[si]),
            micros(subset_dyn[si]),
            format!("{:+}", regret(full_dyn[si])),
            format!("{:+}", regret(subset_dyn[si])),
        ]);
    }
    t.note(format!(
        "totals: full {} us, pruned {} us; gate pruned <= {:.2}x full: {}",
        micros(full_total),
        micros(subset_total),
        cfg.gate_factor,
        if gate_passed { "PASS" } else { "FAIL" }
    ));
    text.push_str(&t.to_console());

    // ---- JSON export ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"repset\",\n  \"app\": \"plasma\",\n");
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "  \"procs\": {},", cfg.procs);
    let _ = writeln!(json, "  \"family_policies\": {},", family.len());
    let quoted =
        |names: &[String]| names.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ");
    let _ = writeln!(json, "  \"versions\": [{}],", quoted(&versions));
    let medoid_names: Vec<String> =
        selection.medoids.iter().map(|&vi| versions[vi].clone()).collect();
    let _ = writeln!(json, "  \"representatives\": [{}],", quoted(&medoid_names));
    let policy_names: Vec<String> = selected_policies.iter().map(|p| p.name()).collect();
    let _ = writeln!(json, "  \"selected_policies\": [{}],", quoted(&policy_names));
    let _ = writeln!(
        json,
        "  \"assignment\": [{}],",
        selection.assignment.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"total_distance\": {:.6},", selection.total_distance);
    let _ = writeln!(json, "  \"code_bytes_full\": {full_bytes},");
    let _ = writeln!(json, "  \"code_bytes_pruned\": {subset_bytes},");
    let _ = writeln!(json, "  \"sampling_ratio\": {:.6},", pruning.sampling_ratio);
    json.push_str("  \"evaluation\": [\n");
    for (si, s) in scens.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"oracle_us\": {}, \"full_us\": {}, \
             \"pruned_us\": {}}}{}",
            s.name,
            oracle[si].as_micros(),
            full_dyn[si].as_micros(),
            subset_dyn[si].as_micros(),
            if si + 1 < scens.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"full_total_us\": {},", full_total.as_micros());
    let _ = writeln!(json, "  \"pruned_total_us\": {},", subset_total.as_micros());
    let _ = writeln!(json, "  \"gate_factor\": {:.2},", cfg.gate_factor);
    let _ = writeln!(json, "  \"gate_passed\": {gate_passed}");
    json.push_str("}\n");

    RepSetReport {
        text,
        selection_table,
        json,
        versions,
        selection,
        selected_policies,
        gate_passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_selects_a_small_representative_set() {
        let cfg = RepSetBenchConfig::quick();
        let report = repset_report(&cfg);
        assert!(cfg.family().len() >= 10);
        assert!(report.versions.len() >= 5, "{:?}", report.versions);
        assert!(report.selection.medoids.len() <= 4);
        assert_eq!(report.selected_policies.len(), report.selection.medoids.len());
        assert!(report.gate_passed, "{}", report.text);
    }

    #[test]
    fn scenarios_target_real_lock_classes() {
        let cfg = RepSetBenchConfig::quick();
        let scens = scenarios(&cfg);
        assert_eq!(scens.len(), 5);
        let names: Vec<&str> = scens.iter().map(|s| s.name).collect();
        assert_eq!(names, ["baseline", "storm-all", "storm-cells", "storm-movers", "slowdown"]);
    }
}
