//! Rehabilitation harness: permanent quarantine vs exponential backoff
//! under repeated *transient* storms.
//!
//! The chaos matrix (`crate::chaos`) measures how dynamic feedback adapts
//! to faults; this harness measures how the controller's **health state
//! machine** recovers from them. The storm it injects is deliberately
//! transient: a frozen controller clock that strikes twice — each time
//! exactly inside a sampling interval of the clean-environment winner
//! (`original`) — and then clears for good. Both strikes trip the sampling
//! watchdog, so `original` is escalated `healthy → suspect → quarantined`
//! even though nothing is wrong with the policy itself.
//!
//! Under [`RehabPolicy::Permanent`] the controller never trusts `original`
//! again and finishes the run on the second-best survivor. Under
//! [`RehabPolicy::Backoff`] the quarantine expires after a bounded number
//! of phases, a probe re-measures `original`, and production returns to
//! the true optimum — strictly lower regret against the static oracle.
//! [`rehab_report`] runs both side by side and renders the regret table
//! CI archives (byte-identical on every invocation).
//!
//! Storm windows are not hand-tuned constants: [`storm_plan`] replays the
//! deterministic simulation, reads the next sampling-interval start of the
//! target policy from the [`SampleRecord`]s, and drops a frozen-clock
//! window on it — so the plan stays surgical even if controller timing
//! shifts. [`SampleRecord`]: dynfb_sim::SampleRecord

use crate::chaos::{self, ChaosApp, ChaosConfig, ModeOutcome, VERSIONS};
use crate::report::Table;
use dynfb_core::controller::{ControllerConfig, RehabPolicy};
use dynfb_core::metrics::MetricsRegistry;
use dynfb_sim::{
    run_app, run_app_metered, AppReport, FaultKind, FaultPlan, RunConfig, SimTime, Window,
};
use std::fmt::Write as _;
use std::time::Duration;

/// Watchdog factor for rehab runs: abort a sampling interval stuck past
/// `8 x target_sampling` (4 ms of wall time here).
const WATCHDOG: u32 = 8;
/// Offset into the target sampling interval at which a storm window
/// freezes the clock: late enough to land inside the interval, early
/// enough that the interval cannot have completed.
const STRIKE_OFFSET: Duration = Duration::from_micros(100);
/// Storm window width: past the watchdog budget, so the frozen interval is
/// aborted rather than merely stretched.
const STRIKE_WIDTH: Duration = Duration::from_millis(6);

/// Controller for rehab runs: the chaos controller with a shorter
/// production interval (more phases per run, so backoff expiry and the
/// post-rehabilitation payoff both fit comfortably) and the given
/// rehabilitation policy.
#[must_use]
pub fn rehab_controller(rehab: RehabPolicy) -> ControllerConfig {
    ControllerConfig {
        rehab,
        target_production: Duration::from_millis(10),
        ..chaos::chaos_controller()
    }
}

/// The backoff flavour the harness compares against
/// [`RehabPolicy::Permanent`]: shortest base, so a quarantined policy is
/// re-probed after one clean phase.
#[must_use]
pub fn backoff() -> RehabPolicy {
    RehabPolicy::Backoff { base: 1, max: 8, seed: 0 }
}

/// A dynamic rehab run: harness measurements plus the health counters the
/// sim driver exported.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Full simulation report.
    pub report: AppReport,
    /// Metrics registry with `policy_quarantined` / `policy_rehabilitated`
    /// and friends.
    pub registry: MetricsRegistry,
}

/// The exact [`RunConfig`] a dynamic rehab run executes: the chaos machine
/// and workload under [`rehab_controller`] with the given plan and the
/// rehab watchdog. Public so tests can replay a run byte for byte with a
/// different observation sink attached (the sinks never perturb the
/// simulation).
#[must_use]
pub fn dynamic_run_config(cfg: &ChaosConfig, rehab: RehabPolicy, plan: FaultPlan) -> RunConfig {
    let mut run = RunConfig::dynamic(cfg.procs, rehab_controller(rehab))
        .with_faults(plan)
        .with_watchdog(WATCHDOG);
    run.machine = chaos::chaos_machine();
    run
}

/// Run the chaos workload under dynamic feedback with `rehab` and `plan`.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_dynamic(cfg: &ChaosConfig, rehab: RehabPolicy, plan: FaultPlan) -> DynamicRun {
    let run = dynamic_run_config(cfg, rehab, plan);
    let mut registry = MetricsRegistry::new();
    let report =
        run_app_metered(ChaosApp::new(cfg.iters), &run, &mut registry).expect("rehab dynamic run");
    DynamicRun { report, registry }
}

/// Run the chaos workload under static policy `i` with `plan`.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_static(cfg: &ChaosConfig, i: usize, plan: FaultPlan) -> ModeOutcome {
    let mut run = RunConfig::fixed(cfg.procs, VERSIONS[i]).with_faults(plan);
    run.machine = chaos::chaos_machine();
    chaos::mode_outcome(VERSIONS[i], &run_app(ChaosApp::new(cfg.iters), &run).expect("static run"))
}

/// Start of the first *completed* sampling interval of `target` beginning
/// at or after `after`: the start is the previous record's completion time
/// (or the section start), which is exactly when the driver re-based the
/// controller's interval clock.
fn interval_start_of(report: &AppReport, target: usize, after: Duration) -> Option<Duration> {
    for exec in report.section("work") {
        let mut prev = exec.start;
        for r in &exec.records {
            let start = prev.saturating_since(SimTime::ZERO);
            if r.phase.is_sampling() && r.version == target && !r.partial && start >= after {
                return Some(start);
            }
            prev = r.at;
        }
    }
    None
}

/// Build the storm plan by deterministic replay: for each entry in `hits`,
/// re-run the simulation under the plan so far, locate the next clean
/// sampling interval of that policy after the previous window, and freeze
/// the controller clock across it (past the watchdog budget, so the
/// interval is aborted and the policy blamed). `hits = [0, 0]` therefore
/// escalates policy 0 `suspect → quarantined` with no collateral strikes;
/// `[0, 0, 1, 1, 2, 2]` quarantines the entire spectrum.
///
/// The probing runs use [`RehabPolicy::Permanent`], whose timeline is
/// identical to any backoff flavour up to the first probe — which can only
/// happen after the final window — so one plan serves every rehab mode.
///
/// # Panics
///
/// Panics if the run ends before all hits are placed (the workload must be
/// long enough for `hits.len()` sampling/production cycles past
/// `start_after`).
#[must_use]
pub fn storm_plan(cfg: &ChaosConfig, hits: &[usize], start_after: Duration) -> FaultPlan {
    let mut plan = FaultPlan::new(cfg.seed);
    let mut horizon = start_after;
    for &target in hits {
        let probe = run_dynamic(cfg, RehabPolicy::Permanent, plan.clone());
        let start = interval_start_of(&probe.report, target, horizon).unwrap_or_else(|| {
            panic!("no clean sampling interval of policy {target} after {horizon:?}")
        });
        let open = start + STRIKE_OFFSET;
        plan = plan.with_event(
            Window::new(open, open + STRIKE_WIDTH),
            FaultKind::TimerDrift { ppm: -1_000_000 },
        );
        horizon = open + STRIKE_WIDTH;
    }
    plan
}

/// One dynamic mode's row in the regret table.
#[derive(Debug, Clone)]
pub struct RehabOutcome {
    /// Elapsed/waiting measurements, labelled with the rehab mode.
    pub outcome: ModeOutcome,
    /// `policy_quarantined` events over the run.
    pub quarantined: u64,
    /// `policy_probed` events over the run.
    pub probed: u64,
    /// `policy_rehabilitated` events over the run.
    pub rehabilitated: u64,
}

fn rehab_outcome(label: &str, run: &DynamicRun) -> RehabOutcome {
    RehabOutcome {
        outcome: chaos::mode_outcome(label, &run.report),
        quarantined: run.registry.counter_value("policy_quarantined"),
        probed: run.registry.counter_value("policy_probed"),
        rehabilitated: run.registry.counter_value("policy_rehabilitated"),
    }
}

/// Everything the rehabilitation harness produces in one sweep.
#[derive(Debug, Clone)]
pub struct RehabReport {
    /// Rendered regret table (deterministic).
    pub text: String,
    /// Static outcomes under the storm plan, in [`VERSIONS`] order.
    pub statics: Vec<ModeOutcome>,
    /// Dynamic feedback with permanent quarantine.
    pub permanent: RehabOutcome,
    /// Dynamic feedback with backoff rehabilitation.
    pub backoff: RehabOutcome,
    /// Permanent quarantine's regret vs the static oracle, in µs.
    pub permanent_regret: i128,
    /// Backoff rehabilitation's regret vs the static oracle, in µs.
    pub backoff_regret: i128,
}

/// Run the full comparison: three statics plus both rehab modes under the
/// same two-strike transient storm. Deterministic: the same `cfg` yields a
/// byte-identical `text`.
///
/// # Panics
///
/// Panics if a simulation fails or the workload is too short for the
/// storm (see [`storm_plan`]).
#[must_use]
pub fn rehab_report(cfg: &ChaosConfig) -> RehabReport {
    let plan = storm_plan(cfg, &[0, 0], cfg.onset());
    let statics: Vec<ModeOutcome> =
        (0..VERSIONS.len()).map(|i| run_static(cfg, i, plan.clone())).collect();
    let permanent =
        rehab_outcome("dynamic-permanent", &run_dynamic(cfg, RehabPolicy::Permanent, plan.clone()));
    let backoff_run = rehab_outcome("dynamic-backoff", &run_dynamic(cfg, backoff(), plan));
    let oracle = statics.iter().min_by_key(|m| m.elapsed).expect("static modes ran").clone();
    let regret =
        |m: &ModeOutcome| m.elapsed.as_micros() as i128 - oracle.elapsed.as_micros() as i128;

    let mut t = Table::new(
        &format!(
            "Rehabilitation regret under a two-strike transient storm ({} iterations, {} procs)",
            cfg.iters, cfg.procs
        ),
        &["mode", "elapsed (us)", "regret vs oracle (us)", "quarantines", "probes", "rehabs"],
    );
    for m in &statics {
        t.row(vec![
            m.mode.clone(),
            m.elapsed.as_micros().to_string(),
            format!("{:+}", regret(m)),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    for r in [&permanent, &backoff_run] {
        t.row(vec![
            r.outcome.mode.clone(),
            r.outcome.elapsed.as_micros().to_string(),
            format!("{:+}", regret(&r.outcome)),
            r.quarantined.to_string(),
            r.probed.to_string(),
            r.rehabilitated.to_string(),
        ]);
    }
    let permanent_regret = regret(&permanent.outcome);
    let backoff_regret = regret(&backoff_run.outcome);
    t.note(format!("oracle (best static): {} at {} us", oracle.mode, oracle.elapsed.as_micros()));
    t.note(format!(
        "backoff rehabilitation saves {} us of regret over permanent quarantine",
        permanent_regret - backoff_regret
    ));

    let mut text = String::new();
    let _ = writeln!(
        text,
        "rehabilitation harness: permanent vs backoff quarantine (seed {})\n",
        cfg.seed
    );
    text.push_str(&t.to_console());
    RehabReport { text, statics, permanent, backoff: backoff_run, permanent_regret, backoff_regret }
}

/// Default configuration for the rehab harness: long enough past the storm
/// for the backoff probe to fire *and* for the rehabilitated optimum to
/// repay the probing cost.
#[must_use]
pub fn default_config() -> ChaosConfig {
    ChaosConfig { iters: 20_000, ..ChaosConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_plan_strikes_abort_only_the_target_policy() {
        let cfg = default_config();
        let plan = storm_plan(&cfg, &[0, 0], cfg.onset());
        let run = run_dynamic(&cfg, RehabPolicy::Permanent, plan);
        let aborted: Vec<usize> = run
            .report
            .section("work")
            .flat_map(|e| e.records.iter())
            .filter(|r| r.phase.is_sampling() && r.partial)
            .map(|r| r.version)
            .collect();
        assert_eq!(aborted, vec![0, 0], "exactly two strikes, both on policy 0");
        assert_eq!(run.registry.counter_value("policy_suspected"), 1);
        assert_eq!(run.registry.counter_value("policy_quarantined"), 1);
        assert_eq!(run.registry.counter_value("watchdog_soft_failures"), 2);
    }

    #[test]
    fn backoff_rehabilitation_beats_permanent_quarantine_on_transient_storms() {
        let report = rehab_report(&default_config());
        // The storm quarantines the clean-environment winner in both
        // modes; only backoff re-probes and returns to it.
        assert_eq!(report.permanent.quarantined, 1);
        assert_eq!(report.permanent.rehabilitated, 0);
        assert!(report.backoff.probed >= 1, "backoff must re-probe");
        assert_eq!(report.backoff.rehabilitated, 1);
        // ...which is worth real time: strictly lower regret vs the
        // static oracle (the acceptance criterion of this harness).
        assert!(
            report.backoff_regret < report.permanent_regret,
            "backoff regret {} must be strictly below permanent regret {}",
            report.backoff_regret,
            report.permanent_regret
        );
    }
}
