//! Parallel experiment engine with deterministic aggregation.
//!
//! The full reproduction (every table and figure, the ablations, the chaos
//! matrix) decomposes into independent jobs — one simulated run each. The
//! engine executes a job list across host threads and returns results **in
//! the order the jobs were submitted**, so any aggregation built on top is
//! byte-identical regardless of thread count or scheduling.
//!
//! Determinism contract:
//!
//! * every job is a pure function of its inputs (the simulator is
//!   deterministic, and jobs share no mutable state);
//! * results are slotted by submission index, never by completion order;
//! * host wall-clock time is measured per job but kept out of canonical
//!   artifacts (`EXPERIMENTS.md`, `BENCH_RESULTS.json`); it is reported
//!   separately where run-to-run variation is expected.
//!
//! The scheduler is a self-balancing shared counter: each worker claims the
//! next unclaimed job when it goes idle, which gives the same dynamic load
//! balancing as work stealing for this workload shape (a flat list of
//! independent jobs of uneven size) without any external dependency.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A job result plus the host wall-clock time the job took.
#[derive(Debug)]
pub struct Timed<T> {
    /// What the job returned.
    pub value: T,
    /// Host wall-clock duration of the job body.
    pub wall: Duration,
}

/// The parallel job runner. `jobs` worker threads, deterministic output
/// order.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    jobs: usize,
}

/// A boxed unit of work submitted to [`Engine::run`]; may borrow from the
/// caller's stack for the `'env` lifetime.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

impl Engine {
    /// An engine with `jobs` workers (clamped to at least one).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Engine { jobs: jobs.max(1) }
    }

    /// Number of hardware threads on this host (at least one).
    #[must_use]
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every task and return results in submission order.
    ///
    /// With one worker (or at most one task) everything runs inline on the
    /// calling thread; otherwise scoped worker threads claim tasks off a
    /// shared counter. Tasks may borrow from the caller's stack (`'env`).
    ///
    /// # Panics
    ///
    /// Propagates the first panicking task (via scope join).
    pub fn run<'env, T: Send>(&self, tasks: Vec<Job<'env, T>>) -> Vec<Timed<T>> {
        if self.jobs == 1 || tasks.len() <= 1 {
            return tasks
                .into_iter()
                .map(|task| {
                    let started = Instant::now();
                    let value = task();
                    Timed { value, wall: started.elapsed() }
                })
                .collect();
        }
        let n = tasks.len();
        let queue: Vec<Mutex<Option<Job<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<Timed<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task =
                        queue[i].lock().expect("job queue").take().expect("job claimed once");
                    let started = Instant::now();
                    let value = task();
                    *slots[i].lock().expect("result slot") =
                        Some(Timed { value, wall: started.elapsed() });
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("result slot").expect("every job ran"))
            .collect()
    }
}

/// A name filter for experiments and chaos scenarios: comma-separated
/// patterns, each either a plain substring or (when it contains `*`) a
/// whole-string wildcard match.
#[derive(Debug, Clone)]
pub struct Filter {
    patterns: Vec<String>,
}

impl Filter {
    /// Parse a comma-separated pattern list. Empty segments are ignored;
    /// an entirely empty spec matches everything.
    #[must_use]
    pub fn new(spec: &str) -> Self {
        Filter {
            patterns: spec
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(ToString::to_string)
                .collect(),
        }
    }

    /// Whether `name` matches any pattern.
    #[must_use]
    pub fn matches(&self, name: &str) -> bool {
        self.patterns.is_empty()
            || self.patterns.iter().any(|p| {
                if p.contains('*') {
                    wildcard(p, name)
                } else {
                    name.contains(p.as_str())
                }
            })
    }
}

/// Whole-string wildcard match where `*` matches any (possibly empty)
/// substring. No external regex engine is available in this build, and
/// globs cover every matrix-slicing use case the harness has.
fn wildcard(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    let (first, rest) = parts.split_first().expect("split yields at least one part");
    let Some(mut remaining) = text.strip_prefix(first) else {
        return false;
    };
    let Some((last, middles)) = rest.split_last() else {
        return text == *first;
    };
    for part in middles {
        match remaining.find(part) {
            Some(at) => remaining = &remaining[at + part.len()..],
            None => return false,
        }
    }
    remaining.ends_with(last)
}

/// Parsed command-line options shared by the `experiments` and `chaos`
/// binaries.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Worker thread count (`--jobs N`; default: all host threads).
    pub jobs: usize,
    /// Optional experiment/scenario filter (`--filter PAT[,PAT...]`).
    pub filter: Option<Filter>,
    /// Run the reduced matrix (`--quick`).
    pub quick: bool,
    /// Optional seed (`--seed N`, or a bare integer argument).
    pub seed: Option<u64>,
}

/// Parse CLI arguments. On `--help` prints `usage` and exits 0; on a
/// malformed argument prints the error plus `usage` and exits 2.
#[must_use]
pub fn parse_cli(args: impl Iterator<Item = String>, usage: &str) -> CliOptions {
    match try_parse_cli(args) {
        Ok(None) => {
            println!("{usage}");
            std::process::exit(0);
        }
        Ok(Some(opts)) => opts,
        Err(err) => {
            eprintln!("error: {err}\n{usage}");
            std::process::exit(2);
        }
    }
}

/// Fallible CLI parsing; `Ok(None)` means `--help` was requested.
///
/// # Errors
///
/// Returns a message for unknown flags or unparsable values.
pub fn try_parse_cli(args: impl Iterator<Item = String>) -> Result<Option<CliOptions>, String> {
    let mut opts =
        CliOptions { jobs: Engine::host_parallelism(), filter: None, quick: false, seed: None };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--quick" => opts.quick = true,
            "--jobs" | "-j" => {
                let v = take_value(&flag, inline, &mut args)?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--filter" | "-f" => {
                let v = take_value(&flag, inline, &mut args)?;
                opts.filter = Some(Filter::new(&v));
            }
            "--seed" => {
                let v = take_value(&flag, inline, &mut args)?;
                opts.seed = Some(
                    v.parse::<u64>().map_err(|_| format!("--seed expects a number, got {v:?}"))?,
                );
            }
            other => {
                // Back-compat: `chaos 42` took the seed positionally.
                if let Ok(seed) = other.parse::<u64>() {
                    opts.seed = Some(seed);
                } else {
                    return Err(format!("unknown argument {other:?}"));
                }
            }
        }
    }
    Ok(Some(opts))
}

fn take_value(
    flag: &str,
    inline: Option<String>,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
) -> Result<String, String> {
    inline.or_else(|| args.next()).ok_or_else(|| format!("{flag} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 7] {
            let engine = Engine::new(jobs);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                        // Uneven job sizes exercise out-of-order completion.
                        std::thread::sleep(Duration::from_micros(((i as u64 * 7) % 5) * 50));
                        i * i
                    });
                    f
                })
                .collect();
            let out = engine.run(tasks);
            let values: Vec<usize> = out.iter().map(|t| t.value).collect();
            let expect: Vec<usize> = (0..32).map(|i| i * i).collect();
            assert_eq!(values, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let data: Vec<u64> = (0..100).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..4)
            .map(|c| {
                let data = &data;
                let f: Box<dyn FnOnce() -> u64 + Send + '_> =
                    Box::new(move || data.iter().filter(|v| *v % 4 == c).sum());
                f
            })
            .collect();
        let out = Engine::new(3).run(tasks);
        let total: u64 = out.iter().map(|t| t.value).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn filter_substring_and_wildcards() {
        let f = Filter::new("table02");
        assert!(f.matches("table02-bh-times"));
        assert!(!f.matches("table03-bh-locking"));

        let f = Filter::new("table0*-bh-*");
        assert!(f.matches("table02-bh-times"));
        assert!(f.matches("table03-bh-locking"));
        assert!(!f.matches("table13-water-sweep"));
        assert!(!f.matches("xtable02-bh-times"));

        let f = Filter::new("water,string");
        assert!(f.matches("table07-water-times"));
        assert!(f.matches("string-results"));
        assert!(!f.matches("table02-bh-times"));

        assert!(Filter::new("").matches("anything"));
        assert!(Filter::new("*").matches("anything"));
    }

    #[test]
    fn wildcard_edge_cases() {
        assert!(wildcard("abc", "abc"));
        assert!(!wildcard("abc", "abcd"));
        assert!(wildcard("a*c", "abbbc"));
        assert!(wildcard("a*b*c", "aXbYc"));
        assert!(!wildcard("a*b*c", "acb"));
        assert!(wildcard("*", ""));
        // The suffix must not reuse characters consumed by the prefix.
        assert!(!wildcard("ab*ba", "aba"));
    }

    #[test]
    fn cli_parses_flags_and_positional_seed() {
        let parse =
            |args: &[&str]| try_parse_cli(args.iter().map(ToString::to_string)).unwrap().unwrap();
        let o = parse(&["--jobs", "3", "--filter", "water*", "--quick"]);
        assert_eq!(o.jobs, 3);
        assert!(o.quick);
        assert!(o.filter.unwrap().matches("water-x"));

        let o = parse(&["--jobs=2", "--seed=9"]);
        assert_eq!((o.jobs, o.seed), (2, Some(9)));

        let o = parse(&["17"]);
        assert_eq!(o.seed, Some(17));

        assert!(try_parse_cli(["--jobs", "zero"].iter().map(ToString::to_string)).is_err());
        assert!(try_parse_cli(["--bogus"].iter().map(ToString::to_string)).is_err());
        assert!(try_parse_cli(["--jobs", "0"].iter().map(ToString::to_string)).is_err());
        assert!(try_parse_cli(["-h"].iter().map(ToString::to_string)).unwrap().is_none());
    }
}
