//! # dynfb-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation at scaled
//! problem sizes. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` (written by the `experiments` binary) for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod experiments;
pub mod explain;
pub mod profile;
pub mod rehab;
pub mod report;
pub mod repset;
pub mod trace;
