//! The experiment implementations behind every table and figure.
//!
//! Each function regenerates one table or figure of the paper (at scaled
//! problem sizes — the shapes, not the absolute numbers, are the claim
//! being reproduced). The `experiments` binary runs everything and writes
//! `EXPERIMENTS.md`; the per-table binaries print single tables.

use crate::report::{millis, secs, Table};
use dynfb_apps::{
    barnes_hut, machine_config, run_dynamic, run_fixed, string_app, water, BarnesHutConfig,
    StringConfig, WaterConfig,
};
use dynfb_compiler::CompiledApp;
use dynfb_core::controller::ControllerConfig;
use dynfb_core::theory::Analysis;
use dynfb_sim::{run_app, run_app_ref, AppReport, RunConfig};
use std::time::Duration;

/// Processor counts swept by the execution-time experiments (the paper's
/// Tables 2 and 7 use 1–16 processors on DASH).
pub const PROCS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// The static policies, in sampling order, plus display names.
pub const POLICIES: [(&str, &str); 3] =
    [("original", "Original"), ("bounded", "Bounded"), ("aggressive", "Aggressive")];

/// One benchmark application: how to build it and which parallel section
/// its detailed experiments target.
pub struct AppSpec {
    /// Display name.
    pub name: &'static str,
    /// Builder (each run needs a fresh app).
    pub build: Box<dyn Fn() -> CompiledApp>,
    /// The computationally intensive section (FORCES / INTERF / POTENG /
    /// trace_rays) used for the per-section experiments.
    pub main_section: &'static str,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppSpec({})", self.name)
    }
}

/// The benchmark-scale Barnes-Hut instance.
#[must_use]
pub fn bh_spec() -> AppSpec {
    AppSpec {
        name: "Barnes-Hut",
        build: Box::new(|| {
            barnes_hut(&BarnesHutConfig { bodies: 1024, steps: 2, ..BarnesHutConfig::default() })
        }),
        main_section: "forces",
    }
}

/// The benchmark-scale Water instance.
#[must_use]
pub fn water_spec() -> AppSpec {
    AppSpec {
        name: "Water",
        build: Box::new(|| {
            water(&WaterConfig { molecules: 192, steps: 2, ..WaterConfig::default() })
        }),
        main_section: "poteng",
    }
}

/// The benchmark-scale String instance.
#[must_use]
pub fn string_spec() -> AppSpec {
    AppSpec {
        name: "String",
        build: Box::new(|| {
            string_app(&StringConfig {
                nx: 32,
                nz: 32,
                rays: 384,
                steps_per_ray: 48,
                iterations: 2,
                ..StringConfig::default()
            })
        }),
        main_section: "trace_rays",
    }
}

/// All three applications.
#[must_use]
pub fn all_specs() -> Vec<AppSpec> {
    vec![bh_spec(), water_spec(), string_spec()]
}

/// The dynamic-feedback controller used for benchmark runs: 1 ms target
/// sampling intervals (small relative to our scaled section lengths, as
/// the paper's 10 ms was to theirs) and a production interval long enough
/// that each section execution is one sampling phase plus one production
/// phase.
#[must_use]
pub fn bench_controller() -> ControllerConfig {
    ControllerConfig {
        num_policies: 3,
        target_sampling: Duration::from_millis(1),
        target_production: Duration::from_secs(100),
        ..ControllerConfig::default()
    }
}

fn run_static(spec: &AppSpec, procs: usize, policy: &str) -> AppReport {
    run_app((spec.build)(), &run_fixed(procs, policy)).expect("simulation runs")
}

fn run_dyn(spec: &AppSpec, procs: usize, ctl: ControllerConfig) -> AppReport {
    run_app((spec.build)(), &run_dynamic(procs, ctl)).expect("simulation runs")
}

fn run_dyn_span(spec: &AppSpec, procs: usize, ctl: ControllerConfig) -> AppReport {
    let mut cfg = run_dynamic(procs, ctl);
    cfg.span_intervals = true;
    run_app((spec.build)(), &cfg).expect("simulation runs")
}

/// Table 1: executable code sizes (bytes) for each application.
#[must_use]
pub fn table_code_sizes() -> Table {
    let mut t = Table::new(
        "Table 1: Executable Code Sizes (bytes of generated IR)",
        &["Application", "Serial", "Original", "Bounded", "Aggressive", "Dynamic"],
    );
    for spec in all_specs() {
        let app = (spec.build)();
        let s = app.code_sizes();
        t.row(vec![
            spec.name.to_string(),
            s.serial.to_string(),
            s.original.to_string(),
            s.bounded.to_string(),
            s.aggressive.to_string(),
            s.dynamic.to_string(),
        ]);
    }
    t.note("Dynamic shares functions that are identical across policy versions (closed-subgraph sharing), keeping multi-version code growth small — the paper's Table 1 observation.");
    t
}

/// Figure 3: the feasible region for the production interval, and the
/// optimal production interval, for the paper's example values
/// (S = 1, N = 2, λ = 0.065, ε = 0.5).
#[must_use]
pub fn figure3_feasible_region() -> Table {
    let a = Analysis::new(1.0, 2, 0.065).expect("valid");
    let eps = 0.5;
    let mut t = Table::new(
        "Figure 3: Feasible Region for Production Interval P (S=1, N=2, lambda=0.065, eps=0.5)",
        &["P (s)", "(1-eps)P + e^{-lP}/l", "constraint", "feasible"],
    );
    let rhs = a.constraint_rhs(eps);
    for i in 0..=20 {
        let p = 2.0 + i as f64 * 2.0;
        let lhs = a.constraint_lhs(p, eps);
        t.row(vec![
            format!("{p:.1}"),
            format!("{lhs:.4}"),
            format!("{rhs:.4}"),
            (lhs <= rhs).to_string(),
        ]);
    }
    let region = a.feasible_region(eps).expect("eps ok").expect("region exists");
    let p_opt = a.optimal_production_interval();
    t.note(format!("feasible region: [{:.2}, {:.2}] s", region.0, region.1));
    t.note(format!("optimal production interval P_opt = {p_opt:.2} s (paper: ~7.25)"));
    t
}

/// Execution times and speedups (Tables 2/7 + Figures 4/6, and the String
/// analog): all four versions across processor counts.
#[must_use]
pub fn execution_times(spec: &AppSpec) -> (Table, Table) {
    let proc_header: Vec<String> =
        std::iter::once("Version".to_string()).chain(PROCS.iter().map(|p| p.to_string())).collect();
    let mut times = Table::new_owned(
        &format!("Execution Times for {} (virtual seconds)", spec.name),
        proc_header.clone(),
    );
    let serial_time = run_static(spec, 1, "serial").elapsed();
    let mut serial_row = vec!["Serial".to_string(), secs(serial_time)];
    serial_row.extend(PROCS.iter().skip(1).map(|_| String::new()));
    times.row(serial_row);

    let mut speedups =
        Table::new_owned(&format!("Speedups for {} (vs. serial)", spec.name), proc_header);

    let run_row = |label: &str, f: &dyn Fn(usize) -> AppReport| {
        let mut trow = vec![label.to_string()];
        let mut srow = vec![label.to_string()];
        for &p in &PROCS {
            let elapsed = f(p).elapsed();
            trow.push(secs(elapsed));
            srow.push(format!("{:.2}", serial_time.as_secs_f64() / elapsed.as_secs_f64()));
        }
        (trow, srow)
    };
    for (policy, label) in POLICIES {
        let (trow, srow) = run_row(label, &|p| run_static(spec, p, policy));
        times.row(trow);
        speedups.row(srow);
    }
    let (trow, srow) = run_row("Dynamic", &|p| run_dyn(spec, p, bench_controller()));
    times.row(trow);
    speedups.row(srow);
    let (trow, srow) = run_row("Dynamic (span)", &|p| run_dyn_span(spec, p, bench_controller()));
    times.row(trow);
    speedups.row(srow);
    times.note("Static versions run uninstrumented; the Dynamic version carries instrumentation and timer polling, as in the paper. `Dynamic (span)` additionally lets intervals span section executions (the paper's own §4.4 proposal), which removes the per-execution resampling cost that dominates when sections are short relative to the sampling phase.");
    (times, speedups)
}

/// Locking overhead (Tables 3/8 and the String analog): executed
/// acquire/release pairs and the absolute locking overhead.
#[must_use]
pub fn locking_overhead(spec: &AppSpec) -> Table {
    let mut t = Table::new(
        &format!("Locking Overhead for {}", spec.name),
        &["Version", "Acquire/Release Pairs", "Locking Overhead (s)"],
    );
    for (policy, label) in POLICIES {
        let r = run_static(spec, 8, policy);
        let tot = r.stats.totals();
        t.row(vec![
            label.to_string(),
            tot.acquires.to_string(),
            format!("{:.4}", tot.lock_time.as_secs_f64()),
        ]);
    }
    let r = run_dyn(spec, 8, bench_controller());
    let tot = r.stats.totals();
    t.row(vec![
        "Dynamic".to_string(),
        tot.acquires.to_string(),
        format!("{:.4}", tot.lock_time.as_secs_f64()),
    ]);
    t.note("Counts from 8-processor runs; static counts do not vary with processors.");
    t
}

/// Waiting proportion (Figure 7): time spent waiting to acquire locks over
/// total processor-time, per version and processor count.
#[must_use]
pub fn waiting_proportion(spec: &AppSpec) -> Table {
    let header: Vec<String> =
        std::iter::once("Version".to_string()).chain(PROCS.iter().map(|p| p.to_string())).collect();
    let mut t =
        Table::new_owned(&format!("Waiting Proportion for {} (Figure 7)", spec.name), header);
    for (policy, label) in POLICIES {
        let mut row = vec![label.to_string()];
        for &p in &PROCS {
            let r = run_static(spec, p, policy);
            row.push(format!("{:.3}", r.stats.waiting_proportion()));
        }
        t.row(row);
    }
    t
}

/// Sampled-overhead time series (Figures 5/8/9): run with small target
/// intervals and report the measured overhead of every completed interval
/// of the main section.
#[must_use]
pub fn overhead_series(spec: &AppSpec, section: &str, procs: usize) -> Table {
    let ctl = ControllerConfig {
        target_sampling: Duration::from_millis(1),
        target_production: Duration::from_millis(8),
        ..ControllerConfig::default()
    };
    let mut app = (spec.build)();
    let report = run_app_ref(&mut app, &run_dynamic(procs, ctl)).expect("runs");
    let version_names: Vec<String> = app
        .sections()
        .get(section)
        .map(|s| s.versions.iter().map(|v| v.name.clone()).collect())
        .unwrap_or_default();
    let mut t = Table::new(
        &format!(
            "Sampled Overhead for the {} {} Section on {} Processors",
            spec.name, section, procs
        ),
        &["Time (s)", "Version", "Phase", "Overhead"],
    );
    for exec in report.section(section) {
        for r in &exec.records {
            let name =
                version_names.get(r.version).cloned().unwrap_or_else(|| format!("v{}", r.version));
            let phase = if r.phase.is_sampling() { "sampling" } else { "production" };
            t.row(vec![
                format!("{:.4}", r.at.as_secs_f64()),
                name,
                phase.to_string(),
                format!("{:.3}", r.overhead),
            ]);
        }
    }
    t.note("Gaps between section executions correspond to other serial/parallel sections, as in the paper's time-series figures.");
    t
}

/// Section statistics (Tables 4/9/10): mean section size, iteration count,
/// mean iteration size, from a serial one-processor run.
#[must_use]
pub fn section_stats(spec: &AppSpec, sections: &[&str]) -> Table {
    let report = run_static(spec, 1, "serial");
    let mut t = Table::new(
        &format!("Parallel Section Statistics for {}", spec.name),
        &["Section", "Mean Section Size (s)", "Iterations", "Mean Iteration Size (ms)"],
    );
    for &name in sections {
        let execs: Vec<_> = report.section(name).collect();
        if execs.is_empty() {
            continue;
        }
        let mean = execs.iter().map(|e| e.duration()).sum::<Duration>() / execs.len() as u32;
        let iters = execs[0].iterations;
        let iter_size = mean / iters.max(1) as u32;
        t.row(vec![name.to_string(), secs(mean), iters.to_string(), millis(iter_size)]);
    }
    t
}

/// Mean minimum effective sampling intervals (Tables 5/11/12): with a tiny
/// target sampling interval, the actual interval lengths are bounded below
/// by loop-iteration granularity and synchronization latency (§4.1).
#[must_use]
pub fn effective_sampling_intervals(spec: &AppSpec, section: &str, procs: usize) -> Table {
    let ctl = ControllerConfig {
        target_sampling: Duration::from_nanos(1),
        target_production: Duration::from_millis(5),
        ..ControllerConfig::default()
    };
    let mut app = (spec.build)();
    let report = run_app_ref(&mut app, &run_dynamic(procs, ctl)).expect("runs");
    let version_names: Vec<String> = app
        .sections()
        .get(section)
        .map(|s| s.versions.iter().map(|v| v.name.clone()).collect())
        .unwrap_or_default();
    let mut t = Table::new(
        &format!(
            "Mean Minimum Effective Sampling Intervals for the {} {} Section on {} Processors",
            spec.name, section, procs
        ),
        &["Version", "Mean Minimum Effective Sampling Interval (ms)"],
    );
    for (v, d) in report.mean_effective_sampling_intervals(section).iter().enumerate() {
        let name = version_names.get(v).cloned().unwrap_or_else(|| format!("v{v}"));
        t.row(vec![name, d.map_or_else(|| "-".to_string(), millis)]);
    }
    t
}

/// Interval sweep (Tables 6/13/14): mean execution time of the section for
/// combinations of target sampling and production intervals.
#[must_use]
pub fn interval_sweep(
    spec: &AppSpec,
    section: &str,
    procs: usize,
    samplings: &[Duration],
    productions: &[Duration],
) -> Table {
    let mut header = vec!["Target Sampling \\ Production".to_string()];
    header.extend(productions.iter().map(|p| format!("{}ms", p.as_millis())));
    let mut t = Table::new_owned(
        &format!(
            "Mean Execution Times for Varying Intervals, {} {} Section on {} Processors (ms)",
            spec.name, section, procs
        ),
        header,
    );
    for &s in samplings {
        let mut row = vec![format!("{:.1}ms", s.as_secs_f64() * 1e3)];
        for &p in productions {
            let ctl = ControllerConfig {
                target_sampling: s,
                target_production: p,
                ..ControllerConfig::default()
            };
            let report = run_dyn(spec, procs, ctl);
            let execs: Vec<_> = report.section(section).collect();
            let mean =
                execs.iter().map(|e| e.duration()).sum::<Duration>() / execs.len().max(1) as u32;
            row.push(millis(mean));
        }
        t.row(row);
    }
    t
}

/// The instrumentation-overhead check of §4.3: instrumented vs.
/// uninstrumented static versions.
#[must_use]
pub fn instrumentation_overhead(spec: &AppSpec) -> Table {
    let mut t = Table::new(
        &format!("Instrumentation Overhead for {} (8 processors)", spec.name),
        &["Version", "Uninstrumented (s)", "Instrumented (s)", "Ratio"],
    );
    for (policy, label) in POLICIES {
        let plain = run_static(spec, 8, policy).elapsed();
        let mut cfg = run_fixed(8, policy);
        cfg.mode = dynfb_sim::RunMode::Static { policy: policy.to_string(), instrumented: true };
        cfg.machine = machine_config();
        let instr = run_app((spec.build)(), &cfg).expect("runs").elapsed();
        t.row(vec![
            label.to_string(),
            secs(plain),
            secs(instr),
            format!("{:.3}", instr.as_secs_f64() / plain.as_secs_f64()),
        ]);
    }
    t.note("The paper reports that instrumentation overhead has little or no effect on performance (§4.3).");
    t
}

/// Convenience used by `RunConfig`-hungry callers.
#[must_use]
pub fn fixed_cfg(procs: usize, policy: &str) -> RunConfig {
    run_fixed(procs, policy)
}
